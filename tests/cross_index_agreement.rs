//! End-to-end agreement: every index in the workspace (TD-basic, TD-dp,
//! TD-appro, TD-H2H, TD-G-tree) must return the same travel costs as the
//! TD-Dijkstra oracle, on both adversarial random graphs and road-like
//! networks.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_road::core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_road::dijkstra::shortest_path_cost;
use td_road::gen::random_graph::seeded_graph;
use td_road::gen::Dataset;
use td_road::graph::TdGraph;
use td_road::gtree::{GtreeConfig, TdGtree};
use td_road::h2h::TdH2h;
use td_road::plf::DAY;

fn check_all_indexes(g: &TdGraph, budget: u64, seed: u64, queries: usize) {
    let n = g.num_vertices();
    let basic = TdTreeIndex::build(g.clone(), IndexOptions::default());
    let appro = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            ..Default::default()
        },
    );
    let dp = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Dp { budget, weight_scale: 4 },
            ..Default::default()
        },
    );
    let h2h = TdH2h::build(g.clone(), 0);
    let gtree = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 16 });

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..queries {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0.0..DAY);
        let want = shortest_path_cost(g, s, d, t);
        let answers = [
            ("TD-basic", basic.query_cost_basic(s, d, t)),
            ("TD-appro", appro.query_cost(s, d, t)),
            ("TD-dp", dp.query_cost(s, d, t)),
            ("TD-H2H", h2h.query_cost(s, d, t)),
            ("TD-G-tree", gtree.query_cost(s, d, t)),
        ];
        for (name, got) in answers {
            match (want, got) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-4,
                    "{name} seed={seed} s={s} d={d} t={t}: oracle {a} vs {b}"
                ),
                (None, None) => {}
                other => panic!("{name} seed={seed} s={s} d={d}: {other:?}"),
            }
        }
    }
}

#[test]
fn agreement_on_random_graphs() {
    for seed in 0..3u64 {
        let g = seeded_graph(seed, 50, 35, 4);
        check_all_indexes(&g, 3_000, seed, 30);
    }
}

#[test]
fn agreement_on_road_like_network() {
    let g = Dataset::Cal.build(3, 0.02, 3); // ~200 vertices, road structure
    check_all_indexes(&g, 20_000, 77, 40);
}

#[test]
fn agreement_on_profiles_across_indexes() {
    let g = seeded_graph(9, 40, 25, 3);
    let budget = 2_500u64;
    let basic = TdTreeIndex::build(g.clone(), IndexOptions::default());
    let appro = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            ..Default::default()
        },
    );
    let h2h = TdH2h::build(g.clone(), 0);
    let gtree = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 12 });
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..25 {
        let s = rng.gen_range(0..40) as u32;
        let d = rng.gen_range(0..40) as u32;
        let fs = [
            basic.query_profile_basic(s, d),
            appro.query_profile(s, d),
            h2h.query_profile(s, d),
            gtree.query_profile(s, d),
        ];
        for k in 0..10 {
            let t = k as f64 * DAY / 10.0 + 31.0;
            let vals: Vec<Option<f64>> = fs.iter().map(|f| f.as_ref().map(|f| f.eval(t))).collect();
            for v in &vals[1..] {
                match (vals[0], v) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-4, "s={s} d={d} t={t}: {vals:?}")
                    }
                    (None, None) => {}
                    _ => panic!("s={s} d={d}: reachability disagreement {vals:?}"),
                }
            }
        }
    }
}
