//! End-to-end agreement: every backend in the workspace must return the same
//! travel costs as the TD-Dijkstra oracle, on both adversarial random graphs
//! and road-like networks.
//!
//! Since the `td-api` redesign this test is fully backend-generic: one loop
//! over [`Backend::ALL`] builds each index through the shared factory and
//! drives it through a [`QuerySession`] — no per-backend dispatch anywhere.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_road::api::{build_index, Backend, IndexConfig, QuerySession};
use td_road::dijkstra::shortest_path_cost;
use td_road::gen::random_graph::seeded_graph;
use td_road::gen::Dataset;
use td_road::graph::TdGraph;
use td_road::plf::DAY;

fn check_all_backends(g: &TdGraph, budget: u64, seed: u64, queries: usize) {
    let n = g.num_vertices();
    let cfg = IndexConfig {
        budget,
        max_leaf: 16,
        ..Default::default()
    };
    let indexes: Vec<_> = Backend::ALL
        .iter()
        .map(|&b| build_index(g.clone(), b, &cfg))
        .collect();
    let mut sessions: Vec<_> = indexes
        .iter()
        .map(|ix| QuerySession::new(ix.as_ref()))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..queries {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0.0..DAY);
        let want = shortest_path_cost(g, s, d, t);
        for session in &mut sessions {
            let name = session.index().backend_name();
            let got = session.query_cost(s, d, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-4,
                    "{name} seed={seed} s={s} d={d} t={t}: oracle {a} vs {b}"
                ),
                (None, None) => {}
                other => panic!("{name} seed={seed} s={s} d={d}: {other:?}"),
            }
        }
    }
}

#[test]
fn agreement_on_random_graphs() {
    for seed in 0..3u64 {
        let g = seeded_graph(seed, 50, 35, 4);
        check_all_backends(&g, 3_000, seed, 30);
    }
}

#[test]
fn agreement_on_road_like_network() {
    let g = Dataset::Cal.build(3, 0.02, 3); // ~200 vertices, road structure
    check_all_backends(&g, 20_000, 77, 40);
}

#[test]
fn agreement_on_profiles_across_backends() {
    let g = seeded_graph(9, 40, 25, 3);
    let cfg = IndexConfig {
        budget: 2_500,
        max_leaf: 12,
        ..Default::default()
    };
    let indexes: Vec<_> = Backend::ALL
        .iter()
        .map(|&b| build_index(g.clone(), b, &cfg))
        .collect();
    let mut sessions: Vec<_> = indexes
        .iter()
        .map(|ix| QuerySession::new(ix.as_ref()))
        .collect();
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..25 {
        let s = rng.gen_range(0..40) as u32;
        let d = rng.gen_range(0..40) as u32;
        let fs: Vec<_> = sessions
            .iter_mut()
            .map(|sess| sess.query_profile(s, d))
            .collect();
        for k in 0..10 {
            let t = k as f64 * DAY / 10.0 + 31.0;
            let vals: Vec<Option<f64>> = fs.iter().map(|f| f.as_ref().map(|f| f.eval(t))).collect();
            for (i, v) in vals.iter().enumerate().skip(1) {
                match (vals[0], v) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-4,
                        "{} s={s} d={d} t={t}: {vals:?}",
                        Backend::ALL[i]
                    ),
                    (None, None) => {}
                    _ => panic!("s={s} d={d}: reachability disagreement {vals:?}"),
                }
            }
        }
    }
}
