//! Failure injection: malformed inputs must be rejected loudly at the right
//! layer, never silently mis-answered.

use td_road::graph::{GraphError, TdGraph};
use td_road::plf::{Plf, PlfError};

#[test]
fn malformed_profiles_are_rejected_at_construction() {
    // NaN, unsorted, duplicate-time and negative-cost point lists.
    assert!(matches!(
        Plf::from_pairs(&[(0.0, f64::NAN)]),
        Err(PlfError::NotFinite(0))
    ));
    assert!(matches!(
        Plf::from_pairs(&[(10.0, 1.0), (5.0, 2.0)]),
        Err(PlfError::NotIncreasing(1))
    ));
    assert!(matches!(
        Plf::from_pairs(&[(5.0, 1.0), (5.0, 2.0)]),
        Err(PlfError::NotIncreasing(1))
    ));
    assert!(matches!(
        Plf::from_pairs(&[(0.0, -0.5)]),
        Err(PlfError::Negative(0))
    ));
    assert!(matches!(Plf::new(vec![]), Err(PlfError::Empty)));
}

#[test]
fn non_fifo_weights_are_rejected_by_the_graph() {
    let mut g = TdGraph::with_vertices(2);
    // Slope -2: a later departure overtakes an earlier one.
    let overtaking = Plf::from_pairs(&[(0.0, 100.0), (10.0, 80.0)]).unwrap();
    assert!(!overtaking.is_fifo());
    assert_eq!(
        g.add_edge(0, 1, overtaking.clone()),
        Err(GraphError::NotFifo(0, 1))
    );
    // Same check on in-place weight updates.
    g.add_edge(0, 1, Plf::constant(5.0)).unwrap();
    assert_eq!(g.set_weight(0, overtaking), Err(GraphError::NotFifo(0, 1)));
}

#[test]
fn structural_errors_are_rejected() {
    let mut g = TdGraph::with_vertices(2);
    assert_eq!(
        g.add_edge(0, 7, Plf::constant(1.0)),
        Err(GraphError::VertexOutOfRange(7))
    );
    assert_eq!(
        g.add_edge(1, 1, Plf::constant(1.0)),
        Err(GraphError::SelfLoop(1))
    );
    g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
    assert_eq!(
        g.add_edge(0, 1, Plf::constant(2.0)),
        Err(GraphError::DuplicateEdge(0, 1))
    );
    assert_eq!(
        g.set_weight(9, Plf::constant(1.0)),
        Err(GraphError::NoSuchEdge(9))
    );
}

#[test]
fn profile_search_handles_zero_cost_cycles() {
    // A zero-cost 2-cycle is the classic non-termination hazard for
    // label-correcting searches. With exact minimum-merging it converges
    // (re-relaxing the cycle yields no strict improvement), and a pop-count
    // guard inside `profile_search` turns any residual non-convergence into
    // a loud panic instead of a hang. This test documents the converging
    // behaviour and exact answers.
    let mut g = TdGraph::with_vertices(3);
    g.add_edge(0, 1, Plf::constant(0.0)).unwrap();
    g.add_edge(1, 0, Plf::constant(0.0)).unwrap();
    g.add_edge(1, 2, Plf::constant(1.0)).unwrap();
    let prof = td_road::dijkstra::profile_search(&g, 0);
    assert_eq!(prof.cost(1, 0.0), Some(0.0));
    assert_eq!(prof.cost(2, 0.0), Some(1.0));
}

#[test]
fn invalid_queries_surface_as_typed_errors_not_panics() {
    use td_road::prelude::*;

    let mut g = TdGraph::with_vertices(3);
    g.add_edge(0, 1, Plf::constant(30.0)).unwrap();
    g.add_edge(1, 2, Plf::constant(40.0)).unwrap();
    let index = build_index(g, Backend::Dijkstra, &IndexConfig::default());

    // Out-of-range endpoints, non-finite and negative departure times all
    // land in QueryError::InvalidQuery with a message naming the culprit.
    for (s, d, t, needle) in [
        (3, 0, 0.0, "source"),
        (0, 9, 0.0, "destination"),
        (0, 2, f64::NAN, "not finite"),
        (0, 2, f64::INFINITY, "not finite"),
        (0, 2, -5.0, "negative"),
    ] {
        match index.query_cost_bounded(s, d, t, &QueryBudget::UNLIMITED) {
            Err(QueryError::InvalidQuery(why)) => assert!(
                why.contains(needle),
                "s={s} d={d} t={t}: message {why:?} does not mention {needle:?}"
            ),
            other => panic!("s={s} d={d} t={t}: expected InvalidQuery, got {other:?}"),
        }
    }

    // A valid query on the same index still answers exactly.
    assert_eq!(
        index
            .query_cost_bounded(0, 2, 0.0, &QueryBudget::UNLIMITED)
            .unwrap(),
        BoundedAnswer::Exact(Some(70.0))
    );
}
