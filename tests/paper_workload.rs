//! The paper's §5 workload end to end: 1,000 random pairs × 10 departure
//! intervals on a dataset analogue, with path validity and scalar/profile
//! consistency for the paper's own index.

use td_road::core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_road::gen::{Dataset, Workload, WorkloadConfig};

#[test]
fn paper_workload_runs_consistently() {
    let g = Dataset::Cal.build(3, 0.05, 13); // ~330 vertices
    let n = g.num_vertices();
    let budget = Dataset::Cal.spec().budget_at(0.05) as u64;
    let index = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            ..Default::default()
        },
    );
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: 60,
            times_per_pair: 10,
            seed: 5,
        },
    );
    assert_eq!(wl.queries.len(), 600);

    let mut answered = 0;
    for q in &wl.queries {
        let cost = index.query_cost(q.source, q.destination, q.depart);
        let basic = index.query_cost_basic(q.source, q.destination, q.depart);
        match (cost, basic) {
            (Some(a), Some(b)) => {
                assert!(
                    (a - b).abs() < 1e-5,
                    "shortcut vs basic disagreement on {q:?}: {a} vs {b}"
                );
                answered += 1;
            }
            (None, None) => {}
            other => panic!("reachability disagreement on {q:?}: {other:?}"),
        }
    }
    assert!(answered > 500, "road network should be mostly connected");

    // Profile agrees with the scalar answers on each pair.
    for &(s, d) in wl.pairs().iter().take(25) {
        if let Some(f) = index.query_profile(s, d) {
            for q in wl
                .queries
                .iter()
                .filter(|q| q.source == s && q.destination == d)
            {
                let scalar = index.query_cost(s, d, q.depart).expect("profile exists");
                assert!(
                    (f.eval(q.depart) - scalar).abs() < 1e-5,
                    "profile vs scalar at t={}",
                    q.depart
                );
            }
        }
    }

    // Paths replay to their reported costs.
    for q in wl.queries.iter().take(100) {
        if let Some((cost, path)) = index.query_path(q.source, q.destination, q.depart) {
            assert!(path.is_valid(&g));
            let replay = path.cost(&g, q.depart).expect("valid path");
            assert!(
                (cost - replay).abs() < 1e-5,
                "path replay mismatch on {q:?}"
            );
        }
    }
}

#[test]
fn all_dataset_analogues_build_and_answer() {
    for d in Dataset::ALL {
        let g = d.build(2, 0.02, 1);
        let n = g.num_vertices();
        assert!(n >= 50, "{} analogue too small", d.name());
        let index = TdTreeIndex::build(
            g,
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 10_000 },
                ..Default::default()
            },
        );
        let c = index.query_cost(0, (n - 1) as u32, 12.0 * 3600.0);
        assert!(c.is_some(), "{}: endpoints should connect", d.name());
    }
}
