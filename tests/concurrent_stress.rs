#![allow(clippy::print_stdout)]
//! Racing reader/writer stress: reader threads hammer
//! `ParallelExecutor::query_batch` on `LiveIndex` snapshots while a writer
//! pushes live-traffic batches through the double-buffer epoch swap.
//!
//! Everything observable is deterministic and seeded: the graph, the update
//! batches, and the query workload. The thread interleaving is not — that
//! is the point — but every observation a reader records is tagged with the
//! epoch it was served from, and at the end each one is cross-checked
//! against a freshly rebuilt index over that epoch's graph. A snapshot that
//! tears (serves half-updated weights) or an epoch tag that lies cannot
//! pass the check.

use std::sync::atomic::{AtomicBool, Ordering};
use td_road::api::{LiveIndex, ParallelExecutor, QuerySession};
use td_road::core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_road::gen::random_graph::{random_profile, seeded_graph};
use td_road::plf::DAY;

use rand::prelude::*;
use rand::rngs::StdRng;

const EPOCHS: usize = 4;
const CHANGES_PER_EPOCH: usize = 6;
const READERS: usize = 3;
const QUERIES: usize = 30;
const COST_EPS: f64 = 1e-4;

fn build_opts() -> IndexOptions {
    IndexOptions {
        strategy: SelectionStrategy::Greedy { budget: 4_000 },
        track_supports: true,
        ..Default::default()
    }
}

#[test]
fn racing_readers_agree_with_per_epoch_rebuilds() {
    let g0 = seeded_graph(11, 60, 90, 3);
    let n = g0.num_vertices();
    let mut rng = StdRng::seed_from_u64(0xace);

    // Deterministic update batches, and the graph state after each epoch.
    let mut graphs = vec![g0.clone()];
    let mut batches = Vec::new();
    let mut cur = g0.clone();
    for _ in 0..EPOCHS {
        let changes: Vec<_> = (0..CHANGES_PER_EPOCH)
            .map(|_| {
                let e = rng.gen_range(0..cur.num_edges()) as u32;
                let edge = cur.edge(e);
                (edge.from, edge.to, random_profile(&mut rng, 4, 20.0, 500.0))
            })
            .collect();
        for (u, v, w) in &changes {
            let eid = cur.find_edge(*u, *v).expect("existing edge");
            cur.set_weight(eid, w.clone()).expect("valid weight");
        }
        graphs.push(cur.clone());
        batches.push(changes);
    }

    let queries: Vec<(u32, u32, f64)> = (0..QUERIES)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();

    let live = LiveIndex::new(TdTreeIndex::build(g0, build_opts()));
    let done = AtomicBool::new(false);

    let observations: Vec<Vec<(u64, Vec<Option<f64>>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..READERS)
            .map(|_| {
                let (live, done, queries) = (&live, &done, &queries);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    // Runs until the writer lands every batch (a hard cap
                    // only bounds memory on a very slow writer). The short
                    // sleep keeps readers from starving the writer when
                    // cores are scarce.
                    while !done.load(Ordering::Acquire) && seen.len() < 20_000 {
                        let (epoch, snap) = live.snapshot_with_epoch();
                        let mut exec = ParallelExecutor::new(snap.as_ref(), 2);
                        seen.push((epoch, exec.query_batch(queries)));
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    seen
                })
            })
            .collect();

        // Writer: push every batch through the double buffer while the
        // readers race, leaving them a little time inside each epoch.
        for batch in &batches {
            std::thread::sleep(std::time::Duration::from_millis(10));
            live.apply(batch);
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
        done.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect()
    });

    assert_eq!(live.epoch(), EPOCHS as u64, "every batch must land");

    // Cross-check: every recorded observation against a fresh index built
    // on the graph as of that epoch.
    let mut expected: Vec<Option<Vec<Option<f64>>>> = vec![None; EPOCHS + 1];
    let mut expect_for = |epoch: usize| -> Vec<Option<f64>> {
        expected[epoch]
            .get_or_insert_with(|| {
                let fresh = TdTreeIndex::build(graphs[epoch].clone(), build_opts());
                let mut session = QuerySession::new(&fresh);
                session.query_many(queries.iter().copied())
            })
            .clone()
    };
    let mut checked = 0usize;
    let mut epochs_seen = std::collections::BTreeSet::new();
    for (reader, seen) in observations.iter().enumerate() {
        assert!(!seen.is_empty(), "reader {reader} never got a snapshot");
        for (epoch, got) in seen {
            let want = expect_for(*epoch as usize);
            for (i, (w, g)) in want.iter().zip(got).enumerate() {
                let (s, d, t) = queries[i];
                match (w, g) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < COST_EPS,
                        "epoch {epoch} s={s} d={d} t={t}: rebuild {a} vs snapshot {b}"
                    ),
                    (None, None) => {}
                    other => panic!("epoch {epoch} s={s} d={d}: {other:?}"),
                }
            }
            epochs_seen.insert(*epoch);
            checked += 1;
        }
    }
    // The racing is only meaningful if snapshots actually spanned epochs.
    assert!(
        epochs_seen.len() >= 2,
        "readers observed a single epoch ({epochs_seen:?}); widen the writer sleeps"
    );

    // And the final state must equal the final rebuild exactly as above.
    let (epoch, final_snap) = live.snapshot_with_epoch();
    assert_eq!(epoch, EPOCHS as u64);
    let want = expect_for(EPOCHS);
    let mut session = QuerySession::new(final_snap.as_ref());
    let got = session.query_many(queries.iter().copied());
    for ((w, g), &(s, d, t)) in want.iter().zip(&got).zip(&queries) {
        match (w, g) {
            (Some(a), Some(b)) => {
                assert!(
                    (a - b).abs() < COST_EPS,
                    "final s={s} d={d} t={t}: {a} vs {b}"
                )
            }
            (None, None) => {}
            other => panic!("final s={s} d={d}: {other:?}"),
        }
    }
    println!("checked {checked} observations across epochs {epochs_seen:?}");
}
