//! Update flow end to end on a road-like network: repeated live-traffic
//! batches keep every query exact versus a Dijkstra oracle over the *updated*
//! graph, and the updated index keeps agreeing with a fresh rebuild.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_road::core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_road::dijkstra::shortest_path_cost;
use td_road::gen::random_graph::random_profile;
use td_road::gen::Dataset;
use td_road::plf::DAY;

#[test]
fn repeated_update_batches_stay_exact_on_road_network() {
    let g = Dataset::Sf.build(3, 0.012, 21); // ~120 vertices, road-like
    let n = g.num_vertices();
    let mut index = TdTreeIndex::build(
        g,
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget: 30_000 },
            track_supports: true,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(321);
    for round in 0..4 {
        let m = index.graph().num_edges();
        let changes: Vec<_> = (0..8)
            .map(|_| {
                let e = rng.gen_range(0..m) as u32;
                let edge = index.graph().edge(e);
                (edge.from, edge.to, random_profile(&mut rng, 4, 10.0, 400.0))
            })
            .collect();
        let stats = index.update_edges(&changes);
        assert!(stats.replay_secs >= 0.0);

        let g_now = index.graph().clone();
        for _ in 0..25 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let want = shortest_path_cost(&g_now, s, d, t);
            let got = index.query_cost(s, d, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-4,
                    "round {round} s={s} d={d} t={t}: oracle {a} vs index {b}"
                ),
                (None, None) => {}
                other => panic!("round {round} s={s} d={d}: {other:?}"),
            }
            // Paths remain valid after updates.
            if let Some((cost, path)) = index.query_path(s, d, t) {
                assert!(path.is_valid(&g_now));
                let replay = path.cost(&g_now, t).expect("valid");
                assert!((cost - replay).abs() < 1e-4, "round {round}: path replay");
            }
        }
    }
}

#[test]
fn updated_index_matches_fresh_rebuild_on_profiles() {
    let g = Dataset::Cal.build(3, 0.012, 9);
    let n = g.num_vertices();
    let opts = IndexOptions {
        strategy: SelectionStrategy::Greedy { budget: 20_000 },
        track_supports: true,
        ..Default::default()
    };
    let mut index = TdTreeIndex::build(g, opts);
    let mut rng = StdRng::seed_from_u64(654);
    let m = index.graph().num_edges();
    let changes: Vec<_> = (0..10)
        .map(|_| {
            let e = rng.gen_range(0..m) as u32;
            let edge = index.graph().edge(e);
            (edge.from, edge.to, random_profile(&mut rng, 3, 20.0, 300.0))
        })
        .collect();
    index.update_edges(&changes);
    let fresh = TdTreeIndex::build(index.graph().clone(), opts);
    for _ in 0..30 {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        let (a, b) = (index.query_profile(s, d), fresh.query_profile(s, d));
        match (a, b) {
            (Some(a), Some(b)) => {
                for k in 0..8 {
                    let t = k as f64 * DAY / 8.0;
                    assert!(
                        (a.eval(t) - b.eval(t)).abs() < 1e-4,
                        "s={s} d={d} t={t}: updated {} vs fresh {}",
                        a.eval(t),
                        b.eval(t)
                    );
                }
            }
            (None, None) => {}
            other => panic!("s={s} d={d}: {:?}", other.0.map(|_| ())),
        }
    }
}
