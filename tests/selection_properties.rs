//! Selection-quality properties through the full index pipeline (not just
//! the knapsack in isolation): budget adherence, DP-vs-greedy bounds
//! (Theorem 2), and the Fig. 11 monotonicity (more budget ⇒ more memory,
//! never slower structure).

use proptest::prelude::*;
use td_road::core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_road::gen::random_graph::seeded_graph;

#[test]
fn budgets_are_respected_through_the_pipeline() {
    let g = seeded_graph(15, 45, 30, 3);
    for budget in [50u64, 500, 5_000, 50_000] {
        for strategy in [
            SelectionStrategy::Greedy { budget },
            SelectionStrategy::Dp {
                budget,
                weight_scale: 1,
            },
        ] {
            let ix = TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy,
                    ..Default::default()
                },
            );
            assert!(
                ix.build_stats.selected_weight <= budget,
                "{strategy:?}: weight {} > budget {budget}",
                ix.build_stats.selected_weight
            );
            // The store's actual point count equals the reported weight.
            assert_eq!(
                ix.shortcuts().total_points() as u64,
                ix.build_stats.selected_weight,
                "{strategy:?}: stored points diverge from selection weight"
            );
        }
    }
}

#[test]
fn theorem2_holds_through_the_pipeline() {
    for seed in 20..24u64 {
        let g = seeded_graph(seed, 35, 22, 3);
        let budget = 2_000u64;
        let greedy = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget },
                ..Default::default()
            },
        );
        let dp = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Dp {
                    budget,
                    weight_scale: 1,
                },
                ..Default::default()
            },
        );
        let (ug, ud) = (
            greedy.build_stats.selected_utility,
            dp.build_stats.selected_utility,
        );
        assert!(ud >= ug - 1e-9, "seed={seed}: DP {ud} below greedy {ug}");
        assert!(
            ug >= 0.5 * ud - 1e-9,
            "seed={seed}: greedy {ug} < ½·OPT {ud}"
        );
    }
}

#[test]
fn fig11_monotonicity_memory_grows_with_budget() {
    let g = seeded_graph(30, 50, 35, 3);
    let mut prev_mem = 0usize;
    let mut prev_pairs = 0usize;
    for mult in 1..=5u64 {
        let ix = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy {
                    budget: 1_000 * mult,
                },
                ..Default::default()
            },
        );
        assert!(
            ix.memory_bytes() >= prev_mem,
            "memory shrank when budget grew (mult={mult})"
        );
        assert!(ix.build_stats.selected_pairs >= prev_pairs);
        prev_mem = ix.memory_bytes();
        prev_pairs = ix.build_stats.selected_pairs;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (seed, budget) combination yields a valid, budget-respecting,
    /// correctly-answering index.
    #[test]
    fn random_budgets_never_break_the_index(seed in 0u64..500, budget in 10u64..20_000) {
        let g = seeded_graph(seed, 25, 15, 3);
        let ix = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget },
                ..Default::default()
            },
        );
        prop_assert!(ix.build_stats.selected_weight <= budget);
        // Spot-check three queries against the basic sweep.
        for (s, d) in [(0u32, 24u32), (5, 13), (20, 2)] {
            let a = ix.query_cost(s, d, 30_000.0);
            let b = ix.query_cost_basic(s, d, 30_000.0);
            match (a, b) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-5),
                (None, None) => {}
                other => prop_assert!(false, "disagreement: {other:?}"),
            }
        }
    }
}
