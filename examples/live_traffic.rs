//! Live traffic updates: §5.2's index-update scenario.
//!
//! An accident multiplies travel times on a handful of road segments during
//! the morning; the index is repaired incrementally (support-list replay +
//! top-down shortcut rebuild) instead of being rebuilt, and queries
//! immediately reflect the new costs.
//!
//! Run with: `cargo run --release --example live_traffic`

use td_plf::Pt;
use td_road::prelude::*;

fn main() {
    let graph = Dataset::Cal.build(3, 0.15, 5);
    let n = graph.num_vertices() as u32;
    let budget = Dataset::Cal.spec().budget_at(0.15) as u64;
    // update_edges needs `&mut`, so this example keeps the concrete type and
    // still talks to it through the unified traits: `RoutingIndex` for the
    // accounting, `IncrementalIndex` for the repair, and statically
    // dispatched `QuerySession`s for the queries.
    let mut index = TdTreeIndex::build(
        graph,
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            track_supports: true, // enables update_edges
            ..Default::default()
        },
    );
    println!(
        "index built in {:.2}s ({} shortcut pairs)",
        RoutingIndex::build_stats(&index).construction_secs,
        RoutingIndex::build_stats(&index).precomputed_pairs
    );

    let (s, d) = (1u32, n - 2);
    let depart = 8.0 * 3600.0;
    let mut session = index.session();
    let before = session.query_cost(s, d, depart).expect("connected");
    let (_, path) = session.query_path(s, d, depart).expect("connected");
    println!(
        "before incident: {before:.0}s via {} vertices",
        path.vertices.len()
    );

    // Accident: the first few segments of the current best route triple in
    // cost between 7:00 and 11:00.
    let mut changes = Vec::new();
    for w in path.vertices.windows(2).take(4) {
        let e = index.graph().find_edge(w[0], w[1]).expect("path edge");
        let old = index.graph().weight(e).clone();
        let mut pts: Vec<Pt> = Vec::new();
        for &(t, mult) in &[
            (0.0, 1.0),
            (6.9 * 3600.0, 1.0),
            (8.0 * 3600.0, 3.0),
            (11.0 * 3600.0, 1.0),
            (DAY, 1.0),
        ] {
            pts.push(Pt::new(t, old.eval(t) * mult));
        }
        let jammed = Plf::new(pts).expect("valid incident profile");
        changes.push((w[0], w[1], jammed));
    }
    drop(session); // release the borrow; updates need &mut
    let stats = IncrementalIndex::update_edges(&mut index, &changes);
    println!(
        "applied incident to {} segments: replay {:.3}s ({} eliminations, {} nodes changed), shortcut rebuild {:.3}s ({} nodes)",
        stats.changed_edges,
        stats.replay_secs,
        stats.replayed_eliminations,
        stats.changed_nodes,
        stats.rebuild_secs,
        stats.rebuilt_subtree_nodes
    );

    let mut session = index.session();
    let after = session.query_cost(s, d, depart).expect("connected");
    let (_, new_path) = session.query_path(s, d, depart).expect("connected");
    println!(
        "after incident:  {after:.0}s via {} vertices {}",
        new_path.vertices.len(),
        if new_path.vertices == path.vertices {
            "(same route, slower)"
        } else {
            "(rerouted!)"
        }
    );
    assert!(
        after >= before - 1e-6,
        "congestion cannot make the trip faster"
    );

    // Off-peak queries are unaffected by the 7-11am incident.
    let night_before = session.query_cost(s, d, 2.0 * 3600.0).expect("connected");
    println!("at 02:00 the trip still costs {night_before:.0}s (incident is time-bounded)");
}
