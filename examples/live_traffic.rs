//! Live traffic updates: §5.2's index-update scenario.
//!
//! An accident multiplies travel times on a handful of road segments during
//! the morning; the index is repaired incrementally (support-list replay +
//! top-down shortcut rebuild) instead of being rebuilt, and queries
//! immediately reflect the new costs.
//!
//! Run with: `cargo run --release --example live_traffic`

use td_plf::Pt;
use td_road::prelude::*;

fn main() {
    let graph = Dataset::Cal.build(3, 0.15, 5);
    let n = graph.num_vertices() as u32;
    let budget = Dataset::Cal.spec().budget_at(0.15) as u64;
    let mut index = TdTreeIndex::build(
        graph,
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            track_supports: true, // enables update_edges
            ..Default::default()
        },
    );
    println!(
        "index built in {:.2}s ({} shortcut pairs)",
        index.build_stats.total_secs(),
        index.build_stats.selected_pairs
    );

    let (s, d) = (1u32, n - 2);
    let depart = 8.0 * 3600.0;
    let before = index.query_cost(s, d, depart).expect("connected");
    let (_, path) = index.query_path(s, d, depart).expect("connected");
    println!("before incident: {before:.0}s via {} vertices", path.vertices.len());

    // Accident: the first few segments of the current best route triple in
    // cost between 7:00 and 11:00.
    let mut changes = Vec::new();
    for w in path.vertices.windows(2).take(4) {
        let e = index.graph().find_edge(w[0], w[1]).expect("path edge");
        let old = index.graph().weight(e).clone();
        let mut pts: Vec<Pt> = Vec::new();
        for &(t, mult) in &[
            (0.0, 1.0),
            (6.9 * 3600.0, 1.0),
            (8.0 * 3600.0, 3.0),
            (11.0 * 3600.0, 1.0),
            (DAY, 1.0),
        ] {
            pts.push(Pt::new(t, old.eval(t) * mult));
        }
        let jammed = Plf::new(pts).expect("valid incident profile");
        changes.push((w[0], w[1], jammed));
    }
    let stats = index.update_edges(&changes);
    println!(
        "applied incident to {} segments: replay {:.3}s ({} eliminations, {} nodes changed), shortcut rebuild {:.3}s ({} nodes)",
        stats.changed_edges,
        stats.replay_secs,
        stats.replayed_eliminations,
        stats.changed_nodes,
        stats.rebuild_secs,
        stats.rebuilt_subtree_nodes
    );

    let after = index.query_cost(s, d, depart).expect("connected");
    let (_, new_path) = index.query_path(s, d, depart).expect("connected");
    println!(
        "after incident:  {after:.0}s via {} vertices {}",
        new_path.vertices.len(),
        if new_path.vertices == path.vertices {
            "(same route, slower)"
        } else {
            "(rerouted!)"
        }
    );
    assert!(after >= before - 1e-6, "congestion cannot make the trip faster");

    // Off-peak queries are unaffected by the 7-11am incident.
    let night_before = index.query_cost(s, d, 2.0 * 3600.0).expect("connected");
    println!("at 02:00 the trip still costs {night_before:.0}s (incident is time-bounded)");
}
