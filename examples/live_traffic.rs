#![allow(clippy::print_stdout)]
//! Live traffic updates under load: §5.2's index-update scenario, served
//! concurrently.
//!
//! An accident multiplies travel times on a handful of road segments during
//! the morning. The index lives inside a `LiveIndex` double buffer: reader
//! threads keep answering query batches from immutable snapshots the whole
//! time, while the incident is repaired incrementally (support-list replay +
//! top-down shortcut rebuild) on the writer copy and swapped in atomically.
//! No reader ever blocks on the repair or observes a half-updated index.
//!
//! Run with: `cargo run --release --example live_traffic`

use std::sync::atomic::{AtomicBool, Ordering};
use td_plf::Pt;
use td_road::prelude::*;

fn main() {
    // A production router restarts from a snapshot, not a rebuild: the
    // first run of this example builds the index (with support tracking,
    // so it accepts `update_edges`) and saves it; later runs seed the
    // `LiveIndex` from the `.tdx` file in milliseconds.
    let snap = std::env::temp_dir().join("live-traffic-td-appro.tdx");
    let index = match load_tree_index(&snap) {
        Ok(index) => {
            println!("index restored from {}", snap.display());
            index
        }
        Err(_) => {
            let graph = Dataset::Cal.build(3, 0.15, 5);
            let budget = Dataset::Cal.spec().budget_at(0.15) as u64;
            let index = TdTreeIndex::build(
                graph,
                IndexOptions {
                    strategy: SelectionStrategy::Greedy { budget },
                    track_supports: true, // enables update_edges
                    ..Default::default()
                },
            );
            println!(
                "index built in {:.2}s ({} shortcut pairs)",
                RoutingIndex::build_stats(&index).construction_secs,
                RoutingIndex::build_stats(&index).precomputed_pairs
            );
            if save_index(&index, &snap).is_ok() {
                println!("snapshot saved to {} for the next restart", snap.display());
            }
            index
        }
    };
    let n = index.graph().num_vertices() as u32;

    let (s, d) = (1u32, n - 2);
    let depart = 8.0 * 3600.0;
    // The double buffer clones the index once; from here on readers see
    // atomically-swapped snapshots while updates repair the other copy.
    let live = LiveIndex::new(index);

    let snap = live.snapshot();
    let before = snap.session().query_cost(s, d, depart).expect("connected");
    let (_, path) = snap.session().query_path(s, d, depart).expect("connected");
    println!(
        "before incident: {before:.0}s via {} vertices",
        path.vertices.len()
    );

    // Accident: the first few segments of the current best route triple in
    // cost between 7:00 and 11:00.
    let mut changes = Vec::new();
    for w in path.vertices.windows(2).take(4) {
        let e = snap.graph().find_edge(w[0], w[1]).expect("path edge");
        let old = snap.graph().weight(e).clone();
        let mut pts: Vec<Pt> = Vec::new();
        for &(t, mult) in &[
            (0.0, 1.0),
            (6.9 * 3600.0, 1.0),
            (8.0 * 3600.0, 3.0),
            (11.0 * 3600.0, 1.0),
            (DAY, 1.0),
        ] {
            pts.push(Pt::new(t, old.eval(t) * mult));
        }
        let jammed = Plf::new(pts).expect("valid incident profile");
        changes.push((w[0], w[1], jammed));
    }
    drop(snap);

    // Serve a steady query load on two reader threads while the incident is
    // applied: each batch comes from whatever snapshot is active when the
    // batch starts, tagged with its epoch.
    let queries: Vec<(u32, u32, f64)> = (0..512u32)
        .map(|i| (i * 37 % n, (i * 53 + 11) % n, (f64::from(i) * 97.0) % DAY))
        .collect();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (live, done, queries) = (&live, &done, &queries);
                scope.spawn(move || {
                    let (mut batches, mut answered, mut epochs_seen) = (0u64, 0u64, [false; 2]);
                    let mut out = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        let (epoch, snap) = live.snapshot_with_epoch();
                        let mut exec = ParallelExecutor::new(snap.as_ref(), 2);
                        epochs_seen[(epoch as usize).min(1)] = true;
                        // Serve from this snapshot until the epoch advances,
                        // so the executor's workers stay warmed (zero allocs
                        // per query) across steady-state batches.
                        while !done.load(Ordering::Acquire) && live.epoch() == epoch {
                            exec.query_batch_into(queries, &mut out);
                            batches += 1;
                            answered += out.iter().flatten().count() as u64;
                        }
                    }
                    (batches, answered, epochs_seen)
                })
            })
            .collect();

        let stats = live.apply(&changes);
        println!(
            "applied incident to {} segments: replay {:.3}s ({} eliminations, {} nodes changed), shortcut rebuild {:.3}s ({} nodes)",
            stats.changed_edges,
            stats.replay_secs,
            stats.replayed_eliminations,
            stats.changed_nodes,
            stats.rebuild_secs,
            stats.rebuilt_subtree_nodes
        );

        done.store(true, Ordering::Release);
        for (r, h) in readers.into_iter().enumerate() {
            let (batches, answered, epochs_seen) = h.join().expect("reader");
            println!(
                "reader {r}: {batches} batches, {answered} answers, served epochs {}{}",
                if epochs_seen[0] { "0 " } else { "" },
                if epochs_seen[1] { "1" } else { "" },
            );
        }
    });

    let snap = live.snapshot();
    let mut session = snap.session();
    let after = session.query_cost(s, d, depart).expect("connected");
    let (_, new_path) = session.query_path(s, d, depart).expect("connected");
    println!(
        "after incident:  {after:.0}s via {} vertices {}",
        new_path.vertices.len(),
        if new_path.vertices == path.vertices {
            "(same route, slower)"
        } else {
            "(rerouted!)"
        }
    );
    assert!(
        after >= before - 1e-6,
        "congestion cannot make the trip faster"
    );

    // Off-peak queries are unaffected by the 7-11am incident.
    let night_before = session.query_cost(s, d, 2.0 * 3600.0).expect("connected");
    println!("at 02:00 the trip still costs {night_before:.0}s (incident is time-bounded)");
}
