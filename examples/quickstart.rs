#![allow(clippy::print_stdout)]
//! Quickstart: build a time-dependent road network, index it behind the
//! unified `RoutingIndex` trait, and run the three query types of the paper
//! through an allocation-free `QuerySession`.
//!
//! Run with: `cargo run --release --example quickstart`

use td_road::prelude::*;

fn main() {
    // A CAL-like synthetic road network, ~1300 vertices, 3 interpolation
    // points per edge (the paper's default c = 3).
    let graph = Dataset::Cal.build(3, 0.25, 42);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // TD-appro: the paper's index with the 0.5-approximation shortcut
    // selection under a budget of interpolation points. Swap the backend for
    // any of `Backend::ALL` (TdBasic, TdDp, TdH2h,
    // TdGtree, Dijkstra, AStarCh) and
    // the rest of this example runs unchanged.
    let budget = Dataset::Cal.spec().budget_at(0.25) as u64;
    let index = build_index(
        graph,
        Backend::TdAppro,
        &IndexConfig {
            budget,
            ..Default::default()
        },
    );
    let stats = index.build_stats();
    println!(
        "index: {} — {} shortcut pairs, {} stored points, {}KB, built in {:.2}s",
        index.backend_name(),
        stats.precomputed_pairs,
        stats.stored_points,
        index.memory_bytes() / 1024,
        stats.construction_secs
    );

    // A session owns reusable scratch buffers: after warm-up, scalar queries
    // perform no heap allocation.
    let mut session = QuerySession::new(index.as_ref());

    let (s, d) = (0u32, 1200u32);
    let depart = 8.0 * 3600.0; // 8am — rush hour

    // 1. Travel cost query Q(s, d, t).
    let cost = session.query_cost(s, d, depart).expect("connected network");
    println!("cost {s} -> {d} departing 08:00  = {cost:.1}s");

    // 2. Shortest travel cost function query f_{s,d}(t): the whole day.
    let f = session.query_profile(s, d).expect("connected network");
    println!(
        "cost function: {} interpolation points; best {:.1}s, worst {:.1}s over the day",
        f.len(),
        f.min_value(),
        f.max_value()
    );
    let night = f.eval(3.0 * 3600.0);
    println!("  at 03:00 the same trip costs {night:.1}s (vs {cost:.1}s at 08:00)");

    // 3. Shortest path recovery.
    let (cost2, path) = session.query_path(s, d, depart).expect("connected network");
    assert!((cost - cost2).abs() < 1e-6);
    println!(
        "path: {} vertices, replayed cost {:.1}s",
        path.vertices.len(),
        path.cost(index.graph(), depart).unwrap()
    );

    // 4. Batched costs amortise the session's buffer reuse.
    let batch: Vec<_> = (0..8).map(|h| (s, d, h as f64 * 3.0 * 3600.0)).collect();
    let costs = session.query_many(batch.iter().copied());
    print!("every 3 hours:");
    for c in costs.iter().flatten() {
        print!(" {c:.0}s");
    }
    println!();
    drop(session);

    // 5. Persistence: the expensive build above is a one-time cost. Save
    //    the index as a versioned `.tdx` snapshot, drop it, and reload in
    //    milliseconds — the loaded index answers bit-identically.
    let snap = std::env::temp_dir().join("quickstart-td-appro.tdx");
    let t0 = std::time::Instant::now();
    save_index(index.as_ref(), &snap).expect("save snapshot");
    let save_secs = t0.elapsed().as_secs_f64();
    drop(index); // the built index is gone ...

    let t1 = std::time::Instant::now();
    let reloaded = load_index(&snap).expect("load snapshot"); // ... and back.
    println!(
        "snapshot: saved in {save_secs:.3}s, reloaded {} in {:.3}s",
        reloaded.backend_name(),
        t1.elapsed().as_secs_f64()
    );
    let again = reloaded
        .query_cost(s, d, depart)
        .expect("connected network");
    assert_eq!(
        cost.to_bits(),
        again.to_bits(),
        "a loaded snapshot answers bit-identically"
    );
    println!("reloaded answer at 08:00 = {again:.1}s (bit-identical)");
    std::fs::remove_file(&snap).ok();
}
