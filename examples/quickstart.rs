//! Quickstart: build a time-dependent road network, index it with selected
//! shortcuts, and run the three query types of the paper.
//!
//! Run with: `cargo run --release --example quickstart`

use td_road::prelude::*;

fn main() {
    // A CAL-like synthetic road network, ~1300 vertices, 3 interpolation
    // points per edge (the paper's default c = 3).
    let graph = Dataset::Cal.build(3, 0.25, 42);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // TD-appro: the paper's index with the 0.5-approximation shortcut
    // selection under a budget of interpolation points.
    let budget = Dataset::Cal.spec().budget_at(0.25) as u64;
    let index = TdTreeIndex::build(
        graph,
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            ..Default::default()
        },
    );
    let stats = index.tree_stats();
    println!(
        "index: treeheight {}, treewidth {}, {} shortcut pairs ({} points), built in {:.2}s",
        stats.height,
        stats.width,
        index.build_stats.selected_pairs,
        index.build_stats.selected_weight,
        index.build_stats.total_secs()
    );

    let (s, d) = (0u32, 1200u32);
    let depart = 8.0 * 3600.0; // 8am — rush hour

    // 1. Travel cost query Q(s, d, t).
    let cost = index.query_cost(s, d, depart).expect("connected network");
    println!("cost {s} -> {d} departing 08:00  = {cost:.1}s");

    // 2. Shortest travel cost function query f_{s,d}(t): the whole day.
    let f = index.query_profile(s, d).expect("connected network");
    println!(
        "cost function: {} interpolation points; best {:.1}s, worst {:.1}s over the day",
        f.len(),
        f.min_value(),
        f.max_value()
    );
    let night = f.eval(3.0 * 3600.0);
    println!("  at 03:00 the same trip costs {night:.1}s (vs {cost:.1}s at 08:00)");

    // 3. Shortest path recovery.
    let (cost2, path) = index.query_path(s, d, depart).expect("connected network");
    assert!((cost - cost2).abs() < 1e-6);
    println!(
        "path: {} vertices, replayed cost {:.1}s",
        path.vertices.len(),
        path.cost(index.graph(), depart).unwrap()
    );
}
