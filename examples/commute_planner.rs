#![allow(clippy::print_stdout)]
//! Departure-time optimisation: the cost *function* query in action.
//!
//! A single profile query `f_{s,d}(t)` answers "when should I leave?" for a
//! whole day — the commuter picks the cheapest departure within a window and
//! the latest departure that still makes a deadline. Doing this with scalar
//! queries would need one shortest-path run per candidate minute.
//!
//! Run with: `cargo run --release --example commute_planner`

use td_road::prelude::*;

fn hm(t: f64) -> String {
    format!(
        "{:02}:{:02}",
        (t / 3600.0) as u32,
        ((t % 3600.0) / 60.0) as u32
    )
}

fn main() {
    let graph = Dataset::Col.build(4, 0.1, 11);
    let n = graph.num_vertices() as u32;
    let budget = Dataset::Col.spec().budget_at(0.1) as u64;
    let index = build_index(
        graph,
        Backend::TdAppro,
        &IndexConfig {
            budget,
            ..Default::default()
        },
    );
    let mut session = QuerySession::new(index.as_ref());

    let home: VertexId = 3;
    let office: VertexId = n - 5;
    let f = session.query_profile(home, office).expect("connected");
    println!(
        "commute {home} -> {office}: cost function with {} interpolation points",
        f.len()
    );

    // Cheapest departure between 6:00 and 10:00.
    let (lo, hi) = (6.0 * 3600.0, 10.0 * 3600.0);
    let mut best = (lo, f.eval(lo));
    // A PLF attains its extrema at breakpoints or window edges.
    for p in f.points().iter().filter(|p| p.t > lo && p.t < hi) {
        if p.v < best.1 {
            best = (p.t, p.v);
        }
    }
    if f.eval(hi) < best.1 {
        best = (hi, f.eval(hi));
    }
    println!(
        "cheapest departure in [06:00, 10:00]: {} ({:.0}s travel)",
        hm(best.0),
        best.1
    );
    for t in [6.0, 7.0, 8.0, 9.0, 10.0] {
        let tt = t * 3600.0;
        println!(
            "  leave {} -> {:>5.0}s travel, arrive {}",
            hm(tt),
            f.eval(tt),
            hm(tt + f.eval(tt))
        );
    }

    // Latest departure that still reaches the office by 9:00.
    let deadline = 9.0 * 3600.0;
    match f.latest_departure_before(deadline, 0.0) {
        Some(t) => println!(
            "latest departure to arrive by {}: {} (arrives {})",
            hm(deadline),
            hm(t),
            hm(t + f.eval(t))
        ),
        None => println!("cannot reach the office by {}", hm(deadline)),
    }

    // Sanity: the function agrees with scalar queries.
    for k in 0..24 {
        let t = k as f64 * 3600.0;
        let scalar = session.query_cost(home, office, t).expect("connected");
        assert!(
            (scalar - f.eval(t)).abs() < 1e-5,
            "profile and scalar disagree at {}",
            hm(t)
        );
    }
    println!("profile agrees with 24 hourly scalar queries ✓");
}
