#![allow(clippy::print_stdout)]
//! Ride hailing dispatch: the workload that motivates the paper's index —
//! thousands of ETA (travel cost) queries per second between drivers and
//! riders, on a network whose congestion varies through the day.
//!
//! We pick the best driver for each rider by time-dependent ETA, and show
//! how the index answers the same workload orders of magnitude faster than
//! re-running TD-Dijkstra, with identical answers.
//!
//! Run with: `cargo run --release --example ride_hailing`

use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use td_road::prelude::*;

fn main() {
    let graph = Dataset::Sf.build(3, 0.1, 7);
    let n = graph.num_vertices();
    println!(
        "city: {} intersections, {} road segments",
        n,
        graph.num_edges()
    );

    // Both the paper's index and the TD-Dijkstra baseline sit behind the
    // same trait, so one dispatch routine serves either.
    let budget = Dataset::Sf.spec().budget_at(0.1) as u64;
    let cfg = IndexConfig {
        budget,
        ..Default::default()
    };
    let index = build_index(graph.clone(), Backend::TdAppro, &cfg);
    let baseline = build_index(graph, Backend::Dijkstra, &cfg);
    println!(
        "index built in {:.2}s",
        index.build_stats().construction_secs
    );

    // 40 drivers, 25 ride requests at 8:30am.
    let mut rng = StdRng::seed_from_u64(99);
    let drivers: Vec<VertexId> = (0..40).map(|_| rng.gen_range(0..n) as u32).collect();
    let riders: Vec<VertexId> = (0..25).map(|_| rng.gen_range(0..n) as u32).collect();
    let now = 8.5 * 3600.0;

    // One backend-agnostic dispatch routine: a session per backend keeps
    // the per-query scratch warm across the whole driver x rider matrix.
    let dispatch = |session: &mut QuerySession<'_, dyn RoutingIndex>| {
        let mut assignments = Vec::new();
        for &r in &riders {
            let best = drivers
                .iter()
                .filter_map(|&dr| session.query_cost(dr, r, now).map(|eta| (dr, eta)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            assignments.push((r, best));
        }
        assignments
    };

    let t0 = Instant::now();
    let assignments = dispatch(&mut QuerySession::new(index.as_ref()));
    let indexed = t0.elapsed();

    let t0 = Instant::now();
    let reference = dispatch(&mut QuerySession::new(baseline.as_ref()));
    let dijkstra = t0.elapsed();

    for ((r, a), (_, b)) in assignments.iter().zip(&reference) {
        match (a, b) {
            (Some((d1, e1)), Some((d2, e2))) => {
                assert!((e1 - e2).abs() < 1e-5, "ETA mismatch for rider {r}");
                let _ = (d1, d2); // ties may pick different drivers with equal ETA
            }
            (None, None) => {}
            _ => panic!("reachability mismatch for rider {r}"),
        }
    }

    let matches = riders.len() * drivers.len();
    println!(
        "dispatched {} riders x {} drivers ({} ETA queries):",
        riders.len(),
        drivers.len(),
        matches
    );
    println!(
        "  index:       {:>8.1} ms  ({:.0} µs / query)",
        indexed.as_secs_f64() * 1e3,
        indexed.as_secs_f64() * 1e6 / matches as f64
    );
    println!(
        "  TD-Dijkstra: {:>8.1} ms  ({:.0} µs / query)   — identical ETAs",
        dijkstra.as_secs_f64() * 1e3,
        dijkstra.as_secs_f64() * 1e6 / matches as f64
    );

    // Show one assignment with its route.
    if let Some((rider, Some((driver, eta)))) = assignments.first().map(|(r, b)| (*r, *b)) {
        let (_, path) = index.query_path(driver, rider, now).expect("assigned");
        println!(
            "rider {rider}: driver {driver} arrives in {eta:.0}s via {} intersections",
            path.vertices.len()
        );
    }
}
