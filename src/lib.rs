//! # td-road — time-dependent road network shortest paths with shortcuts
//!
//! A from-scratch Rust reproduction of *"Querying Shortest Path on Large
//! Time-Dependent Road Networks with Shortcuts"* (Gong, Zeng, Chen — ICDE
//! 2024, arXiv:2303.03720).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`plf`] — piecewise-linear travel-cost functions (`Compound`, `min`);
//! * [`graph`] — the time-dependent directed graph model;
//! * [`gen`] — synthetic road networks, profiles, workloads and the paper's
//!   named datasets;
//! * [`dijkstra`] — non-index baselines and correctness oracles;
//! * [`treedec`] — travel-function-preserved tree decomposition;
//! * [`core`] — the paper's TD-tree index (TD-basic / TD-dp / TD-appro);
//! * [`gtree`] — the TD-G-tree baseline;
//! * [`h2h`] — the TD-H2H baseline.
//!
//! ## Quickstart
//!
//! ```
//! use td_road::prelude::*;
//!
//! // A small time-dependent road network (3 interpolation points per edge).
//! let graph = Dataset::Cal.build(3, 0.002, 42);
//!
//! // Build the paper's index with greedily selected shortcuts.
//! let index = TdTreeIndex::build(
//!     graph,
//!     IndexOptions {
//!         strategy: SelectionStrategy::Greedy { budget: 50_000 },
//!         ..Default::default()
//!     },
//! );
//!
//! // Travel cost at 8am, the full cost function, and the path.
//! let cost = index.query_cost(0, 5, 8.0 * 3600.0);
//! let profile = index.query_profile(0, 5);
//! let path = index.query_path(0, 5, 8.0 * 3600.0);
//! assert_eq!(cost.is_some(), profile.is_some());
//! assert_eq!(cost.is_some(), path.is_some());
//! ```

pub use td_core as core;
pub use td_dijkstra as dijkstra;
pub use td_gen as gen;
pub use td_graph as graph;
pub use td_gtree as gtree;
pub use td_h2h as h2h;
pub use td_plf as plf;
pub use td_treedec as treedec;

/// The most common imports in one place.
pub mod prelude {
    pub use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
    pub use td_gen::{Dataset, ProfileConfig, Query, Workload, WorkloadConfig};
    pub use td_graph::{GraphBuilder, Path, TdGraph, VertexId};
    pub use td_gtree::{GtreeConfig, TdGtree};
    pub use td_h2h::TdH2h;
    pub use td_plf::{Plf, DAY};
    pub use td_treedec::TreeDecomposition;
}
