#![forbid(unsafe_code)]
//! # td-road — time-dependent road network shortest paths with shortcuts
//!
//! A from-scratch Rust reproduction of *"Querying Shortest Path on Large
//! Time-Dependent Road Networks with Shortcuts"* (Gong, Zeng, Chen — ICDE
//! 2024, arXiv:2303.03720).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`api`] — the unified [`RoutingIndex`](api::RoutingIndex) trait,
//!   [`Backend`](api::Backend) factory and allocation-free
//!   [`QuerySession`](api::QuerySession) over every backend;
//! * [`plf`] — piecewise-linear travel-cost functions (`Compound`, `min`);
//! * [`graph`] — the time-dependent directed graph model;
//! * [`gen`] — synthetic road networks, profiles, workloads and the paper's
//!   named datasets;
//! * [`dijkstra`] — non-index baselines and correctness oracles;
//! * [`treedec`] — travel-function-preserved tree decomposition;
//! * [`core`] — the paper's TD-tree index (TD-basic / TD-dp / TD-appro);
//! * [`gtree`] — the TD-G-tree baseline;
//! * [`h2h`] — the TD-H2H baseline.
//!
//! ## Quickstart
//!
//! Pick a [`Backend`](api::Backend), build it through the shared factory,
//! and open a [`QuerySession`](api::QuerySession) — the same four lines work
//! for every index family in the workspace:
//!
//! ```
//! use td_road::prelude::*;
//!
//! // A small time-dependent road network (3 interpolation points per edge).
//! let graph = Dataset::Cal.build(3, 0.002, 42);
//!
//! // The paper's index (TD-appro: greedily selected shortcuts), behind the
//! // unified RoutingIndex trait. Swap `Backend::TdAppro` for any of
//! // `Backend::ALL` — TdBasic, TdDp, TdH2h, TdGtree, Dijkstra, AStarCh — and
//! // everything below runs unchanged.
//! let index = build_index(
//!     graph,
//!     Backend::TdAppro,
//!     &IndexConfig { budget: 50_000, ..Default::default() },
//! );
//!
//! // A session owns reusable scratch buffers: repeated queries on the hot
//! // path stop allocating after warm-up.
//! let mut session = QuerySession::new(index.as_ref());
//!
//! // Travel cost at 8am, the full cost function, and the path.
//! let cost = session.query_cost(0, 5, 8.0 * 3600.0);
//! let profile = session.query_profile(0, 5);
//! let path = session.query_path(0, 5, 8.0 * 3600.0);
//! assert_eq!(cost.is_some(), profile.is_some());
//! assert_eq!(cost.is_some(), path.is_some());
//!
//! // Batches amortise the session reuse across a workload.
//! let costs = session.query_many([(0, 5, 0.0), (5, 0, 3600.0)]);
//! assert_eq!(costs.len(), 2);
//! ```

pub use td_api as api;
pub use td_core as core;
pub use td_dijkstra as dijkstra;
pub use td_gen as gen;
pub use td_graph as graph;
pub use td_gtree as gtree;
pub use td_h2h as h2h;
pub use td_plf as plf;
pub use td_store as store;
pub use td_treedec as treedec;

/// The most common imports in one place.
pub mod prelude {
    pub use td_api::{
        build_index, load_index, load_tree_index, save_index, Backend, BoundedAnswer,
        DijkstraOracle, IncrementalIndex, IndexConfig, LiveIndex, ParallelExecutor, QueryBudget,
        QueryError, QuerySession, RoutingIndex, RoutingIndexExt, StoreError, UpdateError,
    };
    pub use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
    pub use td_gen::{Dataset, ProfileConfig, Query, Workload, WorkloadConfig};
    pub use td_graph::{GraphBuilder, Path, TdGraph, VertexId};
    pub use td_gtree::{GtreeConfig, TdGtree};
    pub use td_h2h::{H2hConfig, TdH2h};
    pub use td_plf::{Plf, DAY};
    pub use td_treedec::TreeDecomposition;
}
