#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access, so the workspace cannot pull the
//! real `rand` from crates.io. This shim implements exactly the surface the
//! workspace uses — `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `SliceRandom::shuffle` — with a deterministic
//! xoshiro256** generator. Streams are stable across runs and platforms but
//! do **not** match crates.io `rand`; everything in the workspace treats
//! seeds as opaque, so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Deterministically derives a full generator state from one word.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Range types that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// In-place slice shuffling (Fisher–Yates).
pub trait SliceRandom {
    /// Uniformly permutes the slice.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The most common imports in one place, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = a.gen_range(0..17);
            assert_eq!(x, b.gen_range(0..17));
            assert!(x < 17);
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&x));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            match rng.gen_range(-1i64..=1) {
                -1 => lo_seen = true,
                1 => hi_seen = true,
                0 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }
}
