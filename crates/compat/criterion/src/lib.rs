#![forbid(unsafe_code)]
// Reporting bench results on stdout is this crate's whole job.
#![allow(clippy::print_stdout)]
//! Offline stand-in for the `criterion` crate.
//!
//! No network access in this container, so this shim implements the subset
//! the workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `iter_batched`, and `black_box`. Timing is a plain warm-up + wall-clock
//! loop printing a mean ns/iter line — no statistics, plots, or HTML
//! reports, but the same bench sources compile and produce comparable
//! numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing for [`Bencher::iter_batched`] (ignored by the shim's timer).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup excluded from timing).
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Types accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    nanos_per_iter: f64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher {
            nanos_per_iter: f64::NAN,
            measure_for,
        }
    }

    /// Times `f` in a loop after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measure_for {
                break;
            }
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.measure_for {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.nanos_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark driver.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.measure_for, name, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(measure_for: Duration, label: &str, mut f: F) {
    let mut b = Bencher::new(measure_for);
    f(&mut b);
    println!("{label:<50} {:>14}/iter", fmt_nanos(b.nanos_per_iter));
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's timer is fixed-length
    /// so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(self.criterion.measure_for, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.measure_for, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
