#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! No network access in this container, so this shim provides the subset of
//! proptest the workspace's property tests use: the [`proptest!`] macro,
//! range and tuple strategies, [`collection::vec`], `prop_map`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic seeded
//! RNG; there is **no shrinking** — a failing case panics with the assert
//! message (the generating seed is deterministic per test, so failures
//! reproduce exactly).

use rand::prelude::*;
use std::ops::Range;

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic case generator handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// A runner seeded from the test name (stable across runs).
    pub fn from_name(name: &str) -> TestRunner {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just draws a value from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::prelude::*;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Runs each test body over `cases` generated inputs. Supports the
/// `#![proptest_config(...)]` header and `name(binding in strategy, ...)`
/// test signatures, mirroring real proptest syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts inside a proptest body (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// The most common imports in one place, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(v in collection::vec((0u32..5, 0.0f64..1.0), 0..8)) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|k| k * 100)) {
            prop_assert!(n == 100 || n == 200 || n == 300);
            prop_assert_eq!(n % 100, 0);
        }
    }
}
