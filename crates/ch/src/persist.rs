//! Snapshot persistence for the contraction order.
//!
//! Only the metric-independent state — the rank permutation, the
//! suffix-window starts and the build time — is written. The per-metric
//! shortcut arrays are recomputed on load by the same deterministic
//! [`crate::ContractionHierarchy::customize`] pass the build used, so a
//! CRC-valid edit of the file can never desynchronise the hierarchy from
//! the graph it is loaded next to, and the snapshot stays a fraction of the
//! in-memory size.

use crate::ContractionHierarchy;
use std::io::{Read, Write};
use td_graph::FrozenGraph;
use td_store::section::{read_f64s, read_u32s, tag4, write_f64s, write_u32s};
use td_store::StoreError;

const TAG_CH_RANK: u32 = tag4(*b"Hrnk");
const TAG_CH_STARTS: u32 = tag4(*b"Hwin");
const TAG_CH_SECS: u32 = tag4(*b"Hsec");

/// Writes the hierarchy's rank permutation, window starts and build time.
pub fn write_ch<W: Write>(ch: &ContractionHierarchy, w: &mut W) -> Result<(), StoreError> {
    write_u32s(w, TAG_CH_RANK, ch.rank_slice())?;
    write_f64s(w, TAG_CH_STARTS, ch.window_starts())?;
    write_f64s(w, TAG_CH_SECS, &[ch.construction_secs()])
}

/// Reads a rank permutation and window starts, validates them against
/// `fg`'s vertex count, and re-customizes the hierarchy for `fg`'s current
/// weights.
pub fn read_ch<R: Read>(r: &mut R, fg: &FrozenGraph) -> Result<ContractionHierarchy, StoreError> {
    let rank = read_u32s(r, TAG_CH_RANK)?;
    let starts = read_f64s(r, TAG_CH_STARTS)?;
    let secs = read_f64s(r, TAG_CH_SECS)?;
    if rank.len() != fg.num_vertices() {
        return Err(StoreError::invalid(format!(
            "CH order covers {} vertices, graph has {}",
            rank.len(),
            fg.num_vertices()
        )));
    }
    let mut seen = vec![false; rank.len()];
    for &r in &rank {
        if rank.len() <= r as usize || seen[r as usize] {
            return Err(StoreError::invalid("CH order is not a permutation"));
        }
        seen[r as usize] = true;
    }
    if starts.first() != Some(&0.0)
        || !starts.windows(2).all(|w| w[0] < w[1])
        || !starts.iter().all(|s| s.is_finite())
    {
        return Err(StoreError::invalid(
            "CH window starts must be finite, strictly increasing and begin at 0",
        ));
    }
    let [secs] = secs[..] else {
        return Err(StoreError::invalid("CH build time must be a single value"));
    };
    if secs.is_nan() || secs < 0.0 {
        return Err(StoreError::invalid("CH build time must be non-negative"));
    }
    let mut ch = ContractionHierarchy::from_parts(rank, starts, fg);
    ch.set_construction_secs(secs);
    Ok(ch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_identically() {
        let g = td_gen::random_graph::seeded_graph(4, 30, 22, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut buf = Vec::new();
        write_ch(&ch, &mut buf).unwrap();
        let back = read_ch(&mut buf.as_slice(), &fg).unwrap();
        assert_eq!(ch.rank_slice(), back.rank_slice());
        assert_eq!(ch.window_starts(), back.window_starts());
        assert_eq!(ch.num_shortcuts(), back.num_shortcuts());
        assert_eq!(
            ch.construction_secs().to_bits(),
            back.construction_secs().to_bits()
        );
        for idx in 0..ch.window_starts().len() {
            for v in 0..30u32 {
                assert_eq!(ch.metric(idx).up_edges(v).0, back.metric(idx).up_edges(v).0);
                let (aw, bw) = (ch.metric(idx).up_edges(v).1, back.metric(idx).up_edges(v).1);
                assert!(aw.iter().zip(bw).all(|(a, b)| a.to_bits() == b.to_bits()));
            }
        }
    }

    #[test]
    fn rejects_bad_permutations() {
        let g = td_gen::random_graph::seeded_graph(4, 10, 8, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut buf = Vec::new();
        write_ch(&ch, &mut buf).unwrap();

        // Wrong vertex count.
        let small = td_graph::TdGraph::with_vertices(5).freeze();
        assert!(read_ch(&mut buf.as_slice(), &small).is_err());

        // Duplicate rank: overwrite the second rank with the first.
        let mut dup = buf.clone();
        // Section header is 16 bytes; ranks start at byte 16, 4 bytes each.
        let first: [u8; 4] = dup[16..20].try_into().unwrap();
        dup[20..24].copy_from_slice(&first);
        // The CRC no longer matches, or — if recomputed — the permutation
        // check fires. Either way the load must fail.
        assert!(read_ch(&mut dup.as_slice(), &fg).is_err());
    }
}
