#![forbid(unsafe_code)]
// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)
//! # td-ch — scalar contraction hierarchies over lower-bound metrics
//!
//! The TD-A\* query path needs a potential `h(v)` = a lower bound on the
//! time-dependent cost `v → d`. A static graph whose edges carry lower
//! bounds on the TD weights gives admissible, *consistent* potentials — but
//! computing its exact distances with a full backward Dijkstra per
//! destination is O(n) per query, which defeats the paper's
//! pay-preprocessing-once premise.
//!
//! This crate contracts such scalar graphs once into a
//! [`ContractionHierarchy`] (Geisberger-style node contraction with witness
//! searches; the CH-Potentials idea of Strasser, Wagner & Zeitz and the TCH
//! line of Batz et al.). A destination's exact scalar distances are then
//! answered by one small backward *upward* search plus lazy memoized
//! resolution over the upward edge arrays — typically a few hundred vertices
//! instead of all of them (see `td_dijkstra::ChPotential`).
//!
//! Two refinements over a single min-over-the-day metric:
//!
//! * **Multi-metric suffix windows** (the multi-metric potentials of the
//!   CATCHUp line): the hierarchy carries one customized weight set per
//!   window start `τ_k`, where metric `k` weighs each edge by
//!   `min_{τ ≥ τ_k} w_e(τ)`. A query departing at `t` uses the largest
//!   `τ_k ≤ t` — valid because FIFO arrival times along the search never
//!   precede the departure, and far tighter than the whole-day minimum
//!   once rush hour has started (metric 0 has `τ_0 = 0`, the classic
//!   global min).
//! * **Metric-independent order**: the contraction order is computed once
//!   (lazy edge-difference heuristic on metric 0) and kept across weight
//!   changes; [`ContractionHierarchy::customize`] re-derives every metric's
//!   shortcuts deterministically in that fixed order. Build, `update_edges`
//!   re-customization and snapshot load all run this same pass, so all
//!   three produce bit-identical hierarchies.

use td_graph::{EdgeId, FrozenGraph, VertexId};
use td_plf::eval_times_into;

pub mod persist;

/// Cap on vertices settled per witness search. A hit means the search was
/// inconclusive and the shortcut is added anyway — only exactness of the
/// *pruning* (shortcut count), never of distances, depends on this.
const WITNESS_SETTLE_CAP: usize = 128;

/// Default suffix-window starts (seconds): every three hours. Denser than
/// the congestion pattern's features so some window opens shortly before
/// any departure; `starts[0] = 0` keeps the whole-day minimum as the
/// fallback metric for pre-dawn departures.
pub const DEFAULT_WINDOW_STARTS: [f64; 8] = [
    0.0,
    3.0 * 3600.0,
    6.0 * 3600.0,
    9.0 * 3600.0,
    12.0 * 3600.0,
    15.0 * 3600.0,
    18.0 * 3600.0,
    21.0 * 3600.0,
];

/// One customized metric: flat upward and backward-upward adjacency
/// (original edges and shortcuts together, each with its scalar weight).
///
/// `up` holds every edge `(v, u)` with `rank(u) > rank(v)` in forward
/// direction; the backward arrays hold every edge `(u, v)` with
/// `rank(u) > rank(v)` indexed at `v` — both searches of a CH query climb
/// ranks only.
#[derive(Clone, Debug, Default)]
pub struct MetricCsr {
    /// Upward CSR: `up_first[v]..up_first[v+1]` delimits `v`'s up-edges.
    up_first: Vec<u32>,
    up_head: Vec<VertexId>,
    up_weight: Vec<f64>,
    /// Backward-upward CSR: at `v`, the tails `u` (with `rank(u) > rank(v)`)
    /// of down-edges `u → v`.
    down_first: Vec<u32>,
    down_tail: Vec<VertexId>,
    down_weight: Vec<f64>,
    /// Shortcut edges added on top of the original min-cost edges.
    num_shortcuts: usize,
}

impl MetricCsr {
    /// `v`'s upward edges as parallel `(heads, weights)` slices — every
    /// head has a higher rank than `v`.
    #[inline]
    // td-lint: hot
    pub fn up_edges(&self, v: VertexId) -> (&[VertexId], &[f64]) {
        debug_assert!((v as usize + 1) < self.up_first.len());
        let lo = self.up_first[v as usize] as usize;
        let hi = self.up_first[v as usize + 1] as usize;
        (&self.up_head[lo..hi], &self.up_weight[lo..hi])
    }

    /// The higher-ranked tails of down-edges into `v`, as parallel
    /// `(tails, weights)` slices — the backward search's adjacency.
    #[inline]
    // td-lint: hot
    pub fn backward_up_edges(&self, v: VertexId) -> (&[VertexId], &[f64]) {
        debug_assert!((v as usize + 1) < self.down_first.len());
        let lo = self.down_first[v as usize] as usize;
        let hi = self.down_first[v as usize + 1] as usize;
        (&self.down_tail[lo..hi], &self.down_weight[lo..hi])
    }

    /// Shortcut edges added on top of the original (deduplicated) edges.
    #[inline]
    pub fn num_shortcuts(&self) -> usize {
        self.num_shortcuts
    }

    /// Total directed edges (up + down, originals and shortcuts).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.up_head.len() + self.down_tail.len()
    }

    fn heap_bytes(&self) -> usize {
        (self.up_first.capacity()
            + self.up_head.capacity()
            + self.down_first.capacity()
            + self.down_tail.capacity())
            * std::mem::size_of::<u32>()
            + (self.up_weight.capacity() + self.down_weight.capacity()) * std::mem::size_of::<f64>()
    }
}

/// The contracted scalar lower-bound graphs: a rank per vertex plus one
/// [`MetricCsr`] per suffix window.
#[derive(Clone, Debug, Default)]
pub struct ContractionHierarchy {
    /// `rank[v]` = position of `v` in the contraction order (0 = first).
    rank: Vec<u32>,
    /// Suffix-window starts, strictly increasing, `starts[0] == 0`.
    starts: Vec<f64>,
    /// One customized hierarchy per window, parallel to `starts`.
    metrics: Vec<MetricCsr>,
    /// Wall time of the initial `build` (ordering + customization).
    construction_secs: f64,
}

/// `min_{τ ≥ from} w_e(τ)` for the frozen edge `e`: the minimum of the
/// function evaluated at `from` and every later breakpoint value (pieces
/// are linear, and beyond the last breakpoint the function clamps, so the
/// suffix minimum is attained at `from` or at a breakpoint).
fn suffix_min(fg: &FrozenGraph, e: EdgeId, from: f64) -> f64 {
    let w = fg.weight(e);
    let times = w.times();
    let values = w.values();
    let mut m = w.eval(from);
    // First breakpoint strictly after `from`.
    let idx = times.partition_point(|&t| t <= from);
    for &v in &values[idx..] {
        m = m.min(v);
    }
    m
}

/// [`suffix_min`] for **all** window starts of one edge in a single pass:
/// the batch kernel evaluates the function at every (sorted ascending)
/// start in one hint-chained walk, then one right-to-left sweep folds the
/// breakpoint suffix minima shared between adjacent windows. Bit-identical
/// to calling `suffix_min` per window — all weights are finite and
/// non-negative, so the `f64::min` fold is order-insensitive.
fn suffix_min_all(fg: &FrozenGraph, e: EdgeId, starts: &[f64], evals: &mut [f64], out: &mut [f64]) {
    debug_assert_eq!(starts.len(), evals.len());
    debug_assert_eq!(starts.len(), out.len());
    debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
    let w = fg.weight(e);
    eval_times_into(w, starts, evals);
    let times = w.times();
    let values = w.values();
    // Walk windows from the last start down, extending the suffix minimum
    // of `values[cut..]` as the cut moves left.
    let mut idx = times.len();
    let mut suf = f64::INFINITY;
    for k in (0..starts.len()).rev() {
        let cut = times[..idx].partition_point(|&t| t <= starts[k]);
        for &v in &values[cut..idx] {
            suf = suf.min(v);
        }
        idx = cut;
        out[k] = evals[k].min(suf);
    }
    debug_assert!(out
        .iter()
        .zip(starts)
        .all(|(&m, &s)| m.to_bits() == suffix_min(fg, e, s).to_bits()));
}

/// The dynamic graph a contraction pass works on: per-vertex forward and
/// backward adjacency with parallel edges collapsed to their minimum weight,
/// plus scratch for the witness searches.
struct Contractor {
    fwd: Vec<Vec<(VertexId, f64)>>,
    bwd: Vec<Vec<(VertexId, f64)>>,
    contracted: Vec<bool>,
    /// Witness-search scratch: tentative distances, generation-stamped.
    dist: Vec<f64>,
    dist_gen: Vec<u32>,
    gen: u32,
    heap: std::collections::BinaryHeap<HeapEntry>,
    /// Shortcut buffer reused across per-node simulations.
    shortcuts: Vec<(VertexId, VertexId, f64)>,
}

#[derive(Copy, Clone)]
struct HeapEntry {
    key: f64,
    vertex: VertexId,
}
impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `total_cmp` keeps the comparison panic-free (weights are finite by
        // construction; a NaN would order deterministically, not abort).
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl Contractor {
    /// Seeds the working graph from `fg`'s topology with one scalar weight
    /// per out-slot (parallel to the CSR `head` array; parallel edges
    /// collapsed to the minimum, self-loops dropped — they never lie on a
    /// shortest path since weights are non-negative).
    fn seed(fg: &FrozenGraph, slot_weights: &[f64]) -> Contractor {
        let n = fg.num_vertices();
        let mut fwd: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        let mut bwd: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        let mut slot = 0usize;
        for v in 0..n as u32 {
            let (heads, _) = fg.csr.out_slices(v);
            for &u in heads {
                let w = slot_weights[slot];
                slot += 1;
                if u == v {
                    continue;
                }
                match fwd[v as usize].iter_mut().find(|(h, _)| *h == u) {
                    Some((_, old)) => *old = old.min(w),
                    None => fwd[v as usize].push((u, w)),
                }
            }
        }
        for v in 0..n as u32 {
            for &(u, w) in &fwd[v as usize] {
                bwd[u as usize].push((v, w));
            }
        }
        Contractor {
            fwd,
            bwd,
            contracted: vec![false; n],
            dist: vec![f64::INFINITY; n],
            dist_gen: vec![0; n],
            gen: 0,
            heap: std::collections::BinaryHeap::new(),
            shortcuts: Vec::new(),
        }
    }

    /// Live (uncontracted, non-self) neighbours of `x` in one direction.
    fn live<'a>(
        adj: &'a [Vec<(VertexId, f64)>],
        contracted: &'a [bool],
        x: VertexId,
    ) -> impl Iterator<Item = (VertexId, f64)> + 'a {
        adj[x as usize]
            .iter()
            .copied()
            .filter(move |&(y, _)| y != x && !contracted[y as usize])
    }

    /// Bounded witness Dijkstra from `source` in the live graph, excluding
    /// `excluded`, stopping once the frontier exceeds `cutoff` or the settle
    /// cap is hit. Distances land in the generation-stamped `dist` array.
    fn witness_search(&mut self, source: VertexId, excluded: VertexId, cutoff: f64) {
        self.gen = if self.gen == u32::MAX {
            self.dist_gen.fill(0);
            1
        } else {
            self.gen + 1
        };
        self.heap.clear();
        self.dist[source as usize] = 0.0;
        self.dist_gen[source as usize] = self.gen;
        self.heap.push(HeapEntry {
            key: 0.0,
            vertex: source,
        });
        let mut settled = 0usize;
        while let Some(HeapEntry { key, vertex: u }) = self.heap.pop() {
            if key > self.dist[u as usize] {
                continue; // stale
            }
            settled += 1;
            if settled > WITNESS_SETTLE_CAP || key > cutoff {
                break;
            }
            for (v, w) in &self.fwd[u as usize] {
                let (v, w) = (*v, *w);
                if v == excluded || self.contracted[v as usize] {
                    continue;
                }
                let cand = key + w;
                let known = if self.dist_gen[v as usize] == self.gen {
                    self.dist[v as usize]
                } else {
                    f64::INFINITY
                };
                if cand < known {
                    self.dist[v as usize] = cand;
                    self.dist_gen[v as usize] = self.gen;
                    self.heap.push(HeapEntry {
                        key: cand,
                        vertex: v,
                    });
                }
            }
        }
    }

    /// The shortcuts contracting `x` would need: for every live in-neighbour
    /// `u` and out-neighbour `v` of `x`, shortcut `u → v` with weight
    /// `w(u,x) + w(x,v)` unless a witness path at most that long avoids `x`.
    /// Fills `self.shortcuts` (deterministic order).
    fn simulate(&mut self, x: VertexId) {
        self.shortcuts.clear();
        let ins: Vec<(VertexId, f64)> = Self::live(&self.bwd, &self.contracted, x).collect();
        let outs: Vec<(VertexId, f64)> = Self::live(&self.fwd, &self.contracted, x).collect();
        if ins.is_empty() || outs.is_empty() {
            return;
        }
        let max_out = outs.iter().fold(0f64, |m, &(_, w)| m.max(w));
        for &(u, w_ux) in &ins {
            self.witness_search(u, x, w_ux + max_out);
            for &(v, w_xv) in &outs {
                if v == u {
                    continue;
                }
                let sc = w_ux + w_xv;
                let witness = if self.dist_gen[v as usize] == self.gen {
                    self.dist[v as usize]
                } else {
                    f64::INFINITY
                };
                if witness <= sc {
                    continue;
                }
                self.shortcuts.push((u, v, sc));
            }
        }
    }

    /// The edge-difference priority of contracting `x` right now:
    /// `#shortcuts − #removed edges + #already-contracted neighbours`
    /// (the deleted-neighbour term spreads contraction evenly).
    fn priority(&mut self, x: VertexId, deleted_neighbors: &[u32]) -> i64 {
        self.simulate(x);
        let ins = Self::live(&self.bwd, &self.contracted, x).count();
        let outs = Self::live(&self.fwd, &self.contracted, x).count();
        self.shortcuts.len() as i64 - (ins + outs) as i64 + deleted_neighbors[x as usize] as i64
    }

    /// Contracts `x`: materialises `self.shortcuts` into the live graph
    /// (keeping minima over parallel edges) and marks `x` contracted.
    /// `simulate(x)` must have run last for `x`.
    fn contract(&mut self, x: VertexId) {
        let shortcuts = std::mem::take(&mut self.shortcuts);
        for &(u, v, w) in &shortcuts {
            match self.fwd[u as usize].iter_mut().find(|(h, _)| *h == v) {
                Some((_, old)) => {
                    if w < *old {
                        *old = w;
                        let back = self.bwd[v as usize]
                            .iter_mut()
                            .find(|(t, _)| *t == u)
                            .expect("fwd/bwd stay mirrored");
                        back.1 = w;
                    }
                }
                None => {
                    self.fwd[u as usize].push((v, w));
                    self.bwd[v as usize].push((u, w));
                }
            }
        }
        self.shortcuts = shortcuts;
        self.contracted[x as usize] = true;
    }
}

impl ContractionHierarchy {
    /// Contracts `fg`'s lower-bound metrics with the default suffix windows
    /// ([`DEFAULT_WINDOW_STARTS`]): computes a contraction order with the
    /// lazy edge-difference heuristic on the whole-day minimum, then runs
    /// the shared fixed-order [`ContractionHierarchy::customize`] pass for
    /// every window.
    pub fn build(fg: &FrozenGraph) -> ContractionHierarchy {
        Self::build_with(fg, &DEFAULT_WINDOW_STARTS)
    }

    /// [`ContractionHierarchy::build`] with explicit window starts
    /// (strictly increasing, `starts[0]` must be `0` so every departure
    /// time has a valid metric).
    pub fn build_with(fg: &FrozenGraph, starts: &[f64]) -> ContractionHierarchy {
        // td-lint: allow(assert-policy) public build-time precondition, validated once per construction
        assert!(
            starts.first() == Some(&0.0) && starts.windows(2).all(|w| w[0] < w[1]),
            "window starts must be strictly increasing and begin at 0"
        );
        let t0 = std::time::Instant::now();
        let order_span = td_obs::ENABLED.then(|| td_obs::phase("ch_order"));
        let rank = Self::compute_order(fg);
        drop(order_span);
        let mut ch = ContractionHierarchy {
            rank,
            starts: starts.to_vec(),
            ..ContractionHierarchy::default()
        };
        ch.customize(fg);
        ch.construction_secs = t0.elapsed().as_secs_f64();
        ch
    }

    /// The contraction order by lazy-updated edge-difference priorities on
    /// the whole-day-minimum metric: pop the cheapest candidate, re-evaluate
    /// it against the moved graph, contract if it still wins, otherwise
    /// reinsert. Deterministic (ties break on vertex id).
    fn compute_order(fg: &FrozenGraph) -> Vec<u32> {
        let n = fg.num_vertices();
        let global_min: Vec<f64> = (0..n as u32)
            .flat_map(|v| fg.out_slices_with_min(v).2.iter().copied())
            .collect();
        let mut c = Contractor::seed(fg, &global_min);
        let mut deleted_neighbors = vec![0u32; n];
        // Min-heap via Reverse on (priority, vertex).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32)>> = (0..n as u32)
            .map(|v| std::cmp::Reverse((c.priority(v, &deleted_neighbors), v)))
            .collect();
        let mut rank = vec![0u32; n];
        let mut next_rank = 0u32;
        while let Some(std::cmp::Reverse((p, x))) = heap.pop() {
            if c.contracted[x as usize] {
                continue;
            }
            let fresh = c.priority(x, &deleted_neighbors);
            if fresh > p {
                if let Some(&std::cmp::Reverse((top, _))) = heap.peek() {
                    if fresh > top {
                        heap.push(std::cmp::Reverse((fresh, x)));
                        continue;
                    }
                }
            }
            // `simulate(x)` ran inside `priority`; contract on its result.
            for (y, _) in Contractor::live(&c.bwd, &c.contracted, x)
                .chain(Contractor::live(&c.fwd, &c.contracted, x))
                .collect::<Vec<_>>()
            {
                deleted_neighbors[y as usize] += 1;
            }
            c.contract(x);
            rank[x as usize] = next_rank;
            next_rank += 1;
        }
        debug_assert_eq!(next_rank as usize, n);
        rank
    }

    /// Recomputes every metric's shortcuts and weights for the **current**
    /// weights of `fg` under the stored (metric-independent) order. This
    /// one deterministic pass serves initial build, `update_edges`
    /// re-customization and snapshot load, so all three yield bit-identical
    /// hierarchies.
    ///
    /// Contracting strictly in rank order with witness searches is exact for
    /// any metric: when a vertex is contracted, every shortest path through
    /// it between live neighbours is preserved by a shortcut (or a witness
    /// proves none is needed), so upward/downward distances in the result
    /// equal true scalar distances.
    pub fn customize(&mut self, fg: &FrozenGraph) {
        let _span = td_obs::ENABLED.then(|| td_obs::phase("ch_customize"));
        let n = fg.num_vertices();
        // td-lint: allow(assert-policy) build/update-time precondition guarding snapshot misuse
        assert_eq!(self.rank.len(), n, "order was built for a different graph");
        let mut order: Vec<VertexId> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| self.rank[v as usize]);

        // Per-out-slot suffix minima for every window, parallel to the CSR
        // heads — edge-major so each edge's breakpoints are walked once for
        // all windows (batched evaluation + one shared suffix-min sweep)
        // instead of once per window.
        let nw = self.starts.len();
        let mut slot_weights: Vec<Vec<f64>> = vec![Vec::new(); nw];
        let mut evals = vec![0.0f64; nw];
        let mut mins = vec![0.0f64; nw];
        for v in 0..n as u32 {
            let (_, edges) = fg.csr.out_slices(v);
            for &e in edges {
                suffix_min_all(fg, e, &self.starts, &mut evals, &mut mins);
                for (k, &m) in mins.iter().enumerate() {
                    slot_weights[k].push(m);
                }
            }
        }
        self.metrics = slot_weights
            .iter()
            .map(|sw| Self::customize_metric(fg, &order, sw))
            .collect();
    }

    /// One fixed-order contraction pass over one scalar metric.
    fn customize_metric(fg: &FrozenGraph, order: &[VertexId], slot_weights: &[f64]) -> MetricCsr {
        let n = fg.num_vertices();
        let mut c = Contractor::seed(fg, slot_weights);
        let original_edges: usize = c.fwd.iter().map(Vec::len).sum();
        let mut up: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        let mut down_rev: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        let mut total_edges = 0usize;
        for &x in order {
            // Freeze x's live adjacency into the hierarchy: out-edges are
            // x's up-edges, in-edges are down-edges u → x recorded at x.
            up[x as usize] = Contractor::live(&c.fwd, &c.contracted, x).collect();
            down_rev[x as usize] = Contractor::live(&c.bwd, &c.contracted, x).collect();
            total_edges += up[x as usize].len() + down_rev[x as usize].len();
            c.simulate(x);
            c.contract(x);
        }

        let flatten = |adj: Vec<Vec<(VertexId, f64)>>| {
            let mut first = Vec::with_capacity(n + 1);
            let mut heads = Vec::new();
            let mut weights = Vec::new();
            first.push(0u32);
            for list in adj {
                for (h, w) in list {
                    heads.push(h);
                    weights.push(w);
                }
                first.push(heads.len() as u32);
            }
            (first, heads, weights)
        };
        let (up_first, up_head, up_weight) = flatten(up);
        let (down_first, down_tail, down_weight) = flatten(down_rev);
        MetricCsr {
            up_first,
            up_head,
            up_weight,
            down_first,
            down_tail,
            down_weight,
            // Each surviving edge is frozen exactly once (at its
            // lower-ranked endpoint), so the shortcut count is what
            // contraction added on top of the deduplicated, self-loop-free
            // original edges.
            num_shortcuts: total_edges.saturating_sub(original_edges),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.rank.len()
    }

    /// `v`'s contraction rank (higher = contracted later = more important).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// The suffix-window starts, strictly increasing from 0.
    #[inline]
    pub fn window_starts(&self) -> &[f64] {
        &self.starts
    }

    /// The index of the metric a query departing at `t` must use: the
    /// largest window start ≤ `t` (index 0 — the whole-day minimum — for
    /// `t < 0`, which only proptest edge cases produce).
    #[inline]
    // td-lint: hot
    pub fn metric_index(&self, t: f64) -> usize {
        self.starts.partition_point(|&s| s <= t).saturating_sub(1)
    }

    /// The customized hierarchy of metric `idx`.
    #[inline]
    // td-lint: hot
    pub fn metric(&self, idx: usize) -> &MetricCsr {
        debug_assert!(idx < self.metrics.len());
        &self.metrics[idx]
    }

    /// The customized hierarchy a query departing at `t` must use.
    #[inline]
    // td-lint: hot
    pub fn metric_for(&self, t: f64) -> &MetricCsr {
        debug_assert!(!self.metrics.is_empty(), "customize runs before queries");
        &self.metrics[self.metric_index(t)]
    }

    /// Shortcuts added across all metrics.
    pub fn num_shortcuts(&self) -> usize {
        self.metrics.iter().map(MetricCsr::num_shortcuts).sum()
    }

    /// Total directed edges stored across all metrics.
    pub fn num_edges(&self) -> usize {
        self.metrics.iter().map(MetricCsr::num_edges).sum()
    }

    /// Wall time of the initial build.
    #[inline]
    pub fn construction_secs(&self) -> f64 {
        self.construction_secs
    }

    pub(crate) fn rank_slice(&self) -> &[u32] {
        &self.rank
    }

    pub(crate) fn set_construction_secs(&mut self, secs: f64) {
        self.construction_secs = secs;
    }

    pub(crate) fn from_parts(
        rank: Vec<u32>,
        starts: Vec<f64>,
        fg: &FrozenGraph,
    ) -> ContractionHierarchy {
        let mut ch = ContractionHierarchy {
            rank,
            starts,
            ..ContractionHierarchy::default()
        };
        ch.customize(fg);
        ch
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.rank.capacity() * std::mem::size_of::<u32>()
            + self.starts.capacity() * std::mem::size_of::<f64>()
            + self
                .metrics
                .iter()
                .map(MetricCsr::heap_bytes)
                .sum::<usize>()
    }

    /// Exact metric-0 (whole-day minimum) distance `s → d` by a
    /// bidirectional upward search — the reference query used by the tests
    /// (the hot path is the lazy potential in td-dijkstra).
    pub fn dist(&self, s: VertexId, d: VertexId) -> f64 {
        self.dist_in_metric(0, s, d)
    }

    /// Exact distance `s → d` within metric `idx`.
    pub fn dist_in_metric(&self, idx: usize, s: VertexId, d: VertexId) -> f64 {
        let m = &self.metrics[idx];
        let fwd = self.upward_sweep(m, s, true);
        let bwd = self.upward_sweep(m, d, false);
        fwd.iter()
            .zip(bwd.iter())
            .fold(f64::INFINITY, |acc, (&a, &b)| acc.min(a + b))
    }

    /// One full upward Dijkstra from `start` over the up-edges (`forward`)
    /// or the backward-up edges (`!forward`).
    fn upward_sweep(&self, m: &MetricCsr, start: VertexId, forward: bool) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; self.num_vertices()];
        let mut heap = std::collections::BinaryHeap::new();
        dist[start as usize] = 0.0;
        heap.push(HeapEntry {
            key: 0.0,
            vertex: start,
        });
        while let Some(HeapEntry { key, vertex: u }) = heap.pop() {
            if key > dist[u as usize] {
                continue;
            }
            let (heads, weights) = if forward {
                m.up_edges(u)
            } else {
                m.backward_up_edges(u)
            };
            for (&v, &w) in heads.iter().zip(weights.iter()) {
                if key + w < dist[v as usize] {
                    dist[v as usize] = key + w;
                    heap.push(HeapEntry {
                        key: key + w,
                        vertex: v,
                    });
                }
            }
        }
        dist
    }
}

// Compile-time pin: the hierarchy and its customized metrics are shared
// read-only across query threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<ContractionHierarchy>();
    shared_across_threads::<MetricCsr>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::seeded_graph;
    use td_graph::TdGraph;

    /// Plain Dijkstra over per-edge scalar weights — the oracle every
    /// metric's CH must match.
    fn scalar_dist(
        g: &TdGraph,
        s: VertexId,
        d: VertexId,
        weight: impl Fn(td_graph::EdgeId) -> f64,
    ) -> f64 {
        let n = g.num_vertices();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s as usize] = 0.0;
        heap.push(HeapEntry {
            key: 0.0,
            vertex: s,
        });
        while let Some(HeapEntry { key, vertex: u }) = heap.pop() {
            if key > dist[u as usize] {
                continue;
            }
            for &(v, e) in g.out_edges(u) {
                let cand = key + weight(e);
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    heap.push(HeapEntry {
                        key: cand,
                        vertex: v,
                    });
                }
            }
        }
        dist[d as usize]
    }

    #[test]
    fn batched_suffix_minima_match_scalar_per_edge_and_window() {
        for seed in 0..4u64 {
            let g = seeded_graph(seed, 40, 30, 4);
            let fg = g.freeze();
            let nw = DEFAULT_WINDOW_STARTS.len();
            let mut evals = vec![0.0; nw];
            let mut mins = vec![0.0; nw];
            for e in 0..fg.num_edges() as u32 {
                suffix_min_all(&fg, e, &DEFAULT_WINDOW_STARTS, &mut evals, &mut mins);
                for (k, &from) in DEFAULT_WINDOW_STARTS.iter().enumerate() {
                    assert_eq!(
                        mins[k].to_bits(),
                        suffix_min(&fg, e, from).to_bits(),
                        "seed={seed} e={e} window={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn ch_distances_match_min_dijkstra_in_every_metric() {
        for seed in 0..4u64 {
            let g = seeded_graph(seed, 50, 35, 3);
            let fg = g.freeze();
            let ch = ContractionHierarchy::build(&fg);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc4);
            for idx in 0..ch.window_starts().len() {
                let from = ch.window_starts()[idx];
                for _ in 0..10 {
                    let s = rng.gen_range(0..50) as u32;
                    let d = rng.gen_range(0..50) as u32;
                    let want = scalar_dist(&g, s, d, |e| suffix_min(&fg, e, from));
                    let got = ch.dist_in_metric(idx, s, d);
                    if want.is_infinite() {
                        assert!(got.is_infinite(), "seed={seed} m={idx} s={s} d={d}: {got}");
                    } else {
                        assert!(
                            (want - got).abs() < 1e-9,
                            "seed={seed} m={idx} s={s} d={d}: {want} vs {got}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn suffix_min_bounds_the_suffix() {
        let g = seeded_graph(8, 20, 14, 5);
        let fg = g.freeze();
        for e in 0..g.num_edges() as u32 {
            // From 0, the suffix minimum is the global minimum.
            assert!(
                (suffix_min(&fg, e, 0.0) - fg.weight(e).min_value()).abs() < 1e-12,
                "e={e}: suffix_min(0) must equal the global min"
            );
            for from in [0.0, 3.0 * 3600.0, 12.0 * 3600.0, 23.0 * 3600.0] {
                let got = suffix_min(&fg, e, from);
                // Never below the global minimum, never above any sampled
                // suffix value (dense sampling can miss valleys, so it only
                // bounds from above).
                assert!(got >= fg.weight(e).min_value() - 1e-12, "e={e} from={from}");
                let sampled = (0..2000)
                    .map(|i| from + i as f64 * (86_400.0 * 1.5 - from) / 2000.0)
                    .map(|t| fg.weight(e).eval(t))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    got <= sampled + 1e-9,
                    "e={e} from={from}: suffix_min {got} above sampled {sampled}"
                );
            }
        }
    }

    #[test]
    fn later_windows_are_tighter() {
        let g = seeded_graph(1, 40, 30, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let s = rng.gen_range(0..40) as u32;
            let d = rng.gen_range(0..40) as u32;
            let mut prev = ch.dist_in_metric(0, s, d);
            for idx in 1..ch.window_starts().len() {
                let cur = ch.dist_in_metric(idx, s, d);
                assert!(
                    cur >= prev - 1e-9,
                    "metric {idx} loosened the bound: {cur} < {prev} (s={s} d={d})"
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn metric_index_selects_the_window() {
        let g = seeded_graph(0, 10, 8, 3);
        let ch = ContractionHierarchy::build(&g.freeze());
        assert_eq!(ch.metric_index(-5.0), 0);
        assert_eq!(ch.metric_index(0.0), 0);
        assert_eq!(ch.metric_index(3.0 * 3600.0 - 1.0), 0);
        assert_eq!(ch.metric_index(3.0 * 3600.0), 1);
        assert_eq!(ch.metric_index(23.9 * 3600.0), 7);
        assert_eq!(ch.metric_index(99.0 * 3600.0), 7);
    }

    #[test]
    fn customize_is_deterministic_and_matches_build() {
        let g = seeded_graph(9, 40, 30, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let ch2 = ContractionHierarchy::from_parts(
            ch.rank_slice().to_vec(),
            ch.window_starts().to_vec(),
            &fg,
        );
        for idx in 0..ch.window_starts().len() {
            let (a, b) = (ch.metric(idx), ch2.metric(idx));
            assert_eq!(a.up_first, b.up_first);
            assert_eq!(a.up_head, b.up_head);
            assert_eq!(a.down_first, b.down_first);
            assert_eq!(a.down_tail, b.down_tail);
            assert_eq!(
                a.up_weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                b.up_weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(a.num_shortcuts(), b.num_shortcuts());
        }
    }

    #[test]
    fn recustomize_tracks_weight_changes() {
        use td_plf::Plf;
        let mut g = seeded_graph(2, 30, 22, 3);
        let fg = g.freeze();
        let mut ch = ContractionHierarchy::build(&fg);
        // Slash one edge's cost and re-customize: distances must follow.
        let e = 0u32;
        g.set_weight(e, Plf::constant(0.5)).unwrap();
        let fg2 = g.freeze();
        ch.customize(&fg2);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let s = rng.gen_range(0..30) as u32;
            let d = rng.gen_range(0..30) as u32;
            let want = scalar_dist(&g, s, d, |e| fg2.min_cost(e));
            let got = ch.dist(s, d);
            if want.is_infinite() {
                assert!(got.is_infinite());
            } else {
                assert!((want - got).abs() < 1e-9, "s={s} d={d}: {want} vs {got}");
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = TdGraph::with_vertices(0);
        let ch = ContractionHierarchy::build(&g.freeze());
        assert_eq!(ch.num_vertices(), 0);

        let g = TdGraph::with_vertices(1);
        let ch = ContractionHierarchy::build(&g.freeze());
        assert_eq!(ch.num_vertices(), 1);
        assert_eq!(ch.dist(0, 0), 0.0);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = seeded_graph(5, 35, 25, 3);
        let ch = ContractionHierarchy::build(&g.freeze());
        let mut seen = [false; 35];
        for v in 0..35u32 {
            let r = ch.rank(v) as usize;
            assert!(!seen[r], "duplicate rank {r}");
            seen[r] = true;
        }
    }
}
