#![forbid(unsafe_code)]
//! # td-h2h — the TD-H2H baseline
//!
//! TD-H2H extends the static H2H index \[21\] to time-dependent networks
//! (\[17\], used as a competitor in the paper's §5): every tree node keeps the
//! exact shortest travel-cost functions to **all** of its ancestors, in both
//! directions. Queries are then always the paper's "situation (1)": an
//! `O(w(T_G))` combination over the LCA cut — the fastest possible — but the
//! label space is `O(n · h · c)` interpolation points, which is exactly the
//! memory blow-up that motivates the paper's shortcut *selection* (Table 3:
//! TD-H2H's index is ~34× TD-G-tree's on CAL; §5.2: it cannot be built for
//! SF and larger).
//!
//! Implementation-wise this is the `td-core` machinery with the `All`
//! selection strategy; the crate exists to give the baseline its own name,
//! measurement surface and tests.

use td_core::{CostScratch, IndexOptions, ProfileScratch, SelectionStrategy, TdTreeIndex};
use td_graph::{Path, TdGraph, VertexId};
use td_plf::Plf;

/// TD-H2H construction options, mirroring the config-struct constructors of
/// the other backends.
#[derive(Clone, Copy, Debug, Default)]
pub struct H2hConfig {
    /// Worker threads for the label passes (0 = all cores).
    pub threads: usize,
}

/// The TD-H2H index: a full 2-hop label over the tree decomposition.
pub struct TdH2h {
    inner: TdTreeIndex,
}

impl TdH2h {
    /// Builds the full label (single pass, no selection).
    pub fn build(graph: TdGraph, cfg: H2hConfig) -> TdH2h {
        TdH2h {
            inner: TdTreeIndex::build(
                graph,
                IndexOptions {
                    strategy: SelectionStrategy::All,
                    threads: cfg.threads,
                    track_supports: false,
                },
            ),
        }
    }

    /// Pre-config-struct constructor, kept as a shim for one release.
    #[deprecated(
        since = "0.1.0",
        note = "use `TdH2h::build(graph, H2hConfig { threads })`"
    )]
    pub fn build_with_threads(graph: TdGraph, threads: usize) -> TdH2h {
        TdH2h::build(graph, H2hConfig { threads })
    }

    /// Travel cost query (always an `O(w)` label combination).
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.inner.query_cost(s, d, t)
    }

    /// Shortest travel cost function query.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.inner.query_profile(s, d)
    }

    /// Travel cost and path.
    pub fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.inner.query_path(s, d, t)
    }

    /// [`TdH2h::query_cost`] reusing `scratch` (allocation-free after
    /// warm-up).
    pub fn query_cost_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        self.inner.query_cost_with(scratch, s, d, t)
    }

    /// [`TdH2h::query_profile`] reusing `scratch`'s sweep tables.
    pub fn query_profile_with(
        &self,
        scratch: &mut ProfileScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        self.inner.query_profile_with(scratch, s, d)
    }

    /// [`TdH2h::query_path`] reusing `scratch`'s sweep buffers.
    pub fn query_path_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        self.inner.query_path_with(scratch, s, d, t)
    }

    /// Label memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    /// Number of label entries (pair instances).
    pub fn num_labels(&self) -> usize {
        self.inner.shortcuts().num_pairs()
    }

    /// Total stored interpolation points.
    pub fn total_points(&self) -> usize {
        self.inner.shortcuts().total_points()
    }

    /// Construction wall time in seconds.
    pub fn construction_secs(&self) -> f64 {
        self.inner.build_stats.total_secs()
    }

    /// Access to the underlying index (for experiments).
    pub fn inner(&self) -> &TdTreeIndex {
        &self.inner
    }
}

/// Snapshot persistence: a TD-H2H snapshot is its inner TD-tree index
/// (built with the `All` strategy); loading verifies the strategy so a
/// TD-appro body cannot masquerade as a full label.
impl td_store::Persist for TdH2h {
    fn write_into<W: std::io::Write>(&self, w: &mut W) -> Result<(), td_store::StoreError> {
        self.inner.write_into(w)
    }

    fn read_from<R: std::io::Read>(r: &mut R) -> Result<TdH2h, td_store::StoreError> {
        let inner = TdTreeIndex::read_from(r)?;
        if inner.options.strategy != SelectionStrategy::All {
            return Err(td_store::StoreError::invalid(
                "TD-H2H snapshot must hold the `All` selection strategy",
            ));
        }
        Ok(TdH2h { inner })
    }
}

// Compile-time pin: built indexes are shared read-only across query
// threads. A future `Rc`/`Cell` field fails this line instead of a test.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<TdH2h>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn h2h_matches_the_oracle() {
        for seed in 0..3u64 {
            let g = seeded_graph(seed, 30, 20, 3);
            let h2h = TdH2h::build(g.clone(), H2hConfig { threads: 2 });
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..40 {
                let s = rng.gen_range(0..30) as u32;
                let d = rng.gen_range(0..30) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let got = h2h.query_cost(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-5, "seed={seed} s={s} d={d} t={t}")
                    }
                    (None, None) => {}
                    other => panic!("{other:?}"),
                }
            }
        }
    }

    #[test]
    fn h2h_profile_matches_basic_index() {
        let g = seeded_graph(9, 25, 15, 3);
        let h2h = TdH2h::build(g.clone(), H2hConfig { threads: 2 });
        let basic = td_core::TdTreeIndex::build(g, td_core::IndexOptions::default());
        for s in 0..25u32 {
            for d in [0u32, 7, 13, 24] {
                let a = h2h.query_profile(s, d);
                let b = basic.query_profile_basic(s, d);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        for k in 0..6 {
                            let t = k as f64 * DAY / 6.0;
                            assert!((a.eval(t) - b.eval(t)).abs() < 1e-5, "s={s} d={d} t={t}");
                        }
                    }
                    (None, None) => {}
                    other => panic!("s={s} d={d}: {:?}", other.0.map(|_| ())),
                }
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_thread_shim_matches_config_build() {
        let g = seeded_graph(4, 20, 12, 3);
        let via_shim = TdH2h::build_with_threads(g.clone(), 2);
        let via_cfg = TdH2h::build(g, H2hConfig { threads: 2 });
        assert_eq!(via_shim.num_labels(), via_cfg.num_labels());
        assert_eq!(
            via_shim.query_cost(0, 19, 100.0),
            via_cfg.query_cost(0, 19, 100.0)
        );
    }

    #[test]
    fn h2h_memory_exceeds_basic_index() {
        let g = seeded_graph(11, 40, 25, 3);
        let h2h = TdH2h::build(g.clone(), H2hConfig { threads: 2 });
        let basic = td_core::TdTreeIndex::build(g, td_core::IndexOptions::default());
        assert!(h2h.memory_bytes() > basic.memory_bytes());
        assert!(h2h.num_labels() > 0);
        assert!(h2h.total_points() > 0);
    }
}
