//! Shortcut machinery: ancestor vectors (Fact 1), candidate weighing
//! (Def. 7) and the two-pass, parallel materialisation.
//!
//! A *shortcut pair instance* `⟨i, j⟩` (Def. 6) stores the exact shortest
//! travel-cost functions `s⟨i,j⟩(t)` (up: `i → j`) and `s⟨j,i⟩(t)` (down)
//! between a tree node and one of its ancestors. Fact 1 computes them
//! top-down:
//!
//! ```text
//! s⟨i,j⟩ = min_{v ∈ X(i)\{i}} Compound(X(i).Ws_v, s⟨v,j⟩)
//! s⟨j,i⟩ = min_{v ∈ X(i)\{i}} Compound(s⟨j,v⟩, X(i).Wd_v)
//! ```
//!
//! The engine runs a DFS from the root keeping, per node on the current root
//! path, the full *ancestor vector* (both directions to every ancestor).
//! Because `X(i)\{i} ⊆ Anc(X(i))` (Property 2), every term above is available
//! on the DFS stack. Peak memory is `O(h² · c)` per path — this is how the
//! index weighs **all** `O(n·h)` candidates (Def. 8 needs their exact
//! interpolation-point weights) without materialising TD-H2H's `O(n·h·c)`
//! label space. Selection then runs, and a second pass stores only the
//! chosen pairs. TD-H2H is the same engine with "store everything".

use crate::select::Candidate;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use td_graph::VertexId;
use td_plf::{ops::min_into, Plf};
use td_treedec::TreeDecomposition;

/// Both direction functions from one node to all its ancestors, indexed by
/// ancestor depth (position in the root-first ancestor list).
#[derive(Clone, Debug, Default)]
pub struct NodeVectors {
    /// `up[k]`: node → ancestor at depth `k` (`None` = unreachable).
    pub up: Vec<Option<Plf>>,
    /// `down[k]`: ancestor at depth `k` → node.
    pub down: Vec<Option<Plf>>,
}

/// Computes `v`'s ancestor vectors from the DFS stack (Fact 1).
///
/// `stack[k]` must hold the vectors of `v`'s ancestor at depth `k`;
/// `stack.len() == depth(v)`.
pub fn compute_vectors(td: &TreeDecomposition, v: VertexId, stack: &[NodeVectors]) -> NodeVectors {
    let node = td.node(v);
    let d = node.depth as usize;
    debug_assert_eq!(stack.len(), d);
    let mut up: Vec<Option<Plf>> = vec![None; d];
    let mut down: Vec<Option<Plf>> = vec![None; d];
    // Pre-fetch bag depths once.
    let bag_depths: Vec<usize> = node
        .bag
        .iter()
        .map(|&u| td.node(u).depth as usize)
        .collect();
    for k in 0..d {
        let mut best_up: Option<Plf> = None;
        let mut best_down: Option<Plf> = None;
        for (bi, &u) in node.bag.iter().enumerate() {
            let du = bag_depths[bi];
            if let Some(ws) = &node.ws[bi] {
                // v → anc[k] through bag member u.
                let term = if du == k {
                    Some(ws.clone())
                } else if du < k {
                    // u is above the target: u → anc[k] is the target's down
                    // entry at u's depth.
                    stack[k].down[du].as_ref().map(|f| ws.compound(f, u))
                } else {
                    // u is below the target: u → anc[k] is u's up entry.
                    stack[du].up[k].as_ref().map(|f| ws.compound(f, u))
                };
                if let Some(t) = term {
                    min_into(&mut best_up, t);
                }
            }
            if let Some(wd) = &node.wd[bi] {
                // anc[k] → v through bag member u.
                let term = if du == k {
                    Some(wd.clone())
                } else if du < k {
                    stack[k].up[du].as_ref().map(|f| f.compound(wd, u))
                } else {
                    stack[du].down[k].as_ref().map(|f| f.compound(wd, u))
                };
                if let Some(t) = term {
                    min_into(&mut best_down, t);
                }
            }
        }
        up[k] = best_up;
        down[k] = best_down;
    }
    NodeVectors { up, down }
}

/// One stored pair: `(ancestor, up function, down function)`.
pub(crate) type StoredPair = (VertexId, Option<Plf>, Option<Plf>);

/// The stored, selected shortcuts.
#[derive(Clone, Debug, Default)]
pub struct ShortcutStore {
    /// Per vertex: `(ancestor, up, down)` entries sorted by ancestor id.
    pub(crate) per_node: Vec<Vec<StoredPair>>,
}

impl ShortcutStore {
    /// An empty store over `n` vertices (TD-basic).
    pub fn empty(n: usize) -> Self {
        ShortcutStore {
            per_node: vec![Vec::new(); n],
        }
    }

    fn insert(&mut self, v: VertexId, ancestor: VertexId, up: Option<Plf>, down: Option<Plf>) {
        let row = &mut self.per_node[v as usize];
        let pos = row.partition_point(|e| e.0 < ancestor);
        row.insert(pos, (ancestor, up, down));
    }

    /// Inserts one pair (used by the update module's rebuild merge).
    pub(crate) fn insert_pair(
        &mut self,
        v: VertexId,
        ancestor: VertexId,
        up: Option<Plf>,
        down: Option<Plf>,
    ) {
        self.insert(v, ancestor, up, down);
    }

    /// The pair instance `⟨v, ancestor⟩`, if selected.
    pub fn get(&self, v: VertexId, ancestor: VertexId) -> Option<(&Option<Plf>, &Option<Plf>)> {
        let row = &self.per_node[v as usize];
        let pos = row.partition_point(|e| e.0 < ancestor);
        row.get(pos)
            .filter(|e| e.0 == ancestor)
            .map(|e| (&e.1, &e.2))
    }

    /// True iff the pair `⟨v, ancestor⟩` was selected.
    pub fn has(&self, v: VertexId, ancestor: VertexId) -> bool {
        self.get(v, ancestor).is_some()
    }

    /// Number of selected pair instances.
    pub fn num_pairs(&self) -> usize {
        self.per_node.iter().map(|r| r.len()).sum()
    }

    /// Total stored interpolation points (the paper's weight measure).
    pub fn total_points(&self) -> usize {
        self.per_node
            .iter()
            .flatten()
            .map(|(_, u, d)| u.as_ref().map_or(0, |f| f.len()) + d.as_ref().map_or(0, |f| f.len()))
            .sum()
    }

    /// Heap bytes of all stored functions.
    pub fn bytes(&self) -> usize {
        self.per_node
            .iter()
            .flatten()
            .map(|(_, u, d)| {
                u.as_ref().map_or(0, |f| f.heap_bytes())
                    + d.as_ref().map_or(0, |f| f.heap_bytes())
                    + std::mem::size_of::<(VertexId, Option<Plf>, Option<Plf>)>()
            })
            .sum()
    }

    /// Drops all entries of the given vertices (used by updates before a
    /// rebuild of their subtrees).
    pub fn clear_vertices(&mut self, vs: &[VertexId]) {
        for &v in vs {
            self.per_node[v as usize].clear();
        }
    }

    /// Iterates over all `(vertex, ancestor)` selected pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.per_node
            .iter()
            .enumerate()
            .flat_map(|(v, row)| row.iter().map(move |e| (v as VertexId, e.0)))
    }
}

/// What a DFS pass should do at each node.
enum PassMode<'a> {
    /// Record `(utility, weight)` candidates for every ancestor pair.
    Weigh,
    /// Store vectors for the selected ancestors of each node.
    Store(&'a [Vec<VertexId>]),
    /// Store vectors for *all* ancestors (TD-H2H).
    StoreAll,
}

/// Output of one DFS pass.
#[derive(Default)]
struct PassOutput {
    candidates: Vec<Candidate>,
    stored: Vec<(VertexId, VertexId, Option<Plf>, Option<Plf>)>,
}

/// Weighs every candidate pair (first pass): returns `Candidate`s with exact
/// utilities (Def. 7) and interpolation-point weights.
pub fn weigh_candidates(td: &TreeDecomposition, width: usize, threads: usize) -> Vec<Candidate> {
    run_pass(td, width, threads, &PassMode::Weigh, None).candidates
}

/// Builds the selected shortcut pairs (second pass). `selected[v]` lists the
/// chosen ancestors of `v` (any order).
pub fn build_selected(
    td: &TreeDecomposition,
    selected: &[Vec<VertexId>],
    threads: usize,
    only_subtrees_of: Option<&[VertexId]>,
) -> ShortcutStore {
    let out = run_pass(td, 0, threads, &PassMode::Store(selected), only_subtrees_of);
    let mut store = ShortcutStore::empty(td.len());
    for (v, a, up, down) in out.stored {
        store.insert(v, a, up, down);
    }
    store
}

/// Builds *all* pairs (TD-H2H's full label, single pass).
pub fn build_all(td: &TreeDecomposition, threads: usize) -> ShortcutStore {
    let out = run_pass(td, 0, threads, &PassMode::StoreAll, None);
    let mut store = ShortcutStore::empty(td.len());
    for (v, a, up, down) in out.stored {
        store.insert(v, a, up, down);
    }
    store
}

/// DFS driver: sequential down to a branching frontier, then parallel over
/// subtrees with cloned prefix stacks.
///
/// `only_subtrees_of`: when set, vectors are still computed wherever needed,
/// but output is only produced for vertices inside the subtrees rooted at the
/// given vertices, and branches containing none of them are skipped entirely
/// (incremental updates).
fn run_pass(
    td: &TreeDecomposition,
    width: usize,
    threads: usize,
    mode: &PassMode<'_>,
    only_subtrees_of: Option<&[VertexId]>,
) -> PassOutput {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    };

    // Relevance marking for incremental rebuilds.
    // affected[v]: v's output must be produced (v is in a target subtree).
    // on_path[v]: v's subtree contains an affected vertex (must be visited).
    let marks = only_subtrees_of.map(|roots| {
        let n = td.len();
        let mut affected = vec![false; n];
        for &r in roots {
            affected[r as usize] = true;
        }
        // Propagate down: preorder.
        let mut order: Vec<VertexId> = vec![td.root];
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            i += 1;
            for &c in &td.node(v).children {
                if affected[v as usize] {
                    affected[c as usize] = true;
                }
                order.push(c);
            }
        }
        let mut on_path = affected.clone();
        for &v in order.iter().rev() {
            if on_path[v as usize] {
                if let Some(p) = td.node(v).parent {
                    on_path[p as usize] = true;
                }
            }
        }
        (affected, on_path)
    });
    let should_visit = |v: VertexId| marks.as_ref().is_none_or(|(_, p)| p[v as usize]);
    let should_emit = |v: VertexId| marks.as_ref().is_none_or(|(a, _)| a[v as usize]);

    // Sequential descent collecting parallel jobs: split once the frontier is
    // wide enough.
    let target_jobs = threads * 4;
    let mut output = PassOutput::default();
    let mut jobs: Vec<(VertexId, Vec<NodeVectors>)> = Vec::new();
    // (vertex, prefix depth) queue; prefix stacks owned per entry.
    let mut queue: Vec<(VertexId, Vec<NodeVectors>)> = vec![(td.root, Vec::new())];
    while let Some((v, stack)) = queue.pop() {
        if !should_visit(v) {
            continue;
        }
        if jobs.len() + queue.len() >= target_jobs || td.node(v).children.is_empty() {
            jobs.push((v, stack));
            continue;
        }
        let vecs = compute_vectors(td, v, &stack);
        emit(td, v, width, &vecs, mode, should_emit(v), &mut output);
        let mut stack = stack;
        stack.push(vecs);
        for &c in &td.node(v).children {
            queue.push((c, stack.clone()));
        }
    }

    if jobs.is_empty() {
        return output;
    }

    // Parallel phase.
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<PassOutput>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| {
                let mut local = PassOutput::default();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (root, prefix) = &jobs[i];
                    subtree_dfs(
                        td,
                        *root,
                        prefix.clone(),
                        width,
                        mode,
                        &should_visit,
                        &should_emit,
                        &mut local,
                    );
                }
                // Poison only means another worker panicked after pushing
                // a complete `local`; the Vec itself is still well-formed.
                collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(local);
            });
        }
    });
    for local in collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        output.candidates.extend(local.candidates);
        output.stored.extend(local.stored);
    }
    output
}

/// Iterative DFS over one subtree with an explicit vector stack.
#[allow(clippy::too_many_arguments)]
fn subtree_dfs(
    td: &TreeDecomposition,
    root: VertexId,
    mut stack: Vec<NodeVectors>,
    width: usize,
    mode: &PassMode<'_>,
    should_visit: &dyn Fn(VertexId) -> bool,
    should_emit: &dyn Fn(VertexId) -> bool,
    out: &mut PassOutput,
) {
    let base_depth = stack.len();
    // Frame: (vertex, next child index).
    let mut frames: Vec<(VertexId, usize)> = Vec::new();
    let vecs = compute_vectors(td, root, &stack);
    emit(td, root, width, &vecs, mode, should_emit(root), out);
    stack.push(vecs);
    frames.push((root, 0));
    while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
        let children = &td.node(v).children;
        if *ci < children.len() {
            let c = children[*ci];
            *ci += 1;
            if !should_visit(c) {
                continue;
            }
            let vecs = compute_vectors(td, c, &stack);
            emit(td, c, width, &vecs, mode, should_emit(c), out);
            stack.push(vecs);
            frames.push((c, 0));
        } else {
            frames.pop();
            stack.pop();
        }
    }
    debug_assert_eq!(stack.len(), base_depth);
}

/// Produces a node's output for the current pass mode.
fn emit(
    td: &TreeDecomposition,
    v: VertexId,
    width: usize,
    vecs: &NodeVectors,
    mode: &PassMode<'_>,
    emit_output: bool,
    out: &mut PassOutput,
) {
    if !emit_output {
        return;
    }
    let d = td.node(v).depth as usize;
    match mode {
        PassMode::Weigh => {
            let anc = td.ancestors_root_first(v);
            let n = td.len() as f64;
            for (k, &j) in anc.iter().enumerate().take(d) {
                let weight = vecs.up[k].as_ref().map_or(0, |f| f.len())
                    + vecs.down[k].as_ref().map_or(0, |f| f.len());
                if weight == 0 {
                    continue; // both directions unreachable: nothing to store
                }
                // p⟨i,j⟩ = |{k : LCA(X(i),X(k)) = X(j)}| / |V|
                //        = (subtree(j) − subtree(child of j towards i)) / |V|.
                let towards = if k + 1 < d { anc[k + 1] } else { v };
                let covered = td.node(j).subtree_size - td.node(towards).subtree_size;
                let p = covered as f64 / n;
                let utility = (d - k) as f64 * width as f64 * p;
                out.candidates.push(Candidate {
                    node: v,
                    ancestor: j,
                    utility,
                    weight: weight as u32,
                });
            }
        }
        PassMode::Store(selected) => {
            if selected[v as usize].is_empty() {
                return;
            }
            let anc = td.ancestors_root_first(v);
            for &a in &selected[v as usize] {
                let k = td.node(a).depth as usize;
                debug_assert!(
                    k < d && anc[k] == a,
                    "selected ancestor must be on the root path"
                );
                out.stored
                    .push((v, a, vecs.up[k].clone(), vecs.down[k].clone()));
            }
        }
        PassMode::StoreAll => {
            let anc = td.ancestors_root_first(v);
            for (k, &a) in anc.iter().enumerate().take(d) {
                if vecs.up[k].is_some() || vecs.down[k].is_some() {
                    out.stored
                        .push((v, a, vecs.up[k].clone(), vecs.down[k].clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_dijkstra::profile_search;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    /// The ancestor vectors must equal the true shortest travel-cost
    /// functions — the crux of Fact 1.
    #[test]
    fn vectors_equal_true_shortest_functions() {
        for seed in 0..4u64 {
            let n = 25;
            let g = seeded_graph(seed, n, 15, 3);
            let td = TreeDecomposition::build(&g);
            let store = build_all(&td, 1);
            for v in 0..n as u32 {
                let prof = profile_search(&g, v);
                for a in td.ancestors_root_first(v) {
                    let up = store.get(v, a).and_then(|(u, _)| u.as_ref());
                    match (&prof.dist[a as usize], up) {
                        (Some(want), Some(got)) => {
                            for k in 0..8 {
                                let t = k as f64 * DAY / 8.0;
                                assert!(
                                    (want.eval(t) - got.eval(t)).abs() < 1e-5,
                                    "seed={seed} v={v} a={a} t={t}: {} vs {}",
                                    want.eval(t),
                                    got.eval(t)
                                );
                            }
                        }
                        (None, None) => {}
                        other => panic!("seed={seed} v={v} a={a}: {:?}", other.1.map(|_| ())),
                    }
                }
            }
        }
    }

    #[test]
    fn down_vectors_equal_reverse_shortest_functions() {
        let n = 20;
        let g = seeded_graph(7, n, 12, 3);
        let td = TreeDecomposition::build(&g);
        let store = build_all(&td, 1);
        for a in 0..n as u32 {
            let prof = profile_search(&g, a);
            for v in 0..n as u32 {
                if !td.is_ancestor_of(a, v) || a == v {
                    continue;
                }
                let down = store.get(v, a).and_then(|(_, d)| d.as_ref());
                match (&prof.dist[v as usize], down) {
                    (Some(want), Some(got)) => {
                        for k in 0..6 {
                            let t = k as f64 * DAY / 6.0;
                            assert!(
                                (want.eval(t) - got.eval(t)).abs() < 1e-5,
                                "a={a} v={v} t={t}"
                            );
                        }
                    }
                    (None, None) => {}
                    other => panic!("a={a} v={v}: {:?}", other.1.map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_passes_agree() {
        let g = seeded_graph(3, 60, 40, 3);
        let td = TreeDecomposition::build(&g);
        let seq = build_all(&td, 1);
        let par = build_all(&td, 8);
        assert_eq!(seq.num_pairs(), par.num_pairs());
        for (v, a) in seq.pairs() {
            let (su, sd) = seq.get(v, a).unwrap();
            let (pu, pd) = par.get(v, a).unwrap();
            match (su, pu) {
                (Some(x), Some(y)) => assert!(x.approx_eq(y, 1e-9)),
                (None, None) => {}
                _ => panic!("up mismatch at ({v},{a})"),
            }
            match (sd, pd) {
                (Some(x), Some(y)) => assert!(x.approx_eq(y, 1e-9)),
                (None, None) => {}
                _ => panic!("down mismatch at ({v},{a})"),
            }
        }
    }

    #[test]
    fn weigh_pass_reports_exact_weights() {
        let g = seeded_graph(5, 30, 20, 3);
        let td = TreeDecomposition::build(&g);
        let width = td.stats().width;
        let cands = weigh_candidates(&td, width, 2);
        let store = build_all(&td, 2);
        assert!(!cands.is_empty());
        for c in &cands {
            let (up, down) = store
                .get(c.node, c.ancestor)
                .expect("candidate was weighed");
            let w = up.as_ref().map_or(0, |f| f.len()) + down.as_ref().map_or(0, |f| f.len());
            assert_eq!(c.weight as usize, w, "pair ({}, {})", c.node, c.ancestor);
            assert!(c.utility >= 0.0);
        }
    }

    #[test]
    fn utility_probability_sums_to_lca_partition() {
        // For fixed i, Σ_j over ancestors of p⟨i,j⟩·n + subtree(i) + (vertices
        // outside root subtree…) — sanity: each vertex k with LCA(i,k)=j is
        // counted once, so Σ_j covered(j) = n − subtree(lowest …). Simpler
        // check: covered counts are positive and bounded by n.
        let g = seeded_graph(6, 40, 25, 3);
        let td = TreeDecomposition::build(&g);
        let n = td.len() as f64;
        let width = td.stats().width;
        let cands = weigh_candidates(&td, width, 1);
        for c in &cands {
            let p = c.utility
                / ((td.node(c.node).depth - td.node(c.ancestor).depth) as f64 * width as f64);
            assert!(p > 0.0 && p <= 1.0 + 1e-9, "p={p} out of range");
            let _ = n;
        }
    }

    #[test]
    fn build_selected_stores_exactly_the_selection() {
        let g = seeded_graph(8, 30, 20, 3);
        let td = TreeDecomposition::build(&g);
        let mut selected: Vec<Vec<VertexId>> = vec![Vec::new(); td.len()];
        // Select: every node's root and parent (when distinct).
        for v in 0..td.len() as u32 {
            let anc = td.ancestors_root_first(v);
            if let Some(&r) = anc.first() {
                selected[v as usize].push(r);
            }
            if anc.len() >= 2 {
                let p = *anc.last().unwrap();
                selected[v as usize].push(p);
            }
        }
        let store = build_selected(&td, &selected, 2, None);
        let want: usize = selected.iter().map(|s| s.len()).sum();
        assert_eq!(store.num_pairs(), want);
        let full = build_all(&td, 2);
        for (v, a) in store.pairs() {
            let (u1, d1) = store.get(v, a).unwrap();
            let (u2, d2) = full.get(v, a).unwrap();
            match (u1, u2) {
                (Some(x), Some(y)) => assert!(x.approx_eq(y, 1e-9)),
                (None, None) => {}
                _ => panic!("selected build differs from full build"),
            }
            match (d1, d2) {
                (Some(x), Some(y)) => assert!(x.approx_eq(y, 1e-9)),
                (None, None) => {}
                _ => panic!("selected build differs from full build"),
            }
        }
    }

    #[test]
    fn store_lookup_and_accounting() {
        let g = seeded_graph(9, 20, 10, 3);
        let td = TreeDecomposition::build(&g);
        let store = build_all(&td, 1);
        assert!(store.total_points() > 0);
        assert!(store.bytes() > 0);
        assert!(!store.has(0, 0));
        let mut store2 = store.clone();
        let all: Vec<VertexId> = (0..20).collect();
        store2.clear_vertices(&all);
        assert_eq!(store2.num_pairs(), 0);
    }
}
