//! Snapshot persistence ([`td_store::Persist`]) for the TD-tree index and
//! its owned components: [`ShortcutStore`] and [`FrozenTd`].
//!
//! A [`TdTreeIndex`] snapshot is the complete build product — graph, tree
//! decomposition, selected shortcuts, selection bookkeeping and the frozen
//! label mirror — so loading reconstructs a query-identical index without
//! re-running elimination, candidate weighing, selection or the shortcut
//! DFS. The [`FrozenTd`] mirror is persisted **verbatim**, including its
//! append-only arena layout and stale-point counter after `update_edges`
//! refreshes, so a live-updated index round-trips its exact in-memory state
//! (and keeps accepting further updates via the persisted support lists).

use crate::frozen::FrozenTd;
use crate::index::{BuildStats, IndexOptions, SelectionStrategy, TdTreeIndex};
use crate::shortcut::ShortcutStore;
use std::io::{Read, Write};
use td_graph::{TdGraph, VertexId};
use td_plf::persist::{read_plf_list, write_plf_list};
use td_plf::{PlfArena, NO_PLF};
use td_store::section::{
    check_offsets, read_f64s, read_u32s, read_u64, read_u64s, tag4, write_f64s, write_u32s,
    write_u64, write_u64s,
};
use td_store::{Persist, StoreError};
use td_treedec::TreeDecomposition;

const TAG_S_FIRST: u32 = tag4(*b"Sfst");
const TAG_S_ANC: u32 = tag4(*b"Sanc");

const TAG_Z_FIRST: u32 = tag4(*b"Zfst");
const TAG_Z_BAG_DEPTH: u32 = tag4(*b"Zbdp");
const TAG_Z_WS: u32 = tag4(*b"Zws ");
const TAG_Z_WD: u32 = tag4(*b"Zwd ");
const TAG_Z_STALE: u32 = tag4(*b"Zstl");

const TAG_I_OPTIONS: u32 = tag4(*b"Iopt");
const TAG_I_STATS_F: u32 = tag4(*b"Ibsf");
const TAG_I_STATS_U: u32 = tag4(*b"Ibsu");
const TAG_I_SEL_FIRST: u32 = tag4(*b"Isel");
const TAG_I_SEL: u32 = tag4(*b"Isev");

impl Persist for ShortcutStore {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let mut first = Vec::with_capacity(self.per_node.len() + 1);
        let mut anc = Vec::new();
        first.push(0u32);
        for row in &self.per_node {
            anc.extend(row.iter().map(|e| e.0));
            first.push(anc.len() as u32);
        }
        write_u32s(w, TAG_S_FIRST, &first)?;
        write_u32s(w, TAG_S_ANC, &anc)?;
        write_plf_list(
            w,
            self.per_node
                .iter()
                .flat_map(|row| row.iter().map(|e| e.1.as_ref())),
        )?;
        write_plf_list(
            w,
            self.per_node
                .iter()
                .flat_map(|row| row.iter().map(|e| e.2.as_ref())),
        )
    }

    fn read_from<R: Read>(r: &mut R) -> Result<ShortcutStore, StoreError> {
        let first = read_u32s(r, TAG_S_FIRST)?;
        let anc = read_u32s(r, TAG_S_ANC)?;
        let ups = read_plf_list(r)?;
        let downs = read_plf_list(r)?;
        check_offsets(&first, anc.len(), "shortcut rows")?;
        let n = first.len() - 1;
        if ups.len() != anc.len() || downs.len() != anc.len() {
            return Err(StoreError::invalid(
                "shortcut function lists disagree with pair count",
            ));
        }
        if anc.iter().any(|&a| a as usize >= n) {
            return Err(StoreError::invalid("shortcut ancestor out of range"));
        }
        let mut ups = ups.into_iter();
        let mut downs = downs.into_iter();
        let mut per_node = Vec::with_capacity(n);
        for v in 0..n {
            let row_anc = &anc[first[v] as usize..first[v + 1] as usize];
            // Rows must stay sorted by ancestor (lookup is a binary search).
            if row_anc.windows(2).any(|w| w[0] >= w[1]) {
                return Err(StoreError::invalid("shortcut row not sorted by ancestor"));
            }
            per_node.push(
                row_anc
                    .iter()
                    .map(|&a| {
                        (
                            a,
                            ups.next().expect("length checked"),
                            downs.next().expect("length checked"),
                        )
                    })
                    .collect(),
            );
        }
        Ok(ShortcutStore { per_node })
    }
}

impl Persist for FrozenTd {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        write_u32s(w, TAG_Z_FIRST, &self.first)?;
        write_u32s(w, TAG_Z_BAG_DEPTH, &self.bag_depth)?;
        write_u32s(w, TAG_Z_WS, &self.ws)?;
        write_u32s(w, TAG_Z_WD, &self.wd)?;
        self.arena.write_into(w)?;
        write_u64(w, TAG_Z_STALE, self.stale_points as u64)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<FrozenTd, StoreError> {
        let first = read_u32s(r, TAG_Z_FIRST)?;
        let bag_depth = read_u32s(r, TAG_Z_BAG_DEPTH)?;
        let ws = read_u32s(r, TAG_Z_WS)?;
        let wd = read_u32s(r, TAG_Z_WD)?;
        let arena = PlfArena::read_from(r)?;
        let stale = read_u64(r, TAG_Z_STALE)?;
        check_offsets(&first, bag_depth.len(), "frozen labels")?;
        if ws.len() != bag_depth.len() || wd.len() != bag_depth.len() {
            return Err(StoreError::invalid("frozen label arrays disagree"));
        }
        let funcs = arena.len() as u32;
        if ws
            .iter()
            .chain(wd.iter())
            .any(|&id| id != NO_PLF && id >= funcs)
        {
            return Err(StoreError::invalid("frozen label id out of arena range"));
        }
        if stale > arena.total_points() as u64 {
            return Err(StoreError::invalid("stale point counter out of range"));
        }
        Ok(FrozenTd {
            first,
            bag_depth,
            ws,
            wd,
            arena,
            stale_points: stale as usize,
        })
    }
}

fn strategy_code(s: SelectionStrategy) -> (u64, u64, u64) {
    match s {
        SelectionStrategy::Basic => (0, 0, 0),
        SelectionStrategy::Greedy { budget } => (1, budget, 0),
        SelectionStrategy::Dp {
            budget,
            weight_scale,
        } => (2, budget, weight_scale as u64),
        SelectionStrategy::All => (3, 0, 0),
    }
}

fn strategy_from_code(code: u64, budget: u64, scale: u64) -> Result<SelectionStrategy, StoreError> {
    Ok(match code {
        0 => SelectionStrategy::Basic,
        1 => SelectionStrategy::Greedy { budget },
        2 => SelectionStrategy::Dp {
            budget,
            weight_scale: u32::try_from(scale)
                .map_err(|_| StoreError::invalid("weight scale out of range"))?,
        },
        3 => SelectionStrategy::All,
        other => {
            return Err(StoreError::invalid(format!(
                "unknown selection strategy code {other}"
            )))
        }
    })
}

impl Persist for TdTreeIndex {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let (code, budget, scale) = strategy_code(self.options.strategy);
        write_u64s(
            w,
            TAG_I_OPTIONS,
            &[
                code,
                budget,
                scale,
                self.options.threads as u64,
                u64::from(self.options.track_supports),
            ],
        )?;
        let st = &self.build_stats;
        write_f64s(
            w,
            TAG_I_STATS_F,
            &[
                st.decompose_secs,
                st.weigh_secs,
                st.select_secs,
                st.build_secs,
                st.selected_utility,
            ],
        )?;
        write_u64s(
            w,
            TAG_I_STATS_U,
            &[
                st.candidates as u64,
                st.selected_pairs as u64,
                st.selected_weight,
            ],
        )?;
        self.graph.write_into(w)?;
        self.td.write_into(w)?;
        self.frozen.write_into(w)?;
        self.store.write_into(w)?;
        let mut sel_first = Vec::with_capacity(self.selected_per_node.len() + 1);
        let mut sel = Vec::new();
        sel_first.push(0u32);
        for row in &self.selected_per_node {
            sel.extend_from_slice(row);
            sel_first.push(sel.len() as u32);
        }
        write_u32s(w, TAG_I_SEL_FIRST, &sel_first)?;
        write_u32s(w, TAG_I_SEL, &sel)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<TdTreeIndex, StoreError> {
        let opts = read_u64s(r, TAG_I_OPTIONS)?;
        if opts.len() != 5 {
            return Err(StoreError::invalid("options section must hold 5 values"));
        }
        let strategy = strategy_from_code(opts[0], opts[1], opts[2])?;
        let options = IndexOptions {
            strategy,
            threads: opts[3] as usize,
            track_supports: opts[4] != 0,
        };
        let sf = read_f64s(r, TAG_I_STATS_F)?;
        let su = read_u64s(r, TAG_I_STATS_U)?;
        if sf.len() != 5 || su.len() != 3 {
            return Err(StoreError::invalid("build stats sections malformed"));
        }
        let build_stats = BuildStats {
            decompose_secs: sf[0],
            weigh_secs: sf[1],
            select_secs: sf[2],
            build_secs: sf[3],
            selected_utility: sf[4],
            candidates: su[0] as usize,
            selected_pairs: su[1] as usize,
            selected_weight: su[2],
        };

        let graph = TdGraph::read_from(r)?;
        let td = TreeDecomposition::read_from(r)?;
        let frozen = FrozenTd::read_from(r)?;
        let store = ShortcutStore::read_from(r)?;
        let sel_first = read_u32s(r, TAG_I_SEL_FIRST)?;
        let sel = read_u32s(r, TAG_I_SEL)?;

        let n = td.len();
        if graph.num_vertices() != n {
            return Err(StoreError::invalid(
                "graph and tree disagree on vertex count",
            ));
        }
        if options.track_supports != td.supports.is_some() {
            return Err(StoreError::invalid(
                "support tracking flag disagrees with stored supports",
            ));
        }
        if store.per_node.len() != n {
            return Err(StoreError::invalid("shortcut store row count mismatch"));
        }
        // Every stored ancestor must actually be an ancestor slot reachable
        // by the query engine; cheap sanity: id < n (validated) suffices —
        // wrong pairs can only make queries miss shortcuts, which engine
        // code treats as "no shortcut". Still, the frozen mirror must match
        // the tree shape exactly (the sweeps index by it).
        if frozen.first.len() != n + 1 {
            return Err(StoreError::invalid("frozen mirror row count mismatch"));
        }
        for v in 0..n as u32 {
            let node = td.node(v);
            let range = frozen.range(v);
            if range.len() != node.bag.len() {
                return Err(StoreError::invalid("frozen mirror bag width mismatch"));
            }
            for (bi, idx) in range.enumerate() {
                if frozen.bag_depth(idx) != td.node(node.bag[bi]).depth as usize {
                    return Err(StoreError::invalid("frozen bag depth mismatch"));
                }
            }
        }
        if sel_first.len() != n + 1 {
            return Err(StoreError::invalid("selection offsets inconsistent"));
        }
        check_offsets(&sel_first, sel.len(), "selected ancestors")?;
        if sel.iter().any(|&a| a as usize >= n) {
            return Err(StoreError::invalid("selected ancestor out of range"));
        }
        let selected_per_node: Vec<Vec<VertexId>> = (0..n)
            .map(|v| sel[sel_first[v] as usize..sel_first[v + 1] as usize].to_vec())
            .collect();

        Ok(TdTreeIndex {
            graph,
            td,
            frozen,
            store,
            selected_per_node,
            options,
            build_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::{random_profile, seeded_graph};
    use td_plf::DAY;

    fn roundtrip(index: &TdTreeIndex) -> TdTreeIndex {
        let mut buf = Vec::new();
        index.write_into(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = TdTreeIndex::read_from(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after index read");
        back
    }

    fn assert_bit_identical(a: &TdTreeIndex, b: &TdTreeIndex, seed: u64) {
        let n = a.graph().num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..60 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let x = a.query_cost(s, d, t).map(f64::to_bits);
            let y = b.query_cost(s, d, t).map(f64::to_bits);
            assert_eq!(x, y, "cost s={s} d={d} t={t}");
            assert_eq!(
                a.query_profile(s, d),
                b.query_profile(s, d),
                "profile s={s} d={d}"
            );
        }
    }

    #[test]
    fn every_strategy_round_trips_bit_identically() {
        let g = seeded_graph(11, 30, 20, 3);
        for strategy in [
            SelectionStrategy::Basic,
            SelectionStrategy::Greedy { budget: 800 },
            SelectionStrategy::Dp {
                budget: 800,
                weight_scale: 1,
            },
            SelectionStrategy::All,
        ] {
            let index = TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy,
                    threads: 2,
                    track_supports: false,
                },
            );
            let back = roundtrip(&index);
            assert_eq!(back.options.strategy, index.options.strategy);
            // Byte accounting is capacity-based, so only the logical sizes
            // are expected to match exactly.
            assert_eq!(
                back.tree_stats().stored_points,
                index.tree_stats().stored_points
            );
            assert_eq!(
                back.shortcuts().total_points(),
                index.shortcuts().total_points()
            );
            assert!(back.memory_bytes() > 0);
            assert_eq!(back.shortcuts().num_pairs(), index.shortcuts().num_pairs());
            assert_bit_identical(&index, &back, 0xfeed);
        }
    }

    #[test]
    fn updated_index_round_trips_with_stale_state_and_stays_updatable() {
        let g = seeded_graph(4, 25, 15, 3);
        let mut index = TdTreeIndex::build(
            g,
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 1_500 },
                threads: 1,
                track_supports: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(77);
        let m = index.graph().num_edges();
        let changes: Vec<_> = (0..5)
            .map(|_| {
                let e = rng.gen_range(0..m) as u32;
                let edge = index.graph().edge(e);
                (edge.from, edge.to, random_profile(&mut rng, 4, 5.0, 500.0))
            })
            .collect();
        index.update_edges(&changes);

        let mut back = roundtrip(&index);
        assert_bit_identical(&index, &back, 0xabcd);

        // The loaded index accepts further updates (supports round-trip),
        // and both copies evolve identically.
        let more: Vec<_> = (0..3)
            .map(|_| {
                let e = rng.gen_range(0..m) as u32;
                let edge = index.graph().edge(e);
                (edge.from, edge.to, random_profile(&mut rng, 3, 10.0, 400.0))
            })
            .collect();
        index.update_edges(&more);
        back.update_edges(&more);
        assert_bit_identical(&index, &back, 0x1234);
    }

    #[test]
    fn truncated_index_stream_errors_out() {
        let g = seeded_graph(2, 15, 10, 3);
        let index = TdTreeIndex::build(g, IndexOptions::default());
        let mut buf = Vec::new();
        index.write_into(&mut buf).unwrap();
        for cut in (0..buf.len()).step_by(211) {
            assert!(TdTreeIndex::read_from(&mut &buf[..cut]).is_err());
        }
    }
}
