//! Incremental edge-weight updates (§5.2, Fig. 10).
//!
//! The paper updates an index after live-traffic changes by re-deriving the
//! affected weight lists and re-building the shortcuts of the affected
//! region "based on the top-down manner in Fact 1". This module makes that
//! precise and exact:
//!
//! **Phase 1 — reduction replay.** Every recorded pair value obeys
//!
//! ```text
//! value(i,j) = min( base edge i→j,
//!                   min_{m ∈ supports(i,j)} Compound(X(m).Wd_i, X(m).Ws_j) )
//! ```
//!
//! where `supports(i,j)` are the eliminated bridges recorded during
//! construction (`td-treedec::SupportMap`) and `X(m)`'s lists are *inputs*
//! recorded exactly at `m`'s elimination. Processing dirty eliminations in
//! increasing elimination order therefore replays Algo. 2 restricted to the
//! affected cone: when a recomputed pair differs from its stored value, the
//! pair's recording node becomes dirty in turn. Both weight increases and
//! decreases are exact (no stale-minimum problem), because values are
//! recomputed from their full support lists rather than min-merged.
//!
//! **Phase 2 — shortcut rebuild.** Every node whose `Ws`/`Wd` changed
//! invalidates its own and its descendants' ancestor vectors; the shortcut
//! DFS re-runs restricted to those subtrees, re-storing only selected pairs.

use crate::index::TdTreeIndex;
use crate::shortcut::build_selected;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use td_graph::VertexId;
use td_plf::{ops::min_into, Plf};
use td_treedec::fxhash::FxHashSet;

/// Counters describing one `update_edges` call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Edges whose weight actually changed.
    pub changed_edges: usize,
    /// Eliminations replayed in phase 1.
    pub replayed_eliminations: usize,
    /// Tree nodes whose stored `Ws`/`Wd` lists changed.
    pub changed_nodes: usize,
    /// Nodes whose shortcut vectors were rebuilt in phase 2.
    pub rebuilt_subtree_nodes: usize,
    /// Phase 1 wall time, seconds.
    pub replay_secs: f64,
    /// Phase 2 wall time, seconds.
    pub rebuild_secs: f64,
}

impl TdTreeIndex {
    /// Applies weight changes to existing edges and incrementally repairs
    /// the index. Requires the index to have been built with
    /// `track_supports: true`.
    ///
    /// Returns statistics; panics if supports were not tracked or an edge
    /// does not exist (updates change weights, not topology — as in the
    /// paper's experiment).
    pub fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        assert!(
            self.tree().supports.is_some(),
            "index must be built with track_supports: true to support updates"
        );
        let mut stats = UpdateStats::default();
        let t0 = std::time::Instant::now();

        // Apply to the stored graph.
        for (u, v, w) in changes {
            let e = self
                .graph()
                .find_edge(*u, *v)
                .unwrap_or_else(|| panic!("updated edge {u} -> {v} does not exist"));
            if self.graph().weight(e).approx_eq(w, 1e-9) {
                continue;
            }
            self.graph_mut()
                .set_weight(e, w.clone())
                .expect("validated");
            stats.changed_edges += 1;
        }

        // Phase 1: replay. Dirty = eliminations whose *inputs* (recorded
        // pairs at that node) changed.
        let mut dirty: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        let mut queued: FxHashSet<VertexId> = FxHashSet::default();
        let mut changed_nodes: FxHashSet<VertexId> = FxHashSet::default();

        // Seed: recompute the recorded values of every changed original edge.
        for (u, v, _) in changes {
            let (u, v) = (*u, *v);
            let earlier = if self.tree().order[u as usize] < self.tree().order[v as usize] {
                u
            } else {
                v
            };
            let other = if earlier == u { v } else { u };
            if self.refresh_pair(earlier, other) {
                changed_nodes.insert(earlier);
                if queued.insert(earlier) {
                    dirty.push(Reverse((self.tree().order[earlier as usize], earlier)));
                }
            }
        }

        while let Some(Reverse((_, m))) = dirty.pop() {
            queued.remove(&m);
            stats.replayed_eliminations += 1;
            // Inputs of m changed ⇒ every pair among bag(m) may change.
            let bag = self.tree().node(m).bag.clone();
            for (ii, &i) in bag.iter().enumerate() {
                for &j in bag.iter().skip(ii + 1) {
                    let earlier = if self.tree().order[i as usize] < self.tree().order[j as usize] {
                        i
                    } else {
                        j
                    };
                    let other = if earlier == i { j } else { i };
                    if self.refresh_pair(earlier, other) {
                        changed_nodes.insert(earlier);
                        if queued.insert(earlier) {
                            dirty.push(Reverse((self.tree().order[earlier as usize], earlier)));
                        }
                    }
                }
            }
        }
        stats.changed_nodes = changed_nodes.len();
        stats.replay_secs = t0.elapsed().as_secs_f64();

        // Phase 2: rebuild shortcut vectors for affected subtrees.
        let t1 = std::time::Instant::now();
        if !changed_nodes.is_empty() && self.shortcuts().num_pairs() > 0 {
            let roots: Vec<VertexId> = changed_nodes.iter().copied().collect();
            // Vertices in affected subtrees (to clear + count).
            let affected = subtree_vertices(self, &roots);
            stats.rebuilt_subtree_nodes = affected.len();
            self.shortcuts_mut().clear_vertices(&affected);
            let selected = self.selected_per_node().to_vec();
            let rebuilt =
                build_selected(self.tree(), &selected, self.options.threads, Some(&roots));
            // Merge rebuilt entries into the store.
            let td_len = self.tree().len();
            let mut merged = std::mem::replace(
                self.shortcuts_mut(),
                crate::shortcut::ShortcutStore::empty(td_len),
            );
            for (v, a) in rebuilt.pairs() {
                let (up, down) = rebuilt.get(v, a).expect("just enumerated");
                merged_insert(&mut merged, v, a, up.clone(), down.clone());
            }
            *self.shortcuts_mut() = merged;
        }
        // The changed nodes' weight lists must be re-frozen so the query
        // sweeps keep reading current functions — O(changed labels), not a
        // full rebuild of the mirror.
        if !changed_nodes.is_empty() {
            let nodes: Vec<VertexId> = changed_nodes.iter().copied().collect();
            self.refresh_frozen_nodes(&nodes);
        }
        stats.rebuild_secs = t1.elapsed().as_secs_f64();
        stats
    }

    /// Recomputes the recorded value of the pair `(earlier, other)` (both
    /// directions) from its base edge and support list. Returns true when
    /// either stored direction changed.
    fn refresh_pair(&mut self, earlier: VertexId, other: VertexId) -> bool {
        let key = (earlier.min(other), earlier.max(other));
        let supports: Vec<VertexId> = self
            .tree()
            .supports
            .as_ref()
            .expect("checked by update_edges")
            .get(&key)
            .cloned()
            .unwrap_or_default();

        // Direction earlier → other.
        let mut fwd: Option<Plf> = self
            .graph()
            .find_edge(earlier, other)
            .map(|e| self.graph().weight(e).clone());
        // Direction other → earlier.
        let mut bwd: Option<Plf> = self
            .graph()
            .find_edge(other, earlier)
            .map(|e| self.graph().weight(e).clone());

        for &m in &supports {
            let node = self.tree().node(m);
            let pe = self.tree().bag_position(m, earlier);
            let po = self.tree().bag_position(m, other);
            let (Some(pe), Some(po)) = (pe, po) else {
                continue;
            };
            if let (Some(a), Some(b)) = (&node.wd[pe], &node.ws[po]) {
                min_into(&mut fwd, a.compound(b, m));
            }
            if let (Some(a), Some(b)) = (&node.wd[po], &node.ws[pe]) {
                min_into(&mut bwd, a.compound(b, m));
            }
        }

        let pos = self
            .tree()
            .bag_position(earlier, other)
            .expect("pair is recorded at the earlier endpoint's node");
        let node = &self.tree().nodes[earlier as usize];
        let fwd_changed = !plf_opt_eq(&node.ws[pos], &fwd);
        let bwd_changed = !plf_opt_eq(&node.wd[pos], &bwd);
        if fwd_changed || bwd_changed {
            let node = &mut self.tree_mut().nodes[earlier as usize];
            node.ws[pos] = fwd;
            node.wd[pos] = bwd;
            true
        } else {
            false
        }
    }
}

fn plf_opt_eq(a: &Option<Plf>, b: &Option<Plf>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => a.approx_eq(b, 1e-9),
        (None, None) => true,
        _ => false,
    }
}

fn merged_insert(
    store: &mut crate::shortcut::ShortcutStore,
    v: VertexId,
    a: VertexId,
    up: Option<Plf>,
    down: Option<Plf>,
) {
    // ShortcutStore has no public insert; emulate via a tiny local builder.
    store.insert_pair(v, a, up, down);
}

/// All vertices inside the subtrees rooted at `roots` (deduplicated).
fn subtree_vertices(index: &TdTreeIndex, roots: &[VertexId]) -> Vec<VertexId> {
    let td = index.tree();
    let mut seen = vec![false; td.len()];
    let mut out = Vec::new();
    let mut stack: Vec<VertexId> = roots.to_vec();
    while let Some(v) = stack.pop() {
        if seen[v as usize] {
            continue;
        }
        seen[v as usize] = true;
        out.push(v);
        stack.extend(td.node(v).children.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{IndexOptions, SelectionStrategy};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::{random_profile, seeded_graph};
    use td_plf::DAY;

    fn verify_against_oracle(index: &TdTreeIndex, seed: u64, queries: usize) {
        let g = index.graph().clone();
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for _ in 0..queries {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let want = shortest_path_cost(&g, s, d, t);
            let got = index.query_cost(s, d, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-5,
                    "seed={seed} s={s} d={d} t={t}: oracle {a} vs index {b}"
                ),
                (None, None) => {}
                other => panic!("seed={seed} s={s} d={d}: {other:?}"),
            }
        }
    }

    #[test]
    fn updates_keep_the_index_exact() {
        for seed in 0..4u64 {
            let g = seeded_graph(seed, 25, 15, 3);
            let mut index = TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy: SelectionStrategy::Greedy { budget: 2_000 },
                    threads: 2,
                    track_supports: true,
                },
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
            for round in 0..3 {
                // Random weight changes on a few random edges (increase and
                // decrease alike).
                let m = index.graph().num_edges();
                let mut changes = Vec::new();
                for _ in 0..4 {
                    let e = rng.gen_range(0..m) as u32;
                    let edge = index.graph().edge(e);
                    let w = random_profile(&mut rng, 4, 5.0, 500.0);
                    changes.push((edge.from, edge.to, w));
                }
                let stats = index.update_edges(&changes);
                assert!(stats.changed_edges > 0, "round {round} changed nothing");
                verify_against_oracle(&index, seed * 10 + round, 25);
            }
        }
    }

    #[test]
    fn update_matches_full_rebuild_results() {
        let seed = 42u64;
        let g = seeded_graph(seed, 20, 12, 3);
        let mut index = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 1_500 },
                threads: 1,
                track_supports: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let m = g.num_edges();
        let mut changes = Vec::new();
        for _ in 0..6 {
            let e = rng.gen_range(0..m) as u32;
            let edge = g.edge(e);
            changes.push((edge.from, edge.to, random_profile(&mut rng, 3, 10.0, 400.0)));
        }
        index.update_edges(&changes);

        // Rebuild from the updated graph.
        let fresh = TdTreeIndex::build(
            index.graph().clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 1_500 },
                threads: 1,
                track_supports: true,
            },
        );
        for s in 0..20u32 {
            for d in 0..20u32 {
                for t in [0.0, DAY / 4.0, DAY / 2.0] {
                    let a = index.query_cost(s, d, t);
                    let b = fresh.query_cost(s, d, t);
                    match (a, b) {
                        (Some(x), Some(y)) => assert!(
                            (x - y).abs() < 1e-5,
                            "s={s} d={d} t={t}: updated {x} vs fresh {y}"
                        ),
                        (None, None) => {}
                        other => panic!("s={s} d={d}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn noop_update_changes_nothing() {
        let g = seeded_graph(3, 15, 10, 3);
        let mut index = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 1_000 },
                threads: 1,
                track_supports: true,
            },
        );
        let e = g.edge(0);
        let stats = index.update_edges(&[(e.from, e.to, e.weight.clone())]);
        assert_eq!(stats.changed_edges, 0);
        assert_eq!(stats.changed_nodes, 0);
    }

    #[test]
    #[should_panic(expected = "track_supports")]
    fn update_without_supports_panics() {
        let g = seeded_graph(4, 10, 5, 3);
        let mut index = TdTreeIndex::build(g.clone(), IndexOptions::default());
        let e = g.edge(0);
        index.update_edges(&[(e.from, e.to, Plf::constant(1.0))]);
    }
}
