//! Shortcut selection (Def. 8): a 0/1 knapsack over candidate shortcut-pair
//! instances.
//!
//! * [`select_greedy`] — Algo. 5: run two greedy fills (by utility, by
//!   density), return the better one. Theorem 2 proves the 0.5 approximation.
//! * [`select_dp`] — Algo. 4: exact dynamic programming. Selections are
//!   reconstructed with Hirschberg-style divide and conquer so memory stays
//!   `O(N)` instead of `O(items · N)`. For the paper's multi-million budgets
//!   the DP row is intractable verbatim (the paper does not discuss this), so
//!   weights and capacity can be bucketed by `weight_scale`; scale 1 is exact
//!   (tested against brute force).
//! * [`select_brute_force`] — exponential reference for tests.

use td_graph::VertexId;

/// One candidate shortcut-pair instance `⟨i, j⟩` (Def. 6/7).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The tree node.
    pub node: VertexId,
    /// The ancestor.
    pub ancestor: VertexId,
    /// Utility `u⟨i,j⟩ = (height(i) − height(j)) · w(T_G) · p⟨i,j⟩` (Def. 7).
    pub utility: f64,
    /// Weight `|I⟨i,j⟩| + |I⟨j,i⟩|` — total interpolation points of both
    /// directions (Def. 7).
    pub weight: u32,
}

/// The outcome of a selection algorithm.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// Indices into the candidate list, sorted ascending.
    pub chosen: Vec<usize>,
    /// Total utility of the chosen set.
    pub utility: f64,
    /// Total weight of the chosen set (≤ budget).
    pub weight: u64,
}

impl Selection {
    fn from_indices(mut chosen: Vec<usize>, items: &[Candidate]) -> Selection {
        chosen.sort_unstable();
        let utility = chosen.iter().map(|&i| items[i].utility).sum();
        let weight = chosen.iter().map(|&i| items[i].weight as u64).sum();
        Selection {
            chosen,
            utility,
            weight,
        }
    }
}

/// Greedy fill in the given priority order, stopping at the *first* item
/// that no longer fits (the paper's `break` in Algo. 5 lines 7/11, which the
/// Theorem 2 proof relies on).
fn greedy_fill(items: &[Candidate], order: &[usize], budget: u64) -> Vec<usize> {
    let mut chosen = Vec::new();
    let mut weight = 0u64;
    for &i in order {
        let w = items[i].weight as u64;
        if weight + w > budget {
            break;
        }
        chosen.push(i);
        weight += w;
    }
    chosen
}

/// Algo. 5's first strategy alone: fill by descending utility. Ablation
/// only — can be arbitrarily bad (one huge-utility item may waste the whole
/// budget on little value density-wise).
pub fn select_greedy_utility_only(items: &[Candidate], budget: u64) -> Selection {
    let mut by_utility: Vec<usize> = (0..items.len()).collect();
    by_utility.sort_by(|&a, &b| {
        items[b]
            .utility
            .partial_cmp(&items[a].utility)
            .expect("finite utilities")
    });
    Selection::from_indices(greedy_fill(items, &by_utility, budget), items)
}

/// Algo. 5's second strategy alone: fill by descending density `u/|I|`.
/// Ablation only — can be arbitrarily bad (many dense crumbs may block one
/// item that is almost the whole optimum).
pub fn select_greedy_density_only(items: &[Candidate], budget: u64) -> Selection {
    let density = |c: &Candidate| c.utility / (c.weight.max(1) as f64);
    let mut by_density: Vec<usize> = (0..items.len()).collect();
    by_density.sort_by(|&a, &b| {
        density(&items[b])
            .partial_cmp(&density(&items[a]))
            .expect("finite densities")
    });
    Selection::from_indices(greedy_fill(items, &by_density, budget), items)
}

/// Algo. 5: dual-greedy 0.5-approximation — run both strategies, keep the
/// better set. §4.4 motivates why neither alone suffices; the ablation
/// binary `exp_ablation` and the tests below demonstrate it empirically.
pub fn select_greedy(items: &[Candidate], budget: u64) -> Selection {
    let s1 = select_greedy_utility_only(items, budget);
    let s2 = select_greedy_density_only(items, budget);
    if s1.utility >= s2.utility {
        s1
    } else {
        s2
    }
}

/// Algo. 4: exact 0/1 knapsack DP with `O(N)` memory reconstruction.
///
/// `weight_scale` buckets item weights as `ceil(w / scale)` and the budget as
/// `floor(N / scale)`; scale 1 is exact, larger scales are conservative
/// (never overshoot the true budget) and used for the paper's multi-million
/// budgets.
pub fn select_dp(items: &[Candidate], budget: u64, weight_scale: u32) -> Selection {
    let scale = weight_scale.max(1) as u64;
    let cap = (budget / scale) as usize;
    let scaled: Vec<(usize, u32)> = items
        .iter()
        .enumerate()
        .map(|(i, c)| (i, ((c.weight as u64).div_ceil(scale)) as u32))
        .filter(|&(_, w)| (w as usize) <= cap)
        .collect();
    let mut chosen = Vec::new();
    dp_reconstruct(&scaled, items, cap, &mut chosen);
    Selection::from_indices(chosen, items)
}

/// Divide-and-conquer knapsack reconstruction: `O(cap)` memory,
/// `O(items · cap · log items)` time.
fn dp_reconstruct(scaled: &[(usize, u32)], items: &[Candidate], cap: usize, out: &mut Vec<usize>) {
    match scaled.len() {
        0 => {}
        1 => {
            let (idx, w) = scaled[0];
            if (w as usize) <= cap && items[idx].utility > 0.0 {
                out.push(idx);
            }
        }
        n => {
            let mid = n / 2;
            let (left, right) = scaled.split_at(mid);
            let fwd = dp_row(left, items, cap);
            let bwd = dp_row(right, items, cap);
            // Best split of the capacity between the halves.
            let mut best_c = 0usize;
            let mut best = f64::NEG_INFINITY;
            for c in 0..=cap {
                let v = fwd[c] + bwd[cap - c];
                if v > best {
                    best = v;
                    best_c = c;
                }
            }
            dp_reconstruct(left, items, best_c, out);
            dp_reconstruct(right, items, cap - best_c, out);
        }
    }
}

/// One forward DP row: `row[c]` = max utility of `scaled` within capacity `c`.
fn dp_row(scaled: &[(usize, u32)], items: &[Candidate], cap: usize) -> Vec<f64> {
    let mut row = vec![0.0f64; cap + 1];
    for &(idx, w) in scaled {
        let w = w as usize;
        let u = items[idx].utility;
        if w > cap || u <= 0.0 {
            continue;
        }
        // Iterate capacity downwards (0/1 knapsack).
        for c in (w..=cap).rev() {
            let cand = row[c - w] + u;
            if cand > row[c] {
                row[c] = cand;
            }
        }
    }
    row
}

/// Exponential-time exact reference (tests only; panics above 20 items).
pub fn select_brute_force(items: &[Candidate], budget: u64) -> Selection {
    assert!(items.len() <= 20, "brute force is for tiny test instances");
    let mut best_mask = 0usize;
    let mut best_utility = f64::NEG_INFINITY;
    for mask in 0..(1usize << items.len()) {
        let mut w = 0u64;
        let mut u = 0.0;
        for (i, c) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w += c.weight as u64;
                u += c.utility;
            }
        }
        if w <= budget && u > best_utility {
            best_utility = u;
            best_mask = mask;
        }
    }
    let chosen = (0..items.len())
        .filter(|i| best_mask & (1 << i) != 0)
        .collect();
    Selection::from_indices(chosen, items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn cand(utility: f64, weight: u32) -> Candidate {
        Candidate {
            node: 0,
            ancestor: 0,
            utility,
            weight,
        }
    }

    fn random_instance(rng: &mut StdRng, n: usize) -> (Vec<Candidate>, u64) {
        let items: Vec<Candidate> = (0..n)
            .map(|_| cand(rng.gen_range(0.1..50.0), rng.gen_range(1..30)))
            .collect();
        let total: u64 = items.iter().map(|c| c.weight as u64).sum();
        let budget = rng.gen_range(1..=total.max(2));
        (items, budget)
    }

    #[test]
    fn dp_matches_brute_force_exactly() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let (items, budget) = random_instance(&mut rng, 12);
            let dp = select_dp(&items, budget, 1);
            let bf = select_brute_force(&items, budget);
            assert!(
                (dp.utility - bf.utility).abs() < 1e-9,
                "dp {} vs brute force {} (budget {budget})",
                dp.utility,
                bf.utility
            );
            assert!(dp.weight <= budget);
        }
    }

    #[test]
    fn greedy_respects_half_approximation_bound() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..60 {
            let (items, budget) = random_instance(&mut rng, 14);
            let opt = select_dp(&items, budget, 1);
            let greedy = select_greedy(&items, budget);
            assert!(greedy.weight <= budget);
            assert!(
                greedy.utility >= 0.5 * opt.utility - 1e-9,
                "greedy {} < ½·OPT {}",
                greedy.utility,
                opt.utility
            );
        }
    }

    #[test]
    fn greedy_picks_the_better_of_the_two_strategies() {
        // One huge-utility huge-weight item vs many dense small items: the
        // density strategy wins; and vice versa.
        let items = vec![cand(100.0, 10), cand(30.0, 1), cand(30.0, 1), cand(30.0, 1)];
        let s = select_greedy(&items, 10);
        // utility-greedy: picks item0 (100); density-greedy: picks 3×30=90
        // then item0 does not fit. Better is 100.
        assert!((s.utility - 100.0).abs() < 1e-9);

        let items = vec![cand(100.0, 10), cand(60.0, 1), cand(60.0, 1), cand(60.0, 1)];
        let s = select_greedy(&items, 10);
        // utility-greedy: 100 (then 60s do not fit: 10+1 > 10 → break).
        // density-greedy: 60,60,60 then 100 does not fit → 180. Better: 180.
        assert!((s.utility - 180.0).abs() < 1e-9, "got {}", s.utility);
    }

    #[test]
    fn dp_weight_scaling_is_conservative() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let (items, budget) = random_instance(&mut rng, 15);
            let exact = select_dp(&items, budget, 1);
            for scale in [2, 4, 8] {
                let coarse = select_dp(&items, budget, scale);
                assert!(coarse.weight <= budget, "scale {scale} overshoots budget");
                assert!(
                    coarse.utility <= exact.utility + 1e-9,
                    "scaled DP cannot beat exact"
                );
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(select_greedy(&[], 100).chosen.len(), 0);
        assert_eq!(select_dp(&[], 100, 1).chosen.len(), 0);
        // Zero budget selects nothing.
        let items = vec![cand(10.0, 1)];
        assert_eq!(select_greedy(&items, 0).chosen.len(), 0);
        assert_eq!(select_dp(&items, 0, 1).chosen.len(), 0);
        // Item exactly filling the budget is taken.
        let s = select_dp(&[cand(5.0, 7)], 7, 1);
        assert_eq!(s.chosen, vec![0]);
    }

    #[test]
    fn single_strategies_can_each_be_arbitrarily_bad() {
        // Utility-only trap: the max-utility item swallows the budget while
        // dense crumbs would have been ~10x better.
        let crumb_heavy: Vec<Candidate> = std::iter::once(cand(101.0, 100)) // picked first by utility
            .chain((0..100).map(|_| cand(10.0, 1)))
            .collect();
        let u_only = select_greedy_utility_only(&crumb_heavy, 100);
        let d_only = select_greedy_density_only(&crumb_heavy, 100);
        assert!((u_only.utility - 101.0).abs() < 1e-9);
        assert!((d_only.utility - 1000.0).abs() < 1e-9);

        // Density-only trap: one crumb of slightly higher density blocks the
        // near-optimal big item (fill breaks at the first overflow).
        let big_blocked = vec![cand(2.0, 1), cand(100.0, 100)];
        let u_only = select_greedy_utility_only(&big_blocked, 100);
        let d_only = select_greedy_density_only(&big_blocked, 100);
        assert!((d_only.utility - 2.0).abs() < 1e-9, "{}", d_only.utility);
        assert!((u_only.utility - 100.0).abs() < 1e-9);

        // The dual greedy (Algo. 5) takes the better branch in both traps.
        assert!((select_greedy(&crumb_heavy, 100).utility - 1000.0).abs() < 1e-9);
        assert!((select_greedy(&big_blocked, 100).utility - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dual_greedy_never_loses_to_either_strategy() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let (items, budget) = random_instance(&mut rng, 15);
            let dual = select_greedy(&items, budget).utility;
            let u = select_greedy_utility_only(&items, budget).utility;
            let d = select_greedy_density_only(&items, budget).utility;
            assert!(dual >= u - 1e-9 && dual >= d - 1e-9);
        }
    }

    #[test]
    fn dp_reconstruction_reports_consistent_totals() {
        let mut rng = StdRng::seed_from_u64(44);
        let (items, budget) = random_instance(&mut rng, 50);
        let s = select_dp(&items, budget, 1);
        let u: f64 = s.chosen.iter().map(|&i| items[i].utility).sum();
        let w: u64 = s.chosen.iter().map(|&i| items[i].weight as u64).sum();
        assert!((u - s.utility).abs() < 1e-9);
        assert_eq!(w, s.weight);
        assert!(w <= budget);
        // chosen indices are unique and sorted
        let mut sorted = s.chosen.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), s.chosen.len());
    }

    #[test]
    fn larger_budget_never_hurts_dp() {
        let mut rng = StdRng::seed_from_u64(55);
        let (items, _) = random_instance(&mut rng, 16);
        let mut prev = 0.0;
        for budget in [5u64, 10, 20, 40, 80, 160] {
            let s = select_dp(&items, budget, 1);
            assert!(
                s.utility >= prev - 1e-9,
                "budget {budget} decreased utility"
            );
            prev = s.utility;
        }
    }
}
