//! The [`TdTreeIndex`]: construction, configuration and accounting.

use crate::frozen::FrozenTd;
use crate::query::{CostScratch, ProfileScratch, QueryEngine};
use crate::select::{select_dp, select_greedy, Candidate, Selection};
use crate::shortcut::{build_all, build_selected, weigh_candidates, ShortcutStore};
use std::time::Instant;
use td_graph::{Path, TdGraph, VertexId};
use td_plf::Plf;
use td_treedec::{TreeDecomposition, TreeStats};

/// How shortcuts are chosen (Def. 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectionStrategy {
    /// No shortcuts: TD-basic (Algo. 3 queries only).
    Basic,
    /// Algo. 5 dual greedy (TD-appro) under a weight budget `N`
    /// (interpolation points).
    Greedy {
        /// The budget `N` of Def. 8.
        budget: u64,
    },
    /// Algo. 4 dynamic programming (TD-dp). `weight_scale` buckets weights
    /// for large budgets (`1` = exact); see `select::select_dp`.
    Dp {
        /// The budget `N` of Def. 8.
        budget: u64,
        /// Weight bucketing factor (1 = exact DP).
        weight_scale: u32,
    },
    /// Every pair: the TD-H2H baseline's label.
    All,
}

/// Index construction options.
#[derive(Clone, Copy, Debug)]
pub struct IndexOptions {
    /// Shortcut selection strategy.
    pub strategy: SelectionStrategy,
    /// Worker threads for the shortcut passes (0 = all cores).
    pub threads: usize,
    /// Track support lists to enable [`TdTreeIndex::update_edges`].
    pub track_supports: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            strategy: SelectionStrategy::Basic,
            threads: 0,
            track_supports: false,
        }
    }
}

/// Timings and sizes recorded during construction.
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Tree decomposition wall time (Algo. 2), seconds.
    pub decompose_secs: f64,
    /// Candidate weigh pass wall time, seconds.
    pub weigh_secs: f64,
    /// Selection wall time (Algo. 4/5), seconds.
    pub select_secs: f64,
    /// Shortcut build pass wall time (Fact 1), seconds.
    pub build_secs: f64,
    /// Number of candidate pairs weighed.
    pub candidates: usize,
    /// Number of selected pair instances.
    pub selected_pairs: usize,
    /// Total weight (interpolation points) of the selection.
    pub selected_weight: u64,
    /// Total utility of the selection.
    pub selected_utility: f64,
}

impl BuildStats {
    /// Total construction wall time, seconds.
    pub fn total_secs(&self) -> f64 {
        self.decompose_secs + self.weigh_secs + self.select_secs + self.build_secs
    }
}

/// The paper's index: TFP tree decomposition + selected shortcuts.
///
/// `Clone` produces an independent, equally-answering copy — the
/// double-buffer building block behind `td-api`'s live-update mode, where a
/// writer repairs one copy while readers keep querying the other.
#[derive(Clone)]
pub struct TdTreeIndex {
    pub(crate) graph: TdGraph,
    pub(crate) td: TreeDecomposition,
    pub(crate) frozen: FrozenTd,
    pub(crate) store: ShortcutStore,
    pub(crate) selected_per_node: Vec<Vec<VertexId>>,
    /// Options the index was built with.
    pub options: IndexOptions,
    /// Construction statistics.
    pub build_stats: BuildStats,
}

// Compile-time pin: a built index is shared read-only across query threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<TdTreeIndex>()
};

impl TdTreeIndex {
    /// Builds the index over `graph` (which is kept inside for updates and
    /// examples; queries run purely on the index structures).
    pub fn build(graph: TdGraph, options: IndexOptions) -> TdTreeIndex {
        let mut stats = BuildStats::default();
        let t0 = Instant::now();
        let td = TreeDecomposition::build_opts(&graph, options.track_supports);
        stats.decompose_secs = t0.elapsed().as_secs_f64();
        let n = td.len();
        let width = td.stats().width;

        let (store, selected_per_node) = match options.strategy {
            SelectionStrategy::Basic => (ShortcutStore::empty(n), vec![Vec::new(); n]),
            SelectionStrategy::All => {
                let t = Instant::now();
                let store = build_all(&td, options.threads);
                stats.build_secs = t.elapsed().as_secs_f64();
                stats.selected_pairs = store.num_pairs();
                stats.selected_weight = store.total_points() as u64;
                (store, vec![Vec::new(); n])
            }
            SelectionStrategy::Greedy { budget } | SelectionStrategy::Dp { budget, .. } => {
                let t = Instant::now();
                let candidates = weigh_candidates(&td, width, options.threads);
                stats.weigh_secs = t.elapsed().as_secs_f64();
                stats.candidates = candidates.len();

                let t = Instant::now();
                let selection = match options.strategy {
                    SelectionStrategy::Greedy { .. } => select_greedy(&candidates, budget),
                    SelectionStrategy::Dp { weight_scale, .. } => {
                        select_dp(&candidates, budget, weight_scale)
                    }
                    _ => unreachable!(),
                };
                stats.select_secs = t.elapsed().as_secs_f64();
                stats.selected_pairs = selection.chosen.len();
                stats.selected_weight = selection.weight;
                stats.selected_utility = selection.utility;

                let per_node = selection_per_node(n, &candidates, &selection);
                let t = Instant::now();
                let store = build_selected(&td, &per_node, options.threads, None);
                stats.build_secs = t.elapsed().as_secs_f64();
                (store, per_node)
            }
        };

        // Freeze the tree labels into the flat CSR/arena layout the query
        // sweeps run on (a single linear copy of the stored breakpoints).
        let frozen = FrozenTd::build(&td);

        TdTreeIndex {
            graph,
            td,
            frozen,
            store,
            selected_per_node,
            options,
            build_stats: stats,
        }
    }

    /// The underlying graph (kept current across updates).
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// Mutable graph access for the update module.
    pub(crate) fn graph_mut(&mut self) -> &mut TdGraph {
        &mut self.graph
    }

    /// The tree decomposition.
    pub fn tree(&self) -> &TreeDecomposition {
        &self.td
    }

    /// Mutable tree access for the update module.
    pub(crate) fn tree_mut(&mut self) -> &mut TreeDecomposition {
        &mut self.td
    }

    /// The selected shortcuts.
    pub fn shortcuts(&self) -> &ShortcutStore {
        &self.store
    }

    /// Mutable shortcut access for the update module.
    pub(crate) fn shortcuts_mut(&mut self) -> &mut ShortcutStore {
        &mut self.store
    }

    /// Selected ancestors per node (used by incremental rebuilds).
    pub(crate) fn selected_per_node(&self) -> &[Vec<VertexId>] {
        &self.selected_per_node
    }

    /// A query engine borrowing this index (hot loops run on the frozen
    /// CSR/arena label layout).
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::with_frozen(&self.td, &self.store, &self.frozen)
    }

    /// The frozen flat view of the tree labels.
    pub fn frozen(&self) -> &FrozenTd {
        &self.frozen
    }

    /// Refreshes the flat label view of the given tree nodes after their
    /// weight lists changed (called by the incremental update path).
    pub(crate) fn refresh_frozen_nodes(&mut self, nodes: &[VertexId]) {
        // `frozen` is swapped out to appease the borrow checker (it needs
        // `&self.td` while being mutated); the placeholder is never queried.
        let mut frozen = std::mem::replace(&mut self.frozen, FrozenTd::empty());
        frozen.refresh_nodes(&self.td, nodes);
        self.frozen = frozen;
    }

    /// Travel cost query `Q(s, d, t)` (Algo. 6; Algo. 3 sweeps when no
    /// shortcut covers the cut).
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.engine().cost(s, d, t)
    }

    /// Travel cost query ignoring shortcuts (TD-basic behaviour).
    pub fn query_cost_basic(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.engine().cost_basic(s, d, t)
    }

    /// Shortest travel cost *function* query `f_{s,d}(t)`.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.engine().profile(s, d)
    }

    /// Cost function query ignoring shortcuts.
    pub fn query_profile_basic(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.engine().profile_basic(s, d)
    }

    /// Travel cost and the shortest path itself.
    pub fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.engine().cost_with_path(s, d, t)
    }

    /// [`TdTreeIndex::query_cost`] reusing `scratch` — no heap allocation on
    /// the hot path once the buffers are warm.
    pub fn query_cost_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        self.engine().cost_with(scratch, s, d, t)
    }

    /// [`TdTreeIndex::query_cost_basic`] reusing `scratch`.
    pub fn query_cost_basic_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        self.engine().cost_basic_with(scratch, s, d, t)
    }

    /// [`TdTreeIndex::query_profile_basic`] reusing `scratch`'s sweep tables.
    pub fn query_profile_basic_with(
        &self,
        scratch: &mut ProfileScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        self.engine().profile_basic_with(scratch, s, d)
    }

    /// [`TdTreeIndex::query_profile`] reusing `scratch`'s sweep tables.
    pub fn query_profile_with(
        &self,
        scratch: &mut ProfileScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        self.engine().profile_with(scratch, s, d)
    }

    /// [`TdTreeIndex::query_path`] reusing `scratch`'s sweep buffers.
    pub fn query_path_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        self.engine().cost_with_path_in(scratch, s, d, t)
    }

    /// Tree statistics (`h(T_G)`, `w(T_G)`, stored points, …).
    pub fn tree_stats(&self) -> TreeStats {
        self.td.stats()
    }

    /// Index memory: tree weight lists + their frozen CSR/arena mirror +
    /// selected shortcuts, bytes. (The input graph is not counted — every
    /// compared method shares it.)
    pub fn memory_bytes(&self) -> usize {
        self.td.stats().bytes + self.frozen.heap_bytes() + self.store.bytes()
    }
}

/// Groups a selection into per-node ancestor lists.
pub(crate) fn selection_per_node(
    n: usize,
    candidates: &[Candidate],
    selection: &Selection,
) -> Vec<Vec<VertexId>> {
    let mut per_node: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for &i in &selection.chosen {
        let c = &candidates[i];
        per_node[c.node as usize].push(c.ancestor);
    }
    per_node
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    fn check_index(index: &TdTreeIndex, seed: u64) {
        let g = index.graph().clone();
        let n = g.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        for _ in 0..30 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let want = shortest_path_cost(&g, s, d, t);
            let got = index.query_cost(s, d, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() < 1e-5,
                    "seed={seed} s={s} d={d} t={t}: {a} vs {b}"
                ),
                (None, None) => {}
                other => panic!("seed={seed} s={s} d={d}: {other:?}"),
            }
        }
    }

    #[test]
    fn all_strategies_answer_correctly() {
        for seed in 0..3u64 {
            let g = seeded_graph(seed, 30, 20, 3);
            for strategy in [
                SelectionStrategy::Basic,
                SelectionStrategy::Greedy { budget: 500 },
                SelectionStrategy::Dp {
                    budget: 500,
                    weight_scale: 1,
                },
                SelectionStrategy::All,
            ] {
                let index = TdTreeIndex::build(
                    g.clone(),
                    IndexOptions {
                        strategy,
                        threads: 2,
                        track_supports: false,
                    },
                );
                check_index(&index, seed);
            }
        }
    }

    #[test]
    fn selection_respects_budget() {
        let g = seeded_graph(5, 40, 25, 3);
        for budget in [100u64, 1000, 10_000] {
            let index = TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy: SelectionStrategy::Greedy { budget },
                    threads: 2,
                    track_supports: false,
                },
            );
            assert!(
                index.build_stats.selected_weight <= budget,
                "budget {budget} exceeded: {}",
                index.build_stats.selected_weight
            );
        }
    }

    #[test]
    fn bigger_budget_stores_more() {
        let g = seeded_graph(6, 40, 25, 3);
        let small = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 200 },
                ..Default::default()
            },
        );
        let large = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 5_000 },
                ..Default::default()
            },
        );
        assert!(large.build_stats.selected_pairs >= small.build_stats.selected_pairs);
        assert!(large.memory_bytes() >= small.memory_bytes());
    }

    #[test]
    fn dp_selects_at_least_greedy_utility() {
        let g = seeded_graph(7, 35, 20, 3);
        let budget = 800u64;
        let greedy = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget },
                ..Default::default()
            },
        );
        let dp = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Dp {
                    budget,
                    weight_scale: 1,
                },
                ..Default::default()
            },
        );
        assert!(
            dp.build_stats.selected_utility >= greedy.build_stats.selected_utility - 1e-9,
            "dp {} < greedy {}",
            dp.build_stats.selected_utility,
            greedy.build_stats.selected_utility
        );
        // And the 0.5 guarantee the other way.
        assert!(
            greedy.build_stats.selected_utility >= 0.5 * dp.build_stats.selected_utility - 1e-9
        );
    }

    #[test]
    fn memory_accounting_is_monotone_in_strategy() {
        let g = seeded_graph(8, 30, 20, 3);
        let basic = TdTreeIndex::build(g.clone(), IndexOptions::default());
        let all = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::All,
                ..Default::default()
            },
        );
        assert!(all.memory_bytes() > basic.memory_bytes());
        assert_eq!(basic.build_stats.selected_pairs, 0);
        assert!(all.build_stats.selected_pairs > 0);
    }

    #[test]
    fn build_stats_report_phases() {
        let g = seeded_graph(9, 30, 20, 3);
        let idx = TdTreeIndex::build(
            g,
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 1000 },
                ..Default::default()
            },
        );
        let st = &idx.build_stats;
        assert!(st.decompose_secs >= 0.0);
        assert!(st.candidates > 0);
        assert!(st.total_secs() >= st.decompose_secs);
    }
}
