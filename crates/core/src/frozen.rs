// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! [`FrozenTd`]: the flat, cache-friendly query-time view of a tree
//! decomposition's weight labels.
//!
//! The scalar sweeps of Algo. 3/6 spend their time walking each root-path
//! node's bag and evaluating the `Ws`/`Wd` functions towards it. In the
//! [`TreeDecomposition`] those live as per-node `Vec<Option<Plf>>` — three
//! pointer dereferences per relaxation (node → option vec → boxed points),
//! plus a `node(u).depth` chase to map each bag vertex onto the root path.
//! `FrozenTd` lays the same data out once, CSR-style:
//!
//! * `first[v]..first[v+1]` — `v`'s bag slots in the flat arrays;
//! * `bag_depth` — the *depth* of each bag vertex, precomputed (the sweeps
//!   index root-path tables by depth, never by vertex id);
//! * `ws`/`wd` — arena ids of the slot's functions ([`NO_PLF`] = absent);
//! * `arena` — every breakpoint of every label in contiguous SoA storage,
//!   with per-function `min_cost`/`max_cost` bounds the sweeps use to skip
//!   relaxations that provably cannot win.
//!
//! Built once by `TdTreeIndex::build` (and re-frozen after incremental
//! updates); borrowed by [`crate::QueryEngine`].

use td_plf::{PlfArena, PlfId, PlfSlice, NO_PLF};
use td_treedec::TreeDecomposition;

/// Flat CSR view of all `Ws`/`Wd` weight lists plus their breakpoint arena.
#[derive(Clone, Debug)]
pub struct FrozenTd {
    /// `first[v]..first[v+1]` delimits `v`'s bag slots (len `n+1`).
    pub(crate) first: Vec<u32>,
    /// Depth of each bag vertex — the root-path index the sweeps relax.
    pub(crate) bag_depth: Vec<u32>,
    /// Arena id of `Ws` per slot (`NO_PLF` when the reduced graph had no
    /// such directed edge).
    pub(crate) ws: Vec<PlfId>,
    /// Arena id of `Wd` per slot.
    pub(crate) wd: Vec<PlfId>,
    /// All label breakpoints, SoA, with precomputed min/max bounds.
    pub(crate) arena: PlfArena,
    /// Points belonging to superseded functions (see
    /// [`FrozenTd::refresh_nodes`]): the arena is append-only, so in-place
    /// node refreshes leave their old points behind until a compaction.
    pub(crate) stale_points: usize,
}

impl FrozenTd {
    /// A placeholder over no nodes (used to temporarily detach the view from
    /// an index during an in-place refresh; never queried).
    pub fn empty() -> FrozenTd {
        FrozenTd {
            first: vec![0],
            bag_depth: Vec::new(),
            ws: Vec::new(),
            wd: Vec::new(),
            arena: PlfArena::new(),
            stale_points: 0,
        }
    }

    /// Freezes `td`'s weight lists (a single linear copy).
    pub fn build(td: &TreeDecomposition) -> FrozenTd {
        let n = td.len();
        let total_slots: usize = td.nodes.iter().map(|nd| nd.bag.len()).sum();
        let total_points: usize = td
            .nodes
            .iter()
            .flat_map(|nd| nd.ws.iter().chain(nd.wd.iter()))
            .flatten()
            .map(|f| f.len())
            .sum();
        let mut first = Vec::with_capacity(n + 1);
        let mut bag_depth = Vec::with_capacity(total_slots);
        let mut ws = Vec::with_capacity(total_slots);
        let mut wd = Vec::with_capacity(total_slots);
        let mut arena = PlfArena::with_capacity(2 * total_slots, total_points);
        first.push(0);
        for node in &td.nodes {
            for (bi, &u) in node.bag.iter().enumerate() {
                bag_depth.push(td.node(u).depth);
                ws.push(match &node.ws[bi] {
                    Some(f) => arena.push(f),
                    None => NO_PLF,
                });
                wd.push(match &node.wd[bi] {
                    Some(f) => arena.push(f),
                    None => NO_PLF,
                });
            }
            first.push(bag_depth.len() as u32);
        }
        FrozenTd {
            first,
            bag_depth,
            ws,
            wd,
            arena,
            stale_points: 0,
        }
    }

    /// Refreshes the frozen slots of the given tree nodes after their
    /// `Ws`/`Wd` lists changed (incremental updates change weights, never
    /// bag shapes). New functions are appended to the arena and the slot ids
    /// repointed — O(changed labels), not O(index). The superseded points
    /// stay behind as garbage; once they outweigh the live ones the whole
    /// view is compacted by a fresh [`FrozenTd::build`].
    pub fn refresh_nodes(&mut self, td: &TreeDecomposition, nodes: &[td_graph::VertexId]) {
        for &v in nodes {
            let node = td.node(v);
            let lo = self.first[v as usize] as usize;
            debug_assert_eq!(
                (self.first[v as usize + 1] - self.first[v as usize]) as usize,
                node.bag.len(),
                "updates must not change bag shapes"
            );
            for bi in 0..node.bag.len() {
                let idx = lo + bi;
                for (slot, fresh) in [
                    (&mut self.ws[idx], &node.ws[bi]),
                    (&mut self.wd[idx], &node.wd[bi]),
                ] {
                    if *slot != NO_PLF {
                        self.stale_points += self.arena.points_of(*slot);
                    }
                    *slot = match fresh {
                        Some(f) => self.arena.push(f),
                        None => NO_PLF,
                    };
                }
            }
        }
        if self.stale_points > self.arena.total_points() / 2 {
            *self = FrozenTd::build(td);
        }
    }

    /// Flat slot range of `v`'s bag.
    #[inline]
    // td-lint: hot
    pub fn range(&self, v: td_graph::VertexId) -> std::ops::Range<usize> {
        debug_assert!((v as usize + 1) < self.first.len());
        self.first[v as usize] as usize..self.first[v as usize + 1] as usize
    }

    /// Depth of the bag vertex in slot `idx`.
    #[inline]
    // td-lint: hot
    pub fn bag_depth(&self, idx: usize) -> usize {
        debug_assert!(idx < self.bag_depth.len());
        self.bag_depth[idx] as usize
    }

    /// Arena id of slot `idx`'s `Ws` (`NO_PLF` = absent).
    #[inline]
    // td-lint: hot
    pub fn ws_id(&self, idx: usize) -> PlfId {
        debug_assert!(idx < self.ws.len());
        self.ws[idx]
    }

    /// Arena id of slot `idx`'s `Wd` (`NO_PLF` = absent).
    #[inline]
    // td-lint: hot
    pub fn wd_id(&self, idx: usize) -> PlfId {
        debug_assert!(idx < self.wd.len());
        self.wd[idx]
    }

    /// The breakpoint arena.
    #[inline]
    pub fn arena(&self) -> &PlfArena {
        &self.arena
    }

    /// Borrowed view of arena function `id`.
    #[inline]
    pub fn slice(&self, id: PlfId) -> PlfSlice<'_> {
        self.arena.slice(id)
    }

    /// Minimum of slot `idx`'s `Ws` over all departure times
    /// (`+∞` when absent) — O(1), precomputed at freeze time.
    #[inline]
    // td-lint: hot
    pub fn ws_min(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.ws.len());
        let id = self.ws[idx];
        if id == NO_PLF {
            f64::INFINITY
        } else {
            self.arena.min_cost(id)
        }
    }

    /// Minimum of slot `idx`'s `Wd` (`+∞` when absent).
    #[inline]
    // td-lint: hot
    pub fn wd_min(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.wd.len());
        let id = self.wd[idx];
        if id == NO_PLF {
            f64::INFINITY
        } else {
            self.arena.min_cost(id)
        }
    }

    /// Heap footprint in bytes — counted by `TdTreeIndex::memory_bytes`.
    pub fn heap_bytes(&self) -> usize {
        self.first.capacity() * std::mem::size_of::<u32>()
            + self.bag_depth.capacity() * std::mem::size_of::<u32>()
            + (self.ws.capacity() + self.wd.capacity()) * std::mem::size_of::<PlfId>()
            + self.arena.heap_bytes()
    }
}

// Compile-time pin: the frozen label view is shared read-only across query
// threads. A future `Rc`/`Cell` field fails this line instead of a test.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<FrozenTd>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use td_gen::random_graph::seeded_graph;

    #[test]
    fn refresh_nodes_repoints_changed_slots_and_compacts() {
        let g = seeded_graph(5, 30, 20, 3);
        let td = TreeDecomposition::build(&g);
        let mut fz = FrozenTd::build(&td);
        let reference = FrozenTd::build(&td);
        // Refresh every node several times (weights unchanged — the slots
        // must keep mirroring the tree), crossing the compaction threshold.
        let all: Vec<u32> = (0..td.len() as u32).collect();
        for _ in 0..4 {
            fz.refresh_nodes(&td, &all);
        }
        assert!(
            fz.arena.total_points() <= 2 * reference.arena.total_points(),
            "compaction must bound the garbage: {} vs live {}",
            fz.arena.total_points(),
            reference.arena.total_points()
        );
        for v in 0..td.len() as u32 {
            let node = td.node(v);
            for (bi, idx) in fz.range(v).enumerate() {
                match &node.ws[bi] {
                    Some(f) => {
                        for t in [0.0, 20_000.0, 70_000.0] {
                            assert!((fz.slice(fz.ws_id(idx)).eval(t) - f.eval(t)).abs() < 1e-12);
                        }
                    }
                    None => assert_eq!(fz.ws_id(idx), NO_PLF),
                }
            }
        }
    }

    #[test]
    fn frozen_mirrors_the_tree_labels() {
        let g = seeded_graph(3, 40, 25, 3);
        let td = TreeDecomposition::build(&g);
        let fz = FrozenTd::build(&td);
        for v in 0..td.len() as u32 {
            let node = td.node(v);
            let range = fz.range(v);
            assert_eq!(range.len(), node.bag.len(), "v={v}");
            for (bi, idx) in range.enumerate() {
                let u = node.bag[bi];
                assert_eq!(fz.bag_depth(idx), td.node(u).depth as usize);
                match &node.ws[bi] {
                    Some(f) => {
                        let s = fz.slice(fz.ws_id(idx));
                        for t in [0.0, 1000.0, 40_000.0, 90_000.0] {
                            assert!((s.eval(t) - f.eval(t)).abs() < 1e-12);
                        }
                        assert_eq!(fz.ws_min(idx), f.min_value());
                    }
                    None => assert_eq!(fz.ws_id(idx), NO_PLF),
                }
                match &node.wd[bi] {
                    Some(f) => {
                        let s = fz.slice(fz.wd_id(idx));
                        for t in [0.0, 1000.0, 40_000.0, 90_000.0] {
                            assert!((s.eval(t) - f.eval(t)).abs() < 1e-12);
                        }
                        assert_eq!(fz.wd_min(idx), f.min_value());
                    }
                    None => assert_eq!(fz.wd_id(idx), NO_PLF),
                }
            }
        }
        assert!(fz.heap_bytes() > 0);
    }
}
