#![forbid(unsafe_code)]
//! # td-core — the paper's TD-tree index
//!
//! The primary contribution of *"Querying Shortest Path on Large
//! Time-Dependent Road Networks with Shortcuts"* (ICDE 2024): a travel-
//! function-preserved tree decomposition with a budget-constrained set of
//! selected shortcuts.
//!
//! * [`index`] — [`TdTreeIndex`]: construction (Algo. 2 via `td-treedec`),
//!   shortcut materialisation (Fact 1, two-pass, parallel), memory accounting;
//! * [`select`] — the shortcut-selection knapsack (Def. 8): exact dynamic
//!   programming (Algo. 4, with divide-and-conquer reconstruction and weight
//!   bucketing for large budgets) and the 0.5-approximation dual greedy
//!   (Algo. 5), plus a brute-force reference for tests;
//! * [`shortcut`] — candidate enumeration with utilities (Def. 7) and the
//!   ancestor-vector DFS implementing Fact 1;
//! * [`query`] — the basic query (Algo. 3) and the shortcut query (Algo. 6),
//!   each in *scalar* mode (travel-cost query) and *profile* mode (shortest
//!   travel-cost-function query);
//! * [`paths`] — shortest-path recovery by recursive witness unfolding;
//! * [`update`] — incremental edge-weight updates (§5.2, Fig. 10): exact
//!   support-list replay of the reduction plus top-down shortcut rebuild.

pub mod frozen;
pub mod index;
pub mod paths;
pub mod persist;
pub mod query;
pub mod select;
pub mod shortcut;
pub mod update;

pub use frozen::FrozenTd;
pub use index::{BuildStats, IndexOptions, SelectionStrategy, TdTreeIndex};
pub use query::{CostScratch, ProfileScratch, QueryEngine};
pub use select::{Candidate, Selection};
pub use update::UpdateStats;
