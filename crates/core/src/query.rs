//! Query processing over the TD-tree (Algo. 3 and Algo. 6).
//!
//! Two query kinds, matching the paper's experiments:
//!
//! * **travel cost query** (scalar): the cost of `Q(s, d, t)` for one
//!   departure time — Fig. 8 (a/c/e/g). Implemented as an upward
//!   earliest-arrival sweep along `X(s)`'s root path (exact by the
//!   order-monotone-path property of the chordal fill-in structure) followed
//!   by a top-down arrival sweep along `X(d)`'s root path seeded at the
//!   common ancestors;
//! * **cost function query** (profile): the full `f_{s,d}(t)` — Fig. 8
//!   (b/d/f/h). Implemented exactly as Algo. 3: two upward function sweeps
//!   (`cost_s` via `Ws`, `cost_d` via `Wd`) combined over the LCA vertex cut
//!   (Property 1).
//!
//! With shortcuts (Algo. 6) there are three situations: (1) all cut
//! shortcuts selected → `O(w(T_G))` combination; (2) a subset selected →
//! upper bound `f⁺` prunes the sweeps (NIL-marking); (3) none → basic sweep.

use crate::shortcut::ShortcutStore;
use td_graph::VertexId;
use td_plf::{ops::min_into, Plf};
use td_treedec::TreeDecomposition;

/// Query engine borrowing the tree and the selected shortcuts.
pub struct QueryEngine<'a> {
    /// The TFP tree decomposition.
    pub td: &'a TreeDecomposition,
    /// Selected shortcuts (empty for TD-basic).
    pub store: &'a ShortcutStore,
}

/// Result of an upward scalar sweep: root path and arrival times.
pub(crate) struct ScalarSweep {
    /// Root-first path: `path[k]` = vertex at depth `k`; last entry = source.
    pub path: Vec<VertexId>,
    /// `arr[k]` = earliest arrival at `path[k]` (absolute time).
    pub arr: Vec<Option<f64>>,
    /// Predecessor of `path[k]`: `(deeper depth, bag index)` of the relaxing
    /// node, for path recovery.
    pub pred: Vec<Option<(usize, usize)>>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine.
    pub fn new(td: &'a TreeDecomposition, store: &'a ShortcutStore) -> Self {
        QueryEngine { td, store }
    }

    fn root_path(&self, v: VertexId) -> Vec<VertexId> {
        let mut p = self.td.ancestors_root_first(v);
        p.push(v);
        p
    }

    // ------------------------------------------------------------------
    // Scalar (travel cost) queries
    // ------------------------------------------------------------------

    /// Upward earliest-arrival sweep from `s` departing at `t`, optionally
    /// seeded with selected shortcuts towards cut vertices and pruned by a
    /// cost upper bound.
    pub(crate) fn sweep_up_scalar(
        &self,
        s: VertexId,
        t: f64,
        seeds: &[(usize, f64)],
        bound: Option<f64>,
    ) -> ScalarSweep {
        let path = self.root_path(s);
        let ds = path.len() - 1;
        let mut arr: Vec<Option<f64>> = vec![None; ds + 1];
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; ds + 1];
        let mut fixed = vec![false; ds + 1];
        arr[ds] = Some(t);
        for &(k, a) in seeds {
            arr[k] = Some(a);
            fixed[k] = true; // Algo. 6 line 15: shortcut values are exact
        }
        for k in (0..=ds).rev() {
            let Some(a) = arr[k] else { continue };
            if let Some(b) = bound {
                if a - t > b {
                    arr[k] = None; // NIL (Algo. 6 line 20)
                    continue;
                }
            }
            let node = self.td.node(path[k]);
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(ws) = &node.ws[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                if fixed[ku] {
                    continue;
                }
                let cand = a + ws.eval(a);
                if arr[ku].is_none_or(|x| cand < x) {
                    arr[ku] = Some(cand);
                    pred[ku] = Some((k, bi));
                }
            }
        }
        ScalarSweep { path, arr, pred }
    }

    /// Top-down arrival sweep along `d`'s root path.
    ///
    /// `init[k]` carries the up-sweep arrivals at the common ancestors
    /// (`k ≤ upto`, shared by both root paths). Every depth — including the
    /// common prefix — is then relaxed from above: the apex of the true
    /// shortest path is some common ancestor, and the down-monotone leg from
    /// the apex may pass through other common ancestors before descending to
    /// `d`, so the prefix vertices must be relaxable too.
    pub(crate) fn sweep_down_scalar(
        &self,
        d: VertexId,
        init: &[Option<f64>],
        upto: usize,
        t: f64,
        bound: Option<f64>,
    ) -> ScalarSweep {
        let path = self.root_path(d);
        let dd = path.len() - 1;
        let mut arr: Vec<Option<f64>> = vec![None; dd + 1];
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; dd + 1];
        for (k, slot) in arr.iter_mut().enumerate().take(upto.min(dd) + 1) {
            *slot = init.get(k).copied().flatten();
        }
        for k in 0..=dd {
            let node = self.td.node(path[k]);
            let mut best: Option<f64> = arr[k]; // seeded up-sweep arrival
            let mut best_pred = None;
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(wd) = &node.wd[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                let Some(a) = arr[ku] else { continue };
                let cand = a + wd.eval(a);
                if best.is_none_or(|x| cand < x) {
                    best = Some(cand);
                    best_pred = Some((ku, bi));
                }
            }
            if let (Some(b), Some(a)) = (bound, best) {
                if a - t > b && path[k] != d {
                    best = None; // NIL
                    best_pred = None;
                }
            }
            arr[k] = best;
            pred[k] = best_pred;
        }
        ScalarSweep { path, arr, pred }
    }

    /// Travel cost query `Q(s, d, t)` — Algo. 6 when shortcuts exist,
    /// falling back to the basic sweeps (Algo. 3's scalar counterpart).
    pub fn cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        if s == d {
            return Some(0.0);
        }
        let x = self.td.lca(s, d);
        let cut = self.td.vertex_cut(s, d);
        let upto = self.td.node(x).depth as usize;

        // Shortcut values over the cut: (depth of w, cost s→w, cost w→d).
        let mut full_cover = true;
        let mut bound: Option<f64> = None;
        let mut seeds: Vec<(usize, f64)> = Vec::new();
        let mut jump_total: Option<f64> = None;
        for &w in &cut {
            let kw = self.td.node(w).depth as usize;
            // s → w.
            let up_cost: Option<Option<f64>> = if w == s {
                Some(Some(0.0))
            } else {
                self.store
                    .get(s, w)
                    .map(|(up, _)| up.as_ref().map(|f| f.eval(t)))
            };
            // w → d, departing at the arrival through the shortcut.
            let down_known: Option<bool> = if w == d {
                Some(true)
            } else {
                self.store.get(d, w).map(|(_, down)| down.is_some())
            };
            match (&up_cost, &down_known) {
                (Some(_), Some(_)) => {}
                _ => full_cover = false,
            }
            if let Some(Some(cs)) = up_cost {
                seeds.push((kw, t + cs));
                if let Some(known) = down_known {
                    if known {
                        let total = if w == d {
                            Some(cs)
                        } else {
                            self.store.get(d, w).and_then(|(_, down)| {
                                down.as_ref().map(|f| cs + f.eval(t + cs))
                            })
                        };
                        if let Some(total) = total {
                            if bound.is_none_or(|b| total < b) {
                                bound = Some(total);
                            }
                            if jump_total.is_none_or(|b| total < b) {
                                jump_total = Some(total);
                            }
                        }
                    }
                }
            }
        }

        if full_cover {
            // Situation (1): O(w) combination from shortcuts alone.
            return jump_total;
        }

        // Situations (2)/(3): sweeps, pruned by the bound when present.
        let up = self.sweep_up_scalar(s, t, &seeds, bound);
        let down = self.sweep_down_scalar(d, &up.arr, upto, t, bound);
        let swept = down.arr[down.path.len() - 1].map(|a| a - t);
        match (swept, jump_total) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Basic travel cost query ignoring shortcuts (TD-basic's scalar mode).
    pub fn cost_basic(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        if s == d {
            return Some(0.0);
        }
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        let up = self.sweep_up_scalar(s, t, &[], None);
        let down = self.sweep_down_scalar(d, &up.arr, upto, t, None);
        down.arr[down.path.len() - 1].map(|a| a - t)
    }

    // ------------------------------------------------------------------
    // Profile (cost function) queries
    // ------------------------------------------------------------------

    /// Upward function sweep from `s` (Algo. 3 lines 1-10): `cost[k]` =
    /// `f_{s, path[k]}(t)` for every root-path vertex. `seeds` carries
    /// shortcut functions (exact, skipped by relaxation per Algo. 6 line 15);
    /// `bound` enables NIL pruning (Algo. 6 line 20).
    pub(crate) fn sweep_up_profile(
        &self,
        s: VertexId,
        seeds: &[(usize, Plf)],
        bound: Option<&Plf>,
    ) -> (Vec<VertexId>, Vec<Option<Plf>>) {
        let path = self.root_path(s);
        let ds = path.len() - 1;
        let mut cost: Vec<Option<Plf>> = vec![None; ds + 1];
        let mut fixed = vec![false; ds + 1];
        for (k, f) in seeds {
            cost[*k] = Some(f.clone());
            fixed[*k] = true;
        }
        let bound_max = bound.map(|b| b.max_value());
        for k in (0..=ds).rev() {
            // At processing time cost[k] is final: NIL-prune it (Algo. 6
            // line 20) when it can never beat the shortcut bound anywhere.
            if k != ds {
                let Some(f) = &cost[k] else { continue };
                if let Some(bm) = bound_max {
                    if f.min_value() > bm {
                        cost[k] = None; // NIL
                        continue;
                    }
                }
            }
            let node = self.td.node(path[k]);
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(ws) = &node.ws[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                if fixed[ku] {
                    continue;
                }
                let cand = if k == ds {
                    ws.clone() // line 2: cost_s[u] ← X(s).Ws_u
                } else {
                    cost[k].as_ref().expect("checked above").compound(ws, path[k])
                };
                min_into(&mut cost[ku], cand);
            }
        }
        (path, cost)
    }

    /// Upward *reverse* function sweep towards `d`: `cost[k]` =
    /// `f_{path[k], d}(t)` (Algo. 3 line 11 "repeat for cost_d").
    pub(crate) fn sweep_up_profile_rev(
        &self,
        d: VertexId,
        seeds: &[(usize, Plf)],
        bound: Option<&Plf>,
    ) -> (Vec<VertexId>, Vec<Option<Plf>>) {
        let path = self.root_path(d);
        let dd = path.len() - 1;
        let mut cost: Vec<Option<Plf>> = vec![None; dd + 1];
        let mut fixed = vec![false; dd + 1];
        for (k, f) in seeds {
            cost[*k] = Some(f.clone());
            fixed[*k] = true;
        }
        let bound_max = bound.map(|b| b.max_value());
        for k in (0..=dd).rev() {
            if k != dd {
                let Some(f) = &cost[k] else { continue };
                if let Some(bm) = bound_max {
                    if f.min_value() > bm {
                        cost[k] = None; // NIL
                        continue;
                    }
                }
            }
            let node = self.td.node(path[k]);
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(wd) = &node.wd[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                if fixed[ku] {
                    continue;
                }
                let cand = if k == dd {
                    wd.clone()
                } else {
                    wd.compound(cost[k].as_ref().expect("checked above"), path[k])
                };
                min_into(&mut cost[ku], cand);
            }
        }
        (path, cost)
    }

    /// Cost function query `f_{s,d}(t)` — Algo. 6 (falls back to Algo. 3
    /// when no shortcut covers the cut).
    pub fn profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let cut = self.td.vertex_cut(s, d);

        // Collect shortcut functions over the cut.
        let mut full_cover = true;
        let mut seeds_s: Vec<(usize, Plf)> = Vec::new();
        let mut seeds_d: Vec<(usize, Plf)> = Vec::new();
        let mut bound: Option<Plf> = None;
        for &w in &cut {
            let kw = self.td.node(w).depth as usize;
            let up_f: Option<Option<Plf>> = if w == s {
                Some(Some(Plf::zero()))
            } else {
                self.store.get(s, w).map(|(up, _)| up.clone())
            };
            let down_f: Option<Option<Plf>> = if w == d {
                Some(Some(Plf::zero()))
            } else {
                self.store.get(d, w).map(|(_, down)| down.clone())
            };
            if up_f.is_none() || down_f.is_none() {
                full_cover = false;
            }
            if let Some(Some(f)) = &up_f {
                if w != s {
                    seeds_s.push((kw, f.clone()));
                }
            }
            if let Some(Some(f)) = &down_f {
                if w != d {
                    seeds_d.push((kw, f.clone()));
                }
            }
            if let (Some(Some(fu)), Some(Some(fd))) = (&up_f, &down_f) {
                let total = if w == s {
                    fd.clone()
                } else if w == d {
                    fu.clone()
                } else {
                    fu.compound(fd, w)
                };
                min_into(&mut bound, total);
            }
        }

        if full_cover {
            // Situation (1): combine shortcuts directly (lines 1-2).
            return bound;
        }

        // Situations (2)/(3): pruned sweeps + combination over the common
        // ancestor chain.
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        let (path_s, cost_s) = self.sweep_up_profile(s, &seeds_s, bound.as_ref());
        let (_, cost_d) = self.sweep_up_profile_rev(d, &seeds_d, bound.as_ref());
        let mut result: Option<Plf> = bound;
        combine_over_chain(&path_s, &cost_s, &cost_d, upto, s, d, &mut result);
        result
    }

    /// Basic cost function query (Algo. 3, no shortcuts).
    pub fn profile_basic(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        let (path_s, cost_s) = self.sweep_up_profile(s, &[], None);
        let (_, cost_d) = self.sweep_up_profile_rev(d, &[], None);
        let mut result: Option<Plf> = None;
        combine_over_chain(&path_s, &cost_s, &cost_d, upto, s, d, &mut result);
        result
    }
}

/// Combines the two sweep tables over the common-ancestor chain (every
/// vertex at depth `0..=upto`, shared by both root paths).
///
/// The chain — rather than just the LCA cut — is required for exactness with
/// *sweep* values: the sweeps compute order-monotone ("up-edge only") costs,
/// and the apex of the shortest path (where up switches to down) is some
/// common ancestor, possibly above the cut. The cut `{x} ∪ bag(x)` is a
/// subset of the chain, so Property 1's combination is subsumed. (With
/// *exact* shortcut functions, the cut alone suffices — that is situation (1)
/// of Algo. 6.)
#[allow(clippy::too_many_arguments)]
fn combine_over_chain(
    path_s: &[VertexId],
    cost_s: &[Option<Plf>],
    cost_d: &[Option<Plf>],
    upto: usize,
    s: VertexId,
    d: VertexId,
    result: &mut Option<Plf>,
) {
    for (k, &w) in path_s.iter().enumerate().take(upto + 1) {
        let term = if w == s {
            cost_d.get(k).cloned().flatten()
        } else if w == d {
            cost_s.get(k).cloned().flatten()
        } else {
            match (
                cost_s.get(k).and_then(|o| o.as_ref()),
                cost_d.get(k).and_then(|o| o.as_ref()),
            ) {
                (Some(a), Some(b)) => Some(a.compound(b, w)),
                _ => None,
            }
        };
        if let Some(f) = term {
            min_into(result, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{build_all, ShortcutStore};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::{profile_search, shortest_path_cost};
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    fn probe_times() -> Vec<f64> {
        (0..10).map(|k| k as f64 * DAY / 10.0 + 13.0).collect()
    }

    #[test]
    fn basic_scalar_query_matches_dijkstra() {
        for seed in 0..6u64 {
            let n = 35;
            let g = seeded_graph(seed, n, 25, 3);
            let td = TreeDecomposition::build(&g);
            let store = ShortcutStore::empty(n);
            let engine = QueryEngine::new(&td, &store);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
            for _ in 0..40 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let got = engine.cost_basic(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-5,
                        "seed={seed} s={s} d={d} t={t}: dijkstra {a} vs index {b}"
                    ),
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d} t={t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn basic_profile_query_matches_profile_search() {
        for seed in 0..4u64 {
            let n = 28;
            let g = seeded_graph(seed, n, 18, 3);
            let td = TreeDecomposition::build(&g);
            let store = ShortcutStore::empty(n);
            let engine = QueryEngine::new(&td, &store);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
            for _ in 0..8 {
                let s = rng.gen_range(0..n) as u32;
                let prof = profile_search(&g, s);
                for _ in 0..4 {
                    let d = rng.gen_range(0..n) as u32;
                    let got = engine.profile_basic(s, d);
                    match (&prof.dist[d as usize], &got) {
                        (Some(want), Some(got)) => {
                            for t in probe_times() {
                                assert!(
                                    (want.eval(t) - got.eval(t)).abs() < 1e-5,
                                    "seed={seed} s={s} d={d} t={t}: {} vs {}",
                                    want.eval(t),
                                    got.eval(t)
                                );
                            }
                        }
                        (None, None) => {}
                        other => {
                            panic!("seed={seed} s={s} d={d}: {:?}", other.1.as_ref().map(|_| ()))
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_shortcut_queries_match_basic() {
        // With ALL shortcuts (TD-H2H mode) every query is situation (1); the
        // answers must agree with the basic sweeps.
        for seed in 0..4u64 {
            let n = 30;
            let g = seeded_graph(seed, n, 20, 3);
            let td = TreeDecomposition::build(&g);
            let full = build_all(&td, 2);
            let none = ShortcutStore::empty(n);
            let fast = QueryEngine::new(&td, &full);
            let slow = QueryEngine::new(&td, &none);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..30 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let a = fast.cost(s, d, t);
                let b = slow.cost_basic(s, d, t);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-5, "seed={seed} s={s} d={d} t={t}: {a} vs {b}")
                    }
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                }
                let fa = fast.profile(s, d);
                let fb = slow.profile_basic(s, d);
                match (fa, fb) {
                    (Some(fa), Some(fb)) => {
                        for t in probe_times() {
                            assert!(
                                (fa.eval(t) - fb.eval(t)).abs() < 1e-5,
                                "seed={seed} s={s} d={d} t={t}"
                            );
                        }
                    }
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {:?}", other.0.map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn self_query_is_zero() {
        let g = seeded_graph(1, 10, 6, 3);
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(10);
        let engine = QueryEngine::new(&td, &store);
        assert_eq!(engine.cost_basic(3, 3, 100.0), Some(0.0));
        assert_eq!(engine.cost(3, 3, 100.0), Some(0.0));
        assert_eq!(engine.profile_basic(3, 3).unwrap().eval(5.0), 0.0);
    }

    #[test]
    fn ancestor_descendant_queries_work() {
        // Queries where X(s) is an ancestor of X(d) exercise the degenerate
        // cut = {s} ∪ bag(s) case.
        let g = seeded_graph(4, 25, 15, 3);
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(25);
        let engine = QueryEngine::new(&td, &store);
        let mut checked = 0;
        for v in 0..25u32 {
            for a in td.ancestors_root_first(v) {
                for t in [0.0, DAY / 3.0, DAY / 2.0] {
                    let want = shortest_path_cost(&g, a, v, t);
                    let got = engine.cost_basic(a, v, t);
                    match (want, got) {
                        (Some(x), Some(y)) => {
                            assert!((x - y).abs() < 1e-5, "a={a} v={v} t={t}: {x} vs {y}")
                        }
                        (None, None) => {}
                        other => panic!("a={a} v={v}: {other:?}"),
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn unreachable_returns_none() {
        use td_graph::TdGraph;
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 0, Plf::constant(1.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        g.add_edge(3, 2, Plf::constant(1.0)).unwrap();
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(4);
        let engine = QueryEngine::new(&td, &store);
        assert_eq!(engine.cost_basic(0, 3, 0.0), None);
        assert!(engine.profile_basic(0, 3).is_none());
        assert_eq!(engine.cost(0, 3, 0.0), None);
    }
}
