// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Query processing over the TD-tree (Algo. 3 and Algo. 6).
//!
//! Two query kinds, matching the paper's experiments:
//!
//! * **travel cost query** (scalar): the cost of `Q(s, d, t)` for one
//!   departure time — Fig. 8 (a/c/e/g). Implemented as an upward
//!   earliest-arrival sweep along `X(s)`'s root path (exact by the
//!   order-monotone-path property of the chordal fill-in structure) followed
//!   by a top-down arrival sweep along `X(d)`'s root path seeded at the
//!   common ancestors;
//! * **cost function query** (profile): the full `f_{s,d}(t)` — Fig. 8
//!   (b/d/f/h). Implemented exactly as Algo. 3: two upward function sweeps
//!   (`cost_s` via `Ws`, `cost_d` via `Wd`) combined over the LCA vertex cut
//!   (Property 1).
//!
//! With shortcuts (Algo. 6) there are three situations: (1) all cut
//! shortcuts selected → `O(w(T_G))` combination; (2) a subset selected →
//! upper bound `f⁺` prunes the sweeps (NIL-marking); (3) none → basic sweep.
//!
//! ## Scratch buffers
//!
//! Every query comes in two flavours: a convenience form (`cost`, `profile`)
//! that allocates its working state per call, and a `*_with` form taking a
//! reusable [`CostScratch`] / [`ProfileScratch`]. The `*_with` forms are the
//! hot path used by `td-api`'s `QuerySession`: after the first few queries
//! warm the buffers up to the tree's depth, a scalar query performs **no
//! heap allocation at all**.

use crate::frozen::FrozenTd;
use crate::shortcut::ShortcutStore;
use td_graph::VertexId;
use td_plf::{ops::min_into, Plf, NO_PLF};
use td_treedec::TreeDecomposition;

/// Query engine borrowing the tree and the selected shortcuts.
pub struct QueryEngine<'a> {
    /// The TFP tree decomposition.
    pub td: &'a TreeDecomposition,
    /// Selected shortcuts (empty for TD-basic).
    pub store: &'a ShortcutStore,
    /// Frozen flat view of the tree labels (`None` = fall back to the
    /// pointer-chasing `TreeNode` layout). `TdTreeIndex` always passes one;
    /// bare engines built in tests may omit it.
    frozen: Option<&'a FrozenTd>,
}

/// Reusable buffers for one scalar sweep direction.
#[derive(Clone, Debug, Default)]
pub struct SweepBufs {
    /// Root-first path: `path[k]` = vertex at depth `k`; last entry = the
    /// sweep's endpoint.
    pub path: Vec<VertexId>,
    /// `arr[k]` = earliest arrival at `path[k]` (absolute time).
    pub arr: Vec<Option<f64>>,
    /// Predecessor of `path[k]`: `(relaxing depth, bag index)`, for path
    /// recovery.
    pub pred: Vec<Option<(usize, usize)>>,
    /// Depths holding exact shortcut values (skipped by relaxation).
    fixed: Vec<bool>,
}

impl SweepBufs {
    fn reset(&mut self, len: usize) {
        self.arr.clear();
        self.arr.resize(len, None);
        self.pred.clear();
        self.pred.resize(len, None);
        self.fixed.clear();
        self.fixed.resize(len, false);
    }
}

/// Reusable scratch for scalar (travel cost) queries. After warm-up the
/// buffers reach the tree's depth and scalar queries stop allocating.
#[derive(Clone, Debug, Default)]
pub struct CostScratch {
    pub(crate) up: SweepBufs,
    pub(crate) down: SweepBufs,
    pub(crate) cut: Vec<VertexId>,
    pub(crate) seeds: Vec<(usize, f64)>,
}

/// Reusable buffers for one profile sweep direction.
#[derive(Clone, Debug, Default)]
pub struct ProfileSweepBufs {
    /// Root-first path, last entry = the sweep's endpoint.
    pub path: Vec<VertexId>,
    /// `cost[k]` = travel cost function between `path[k]` and the endpoint.
    pub cost: Vec<Option<Plf>>,
    fixed: Vec<bool>,
}

impl ProfileSweepBufs {
    fn reset(&mut self, len: usize) {
        self.cost.clear();
        self.cost.resize(len, None);
        self.fixed.clear();
        self.fixed.resize(len, false);
    }
}

/// Reusable scratch for profile (cost function) queries. The result PLFs are
/// owned by the caller and still allocate; the sweep tables, seed lists and
/// cut vector are reused across queries.
#[derive(Clone, Debug, Default)]
pub struct ProfileScratch {
    up: ProfileSweepBufs,
    down: ProfileSweepBufs,
    cut: Vec<VertexId>,
    seeds_s: Vec<(usize, Plf)>,
    seeds_d: Vec<(usize, Plf)>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over the `TreeNode` layout (no frozen view).
    pub fn new(td: &'a TreeDecomposition, store: &'a ShortcutStore) -> Self {
        QueryEngine {
            td,
            store,
            frozen: None,
        }
    }

    /// Creates an engine whose hot loops run on the frozen CSR/arena layout.
    pub fn with_frozen(
        td: &'a TreeDecomposition,
        store: &'a ShortcutStore,
        frozen: &'a FrozenTd,
    ) -> Self {
        QueryEngine {
            td,
            store,
            frozen: Some(frozen),
        }
    }

    fn root_path_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        self.td.ancestors_root_first_into(v, out);
        out.push(v);
    }

    // ------------------------------------------------------------------
    // Scalar (travel cost) queries
    // ------------------------------------------------------------------

    /// Upward earliest-arrival sweep from `s` departing at `t` into `bufs`,
    /// optionally seeded with selected shortcuts towards cut vertices and
    /// pruned by a cost upper bound.
    // td-lint: hot
    pub(crate) fn sweep_up_scalar_into(
        &self,
        s: VertexId,
        t: f64,
        seeds: &[(usize, f64)],
        bound: Option<f64>,
        bufs: &mut SweepBufs,
    ) {
        self.root_path_into(s, &mut bufs.path);
        debug_assert!(!bufs.path.is_empty(), "root path always contains s");
        let ds = bufs.path.len() - 1;
        bufs.reset(ds + 1);
        bufs.arr[ds] = Some(t);
        for &(k, a) in seeds {
            bufs.arr[k] = Some(a);
            bufs.fixed[k] = true; // Algo. 6 line 15: shortcut values are exact
        }
        for k in (0..=ds).rev() {
            let Some(a) = bufs.arr[k] else { continue };
            if let Some(b) = bound {
                if a - t > b {
                    bufs.arr[k] = None; // NIL (Algo. 6 line 20)
                    continue;
                }
            }
            if let Some(fz) = self.frozen {
                // Frozen layout: flat slot walk, precomputed bag depths, and
                // the arena's min-cost lower bound pruning evaluations that
                // provably cannot improve the slot (or survive the NIL
                // bound — any relaxation with `a + min - t > b` would only
                // write a value NIL-ed at its own processing step).
                for (bi, idx) in fz.range(bufs.path[k]).enumerate() {
                    let sid = fz.ws_id(idx);
                    if sid == NO_PLF {
                        continue;
                    }
                    let ku = fz.bag_depth(idx);
                    if bufs.fixed[ku] {
                        continue;
                    }
                    let lb = a + fz.arena().min_cost(sid);
                    if bufs.arr[ku].is_some_and(|x| lb >= x) || bound.is_some_and(|b| lb - t > b) {
                        continue;
                    }
                    let cand = a + fz.slice(sid).eval(a);
                    if bufs.arr[ku].is_none_or(|x| cand < x) {
                        bufs.arr[ku] = Some(cand);
                        bufs.pred[ku] = Some((k, bi));
                    }
                }
            } else {
                let node = self.td.node(bufs.path[k]);
                for (bi, &u) in node.bag.iter().enumerate() {
                    let Some(ws) = &node.ws[bi] else { continue };
                    let ku = self.td.node(u).depth as usize;
                    if bufs.fixed[ku] {
                        continue;
                    }
                    let cand = a + ws.eval(a);
                    if bufs.arr[ku].is_none_or(|x| cand < x) {
                        bufs.arr[ku] = Some(cand);
                        bufs.pred[ku] = Some((k, bi));
                    }
                }
            }
        }
    }

    /// Top-down arrival sweep along `d`'s root path into `bufs`.
    ///
    /// `init[k]` carries the up-sweep arrivals at the common ancestors
    /// (`k ≤ upto`, shared by both root paths). Every depth — including the
    /// common prefix — is then relaxed from above: the apex of the true
    /// shortest path is some common ancestor, and the down-monotone leg from
    /// the apex may pass through other common ancestors before descending to
    /// `d`, so the prefix vertices must be relaxable too.
    // td-lint: hot
    pub(crate) fn sweep_down_scalar_into(
        &self,
        d: VertexId,
        init: &[Option<f64>],
        upto: usize,
        t: f64,
        bound: Option<f64>,
        bufs: &mut SweepBufs,
    ) {
        self.root_path_into(d, &mut bufs.path);
        debug_assert!(!bufs.path.is_empty(), "root path always contains d");
        let dd = bufs.path.len() - 1;
        bufs.reset(dd + 1);
        for (k, slot) in bufs.arr.iter_mut().enumerate().take(upto.min(dd) + 1) {
            *slot = init.get(k).copied().flatten();
        }
        for k in 0..=dd {
            let mut best: Option<f64> = bufs.arr[k]; // seeded up-sweep arrival
            let mut best_pred = None;
            if let Some(fz) = self.frozen {
                for (bi, idx) in fz.range(bufs.path[k]).enumerate() {
                    let wid = fz.wd_id(idx);
                    if wid == NO_PLF {
                        continue;
                    }
                    let ku = fz.bag_depth(idx);
                    let Some(a) = bufs.arr[ku] else { continue };
                    // Min-cost lower bound: skip the evaluation when it
                    // cannot beat the running best.
                    if best.is_some_and(|x| a + fz.arena().min_cost(wid) >= x) {
                        continue;
                    }
                    let cand = a + fz.slice(wid).eval(a);
                    if best.is_none_or(|x| cand < x) {
                        best = Some(cand);
                        best_pred = Some((ku, bi));
                    }
                }
            } else {
                let node = self.td.node(bufs.path[k]);
                for (bi, &u) in node.bag.iter().enumerate() {
                    let Some(wd) = &node.wd[bi] else { continue };
                    let ku = self.td.node(u).depth as usize;
                    let Some(a) = bufs.arr[ku] else { continue };
                    let cand = a + wd.eval(a);
                    if best.is_none_or(|x| cand < x) {
                        best = Some(cand);
                        best_pred = Some((ku, bi));
                    }
                }
            }
            if let (Some(b), Some(a)) = (bound, best) {
                if a - t > b && bufs.path[k] != d {
                    best = None; // NIL
                    best_pred = None;
                }
            }
            bufs.arr[k] = best;
            bufs.pred[k] = best_pred;
        }
    }

    /// Travel cost query `Q(s, d, t)` — Algo. 6 when shortcuts exist,
    /// falling back to the basic sweeps (Algo. 3's scalar counterpart).
    ///
    /// Convenience form allocating fresh scratch; hot paths should hold a
    /// [`CostScratch`] and call [`QueryEngine::cost_with`].
    pub fn cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.cost_with(&mut CostScratch::default(), s, d, t)
    }

    /// Travel cost query `Q(s, d, t)` reusing `scratch` (allocation-free
    /// after warm-up).
    // td-lint: hot
    pub fn cost_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        if s == d {
            return Some(0.0);
        }
        let CostScratch {
            up,
            down,
            cut,
            seeds,
        } = scratch;
        let x = self.td.vertex_cut_into(s, d, cut);
        let upto = self.td.node(x).depth as usize;

        // Shortcut values over the cut: (depth of w, cost s→w, cost w→d).
        let mut full_cover = true;
        let mut bound: Option<f64> = None;
        seeds.clear();
        let mut jump_total: Option<f64> = None;
        for &w in cut.iter() {
            let kw = self.td.node(w).depth as usize;
            // s → w.
            let up_cost: Option<Option<f64>> = if w == s {
                Some(Some(0.0))
            } else {
                self.store
                    .get(s, w)
                    .map(|(up, _)| up.as_ref().map(|f| f.eval(t)))
            };
            // w → d, departing at the arrival through the shortcut.
            let down_known: Option<bool> = if w == d {
                Some(true)
            } else {
                self.store.get(d, w).map(|(_, down)| down.is_some())
            };
            match (&up_cost, &down_known) {
                (Some(_), Some(_)) => {}
                _ => full_cover = false,
            }
            if let Some(Some(cs)) = up_cost {
                // td-lint: allow(hot-alloc) seed list is bounded by the cut width and reuses capacity
                seeds.push((kw, t + cs));
                if let Some(known) = down_known {
                    if known {
                        let total = if w == d {
                            Some(cs)
                        } else {
                            self.store
                                .get(d, w)
                                .and_then(|(_, down)| down.as_ref().map(|f| cs + f.eval(t + cs)))
                        };
                        if let Some(total) = total {
                            if bound.is_none_or(|b| total < b) {
                                bound = Some(total);
                            }
                            if jump_total.is_none_or(|b| total < b) {
                                jump_total = Some(total);
                            }
                        }
                    }
                }
            }
        }

        if full_cover {
            // Situation (1): O(w) combination from shortcuts alone.
            return jump_total;
        }

        // Situations (2)/(3): sweeps, pruned by the bound when present.
        self.sweep_up_scalar_into(s, t, seeds, bound, up);
        self.sweep_down_scalar_into(d, &up.arr, upto, t, bound, down);
        debug_assert_eq!(down.arr.len(), down.path.len());
        let swept = down.arr[down.path.len() - 1].map(|a| a - t);
        match (swept, jump_total) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Basic travel cost query ignoring shortcuts (TD-basic's scalar mode).
    pub fn cost_basic(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.cost_basic_with(&mut CostScratch::default(), s, d, t)
    }

    /// Basic travel cost query reusing `scratch`.
    // td-lint: hot
    pub fn cost_basic_with(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        if s == d {
            return Some(0.0);
        }
        let CostScratch { up, down, .. } = scratch;
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        self.sweep_up_scalar_into(s, t, &[], None, up);
        self.sweep_down_scalar_into(d, &up.arr, upto, t, None, down);
        debug_assert_eq!(down.arr.len(), down.path.len());
        down.arr[down.path.len() - 1].map(|a| a - t)
    }

    // ------------------------------------------------------------------
    // Profile (cost function) queries
    // ------------------------------------------------------------------

    /// Upward function sweep from `s` (Algo. 3 lines 1-10) into `bufs`:
    /// `cost[k]` = `f_{s, path[k]}(t)` for every root-path vertex. `seeds`
    /// carries shortcut functions (exact, skipped by relaxation per Algo. 6
    /// line 15); `bound` enables NIL pruning (Algo. 6 line 20).
    pub(crate) fn sweep_up_profile_into(
        &self,
        s: VertexId,
        seeds: &[(usize, Plf)],
        bound: Option<&Plf>,
        bufs: &mut ProfileSweepBufs,
    ) {
        self.root_path_into(s, &mut bufs.path);
        let ds = bufs.path.len() - 1;
        bufs.reset(ds + 1);
        for (k, f) in seeds {
            bufs.cost[*k] = Some(f.clone());
            bufs.fixed[*k] = true;
        }
        let bound_max = bound.map(|b| b.max_value());
        for k in (0..=ds).rev() {
            // At processing time cost[k] is final: NIL-prune it (Algo. 6
            // line 20) when it can never beat the shortcut bound anywhere.
            let mut cur_min = 0.0; // the endpoint's own label is the zero function
            if k != ds {
                let Some(f) = &bufs.cost[k] else { continue };
                let fmin = f.min_value();
                if let Some(bm) = bound_max {
                    if fmin > bm {
                        bufs.cost[k] = None; // NIL
                        continue;
                    }
                }
                cur_min = fmin;
            }
            let node = self.td.node(bufs.path[k]);
            let slot0 = self.frozen.map(|fz| fz.range(bufs.path[k]).start);
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(ws) = &node.ws[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                if bufs.fixed[ku] {
                    continue;
                }
                // Edge-level prune (same argument as the slot NIL): the
                // compound's minimum is ≥ min(cost[k]) + min(ws); when that
                // clears the bound's maximum, every propagated value loses
                // the final combination against the bound. The frozen arena
                // serves the edge minimum in O(1); without it, scanning ws is
                // still far cheaper than the compound it avoids.
                if let Some(bm) = bound_max {
                    let ws_min = match (self.frozen, slot0) {
                        (Some(fz), Some(lo)) => fz.ws_min(lo + bi),
                        _ => ws.min_value(),
                    };
                    if cur_min + ws_min > bm {
                        continue;
                    }
                }
                let cand = if k == ds {
                    ws.clone() // line 2: cost_s[u] ← X(s).Ws_u
                } else {
                    bufs.cost[k]
                        .as_ref()
                        .expect("checked above")
                        .compound(ws, bufs.path[k])
                };
                min_into(&mut bufs.cost[ku], cand);
            }
        }
    }

    /// Upward *reverse* function sweep towards `d` into `bufs`: `cost[k]` =
    /// `f_{path[k], d}(t)` (Algo. 3 line 11 "repeat for cost_d").
    pub(crate) fn sweep_up_profile_rev_into(
        &self,
        d: VertexId,
        seeds: &[(usize, Plf)],
        bound: Option<&Plf>,
        bufs: &mut ProfileSweepBufs,
    ) {
        self.root_path_into(d, &mut bufs.path);
        let dd = bufs.path.len() - 1;
        bufs.reset(dd + 1);
        for (k, f) in seeds {
            bufs.cost[*k] = Some(f.clone());
            bufs.fixed[*k] = true;
        }
        let bound_max = bound.map(|b| b.max_value());
        for k in (0..=dd).rev() {
            let mut cur_min = 0.0;
            if k != dd {
                let Some(f) = &bufs.cost[k] else { continue };
                let fmin = f.min_value();
                if let Some(bm) = bound_max {
                    if fmin > bm {
                        bufs.cost[k] = None; // NIL
                        continue;
                    }
                }
                cur_min = fmin;
            }
            let node = self.td.node(bufs.path[k]);
            let slot0 = self.frozen.map(|fz| fz.range(bufs.path[k]).start);
            for (bi, &u) in node.bag.iter().enumerate() {
                let Some(wd) = &node.wd[bi] else { continue };
                let ku = self.td.node(u).depth as usize;
                if bufs.fixed[ku] {
                    continue;
                }
                // Mirror of the up-sweep's edge-level prune.
                if let Some(bm) = bound_max {
                    let wd_min = match (self.frozen, slot0) {
                        (Some(fz), Some(lo)) => fz.wd_min(lo + bi),
                        _ => wd.min_value(),
                    };
                    if cur_min + wd_min > bm {
                        continue;
                    }
                }
                let cand = if k == dd {
                    wd.clone()
                } else {
                    wd.compound(bufs.cost[k].as_ref().expect("checked above"), bufs.path[k])
                };
                min_into(&mut bufs.cost[ku], cand);
            }
        }
    }

    /// Cost function query `f_{s,d}(t)` — Algo. 6 (falls back to Algo. 3
    /// when no shortcut covers the cut).
    pub fn profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.profile_with(&mut ProfileScratch::default(), s, d)
    }

    /// Cost function query reusing `scratch`'s sweep tables and seed lists.
    pub fn profile_with(
        &self,
        scratch: &mut ProfileScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let ProfileScratch {
            up,
            down,
            cut,
            seeds_s,
            seeds_d,
        } = scratch;
        let x = self.td.vertex_cut_into(s, d, cut);

        // Collect shortcut functions over the cut.
        let mut full_cover = true;
        seeds_s.clear();
        seeds_d.clear();
        let mut bound: Option<Plf> = None;
        for &w in cut.iter() {
            let kw = self.td.node(w).depth as usize;
            let up_f: Option<Option<Plf>> = if w == s {
                Some(Some(Plf::zero()))
            } else {
                self.store.get(s, w).map(|(up, _)| up.clone())
            };
            let down_f: Option<Option<Plf>> = if w == d {
                Some(Some(Plf::zero()))
            } else {
                self.store.get(d, w).map(|(_, down)| down.clone())
            };
            if up_f.is_none() || down_f.is_none() {
                full_cover = false;
            }
            if let Some(Some(f)) = &up_f {
                if w != s {
                    seeds_s.push((kw, f.clone()));
                }
            }
            if let Some(Some(f)) = &down_f {
                if w != d {
                    seeds_d.push((kw, f.clone()));
                }
            }
            if let (Some(Some(fu)), Some(Some(fd))) = (&up_f, &down_f) {
                let total = if w == s {
                    fd.clone()
                } else if w == d {
                    fu.clone()
                } else {
                    fu.compound(fd, w)
                };
                min_into(&mut bound, total);
            }
        }

        if full_cover {
            // Situation (1): combine shortcuts directly (lines 1-2).
            return bound;
        }

        // Situations (2)/(3): pruned sweeps + combination over the common
        // ancestor chain.
        let upto = self.td.node(x).depth as usize;
        self.sweep_up_profile_into(s, seeds_s, bound.as_ref(), up);
        self.sweep_up_profile_rev_into(d, seeds_d, bound.as_ref(), down);
        let mut result: Option<Plf> = bound;
        combine_over_chain(&up.path, &up.cost, &down.cost, upto, s, d, &mut result);
        result
    }

    /// Basic cost function query (Algo. 3, no shortcuts).
    pub fn profile_basic(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.profile_basic_with(&mut ProfileScratch::default(), s, d)
    }

    /// Basic cost function query reusing `scratch`.
    pub fn profile_basic_with(
        &self,
        scratch: &mut ProfileScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let ProfileScratch { up, down, .. } = scratch;
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        self.sweep_up_profile_into(s, &[], None, up);
        self.sweep_up_profile_rev_into(d, &[], None, down);
        let mut result: Option<Plf> = None;
        combine_over_chain(&up.path, &up.cost, &down.cost, upto, s, d, &mut result);
        result
    }
}

/// Combines the two sweep tables over the common-ancestor chain (every
/// vertex at depth `0..=upto`, shared by both root paths).
///
/// The chain — rather than just the LCA cut — is required for exactness with
/// *sweep* values: the sweeps compute order-monotone ("up-edge only") costs,
/// and the apex of the shortest path (where up switches to down) is some
/// common ancestor, possibly above the cut. The cut `{x} ∪ bag(x)` is a
/// subset of the chain, so Property 1's combination is subsumed. (With
/// *exact* shortcut functions, the cut alone suffices — that is situation (1)
/// of Algo. 6.)
#[allow(clippy::too_many_arguments)]
fn combine_over_chain(
    path_s: &[VertexId],
    cost_s: &[Option<Plf>],
    cost_d: &[Option<Plf>],
    upto: usize,
    s: VertexId,
    d: VertexId,
    result: &mut Option<Plf>,
) {
    for (k, &w) in path_s.iter().enumerate().take(upto + 1) {
        let term = if w == s {
            cost_d.get(k).cloned().flatten()
        } else if w == d {
            cost_s.get(k).cloned().flatten()
        } else {
            match (
                cost_s.get(k).and_then(|o| o.as_ref()),
                cost_d.get(k).and_then(|o| o.as_ref()),
            ) {
                (Some(a), Some(b)) => Some(a.compound(b, w)),
                _ => None,
            }
        };
        if let Some(f) = term {
            min_into(result, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::{build_all, ShortcutStore};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::{profile_search, shortest_path_cost};
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    fn probe_times() -> Vec<f64> {
        (0..10).map(|k| k as f64 * DAY / 10.0 + 13.0).collect()
    }

    #[test]
    fn basic_scalar_query_matches_dijkstra() {
        for seed in 0..6u64 {
            let n = 35;
            let g = seeded_graph(seed, n, 25, 3);
            let td = TreeDecomposition::build(&g);
            let store = ShortcutStore::empty(n);
            let engine = QueryEngine::new(&td, &store);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
            for _ in 0..40 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let got = engine.cost_basic(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-5,
                        "seed={seed} s={s} d={d} t={t}: dijkstra {a} vs index {b}"
                    ),
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d} t={t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn basic_profile_query_matches_profile_search() {
        for seed in 0..4u64 {
            let n = 28;
            let g = seeded_graph(seed, n, 18, 3);
            let td = TreeDecomposition::build(&g);
            let store = ShortcutStore::empty(n);
            let engine = QueryEngine::new(&td, &store);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
            for _ in 0..8 {
                let s = rng.gen_range(0..n) as u32;
                let prof = profile_search(&g, s);
                for _ in 0..4 {
                    let d = rng.gen_range(0..n) as u32;
                    let got = engine.profile_basic(s, d);
                    match (&prof.dist[d as usize], &got) {
                        (Some(want), Some(got)) => {
                            for t in probe_times() {
                                assert!(
                                    (want.eval(t) - got.eval(t)).abs() < 1e-5,
                                    "seed={seed} s={s} d={d} t={t}: {} vs {}",
                                    want.eval(t),
                                    got.eval(t)
                                );
                            }
                        }
                        (None, None) => {}
                        other => {
                            panic!(
                                "seed={seed} s={s} d={d}: {:?}",
                                other.1.as_ref().map(|_| ())
                            )
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn full_shortcut_queries_match_basic() {
        // With ALL shortcuts (TD-H2H mode) every query is situation (1); the
        // answers must agree with the basic sweeps.
        for seed in 0..4u64 {
            let n = 30;
            let g = seeded_graph(seed, n, 20, 3);
            let td = TreeDecomposition::build(&g);
            let full = build_all(&td, 2);
            let none = ShortcutStore::empty(n);
            let fast = QueryEngine::new(&td, &full);
            let slow = QueryEngine::new(&td, &none);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..30 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let a = fast.cost(s, d, t);
                let b = slow.cost_basic(s, d, t);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert!(
                            (a - b).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: {a} vs {b}"
                        )
                    }
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                }
                let fa = fast.profile(s, d);
                let fb = slow.profile_basic(s, d);
                match (fa, fb) {
                    (Some(fa), Some(fb)) => {
                        for t in probe_times() {
                            assert!(
                                (fa.eval(t) - fb.eval(t)).abs() < 1e-5,
                                "seed={seed} s={s} d={d} t={t}"
                            );
                        }
                    }
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {:?}", other.0.map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        // The same CostScratch/ProfileScratch driven through many mixed
        // queries must answer exactly like per-call fresh scratch.
        for seed in 0..3u64 {
            let n = 32;
            let g = seeded_graph(seed, n, 22, 3);
            let td = TreeDecomposition::build(&g);
            let full = build_all(&td, 2);
            let none = ShortcutStore::empty(n);
            for store in [&none, &full] {
                let engine = QueryEngine::new(&td, store);
                let mut cost_scratch = CostScratch::default();
                let mut profile_scratch = ProfileScratch::default();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
                for _ in 0..60 {
                    let s = rng.gen_range(0..n) as u32;
                    let d = rng.gen_range(0..n) as u32;
                    let t = rng.gen_range(0.0..DAY);
                    assert_eq!(
                        engine.cost_with(&mut cost_scratch, s, d, t),
                        engine.cost(s, d, t),
                        "seed={seed} s={s} d={d} t={t}"
                    );
                    assert_eq!(
                        engine.cost_basic_with(&mut cost_scratch, s, d, t),
                        engine.cost_basic(s, d, t),
                        "seed={seed} s={s} d={d} t={t}"
                    );
                    let a = engine.profile_with(&mut profile_scratch, s, d);
                    let b = engine.profile(s, d);
                    match (a, b) {
                        (Some(a), Some(b)) => {
                            for t in probe_times() {
                                assert!((a.eval(t) - b.eval(t)).abs() < 1e-9);
                            }
                        }
                        (None, None) => {}
                        other => panic!("seed={seed} s={s} d={d}: {:?}", other.0.map(|_| ())),
                    }
                }
            }
        }
    }

    #[test]
    fn frozen_engine_matches_legacy_layout() {
        // The frozen CSR/arena sweeps and the TreeNode-layout sweeps must
        // answer identically, with and without shortcuts.
        for seed in 0..4u64 {
            let n = 32;
            let g = seeded_graph(seed, n, 22, 3);
            let td = TreeDecomposition::build(&g);
            let frozen = crate::frozen::FrozenTd::build(&td);
            let full = build_all(&td, 2);
            let none = ShortcutStore::empty(n);
            for store in [&none, &full] {
                let legacy = QueryEngine::new(&td, store);
                let fast = QueryEngine::with_frozen(&td, store, &frozen);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
                for _ in 0..40 {
                    let s = rng.gen_range(0..n) as u32;
                    let d = rng.gen_range(0..n) as u32;
                    let t = rng.gen_range(0.0..DAY);
                    match (legacy.cost(s, d, t), fast.cost(s, d, t)) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "seed={seed} s={s} d={d} t={t}")
                        }
                        (None, None) => {}
                        other => panic!("seed={seed} s={s} d={d} t={t}: {other:?}"),
                    }
                    match (legacy.cost_basic(s, d, t), fast.cost_basic(s, d, t)) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-9, "seed={seed} s={s} d={d} t={t}")
                        }
                        (None, None) => {}
                        other => panic!("seed={seed} s={s} d={d} t={t}: {other:?}"),
                    }
                    match (legacy.profile(s, d), fast.profile(s, d)) {
                        (Some(a), Some(b)) => {
                            for t in probe_times() {
                                assert!(
                                    (a.eval(t) - b.eval(t)).abs() < 1e-6,
                                    "seed={seed} s={s} d={d} t={t}"
                                );
                            }
                        }
                        (None, None) => {}
                        other => {
                            panic!("seed={seed} s={s} d={d}: {:?}", other.0.map(|_| ()))
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn self_query_is_zero() {
        let g = seeded_graph(1, 10, 6, 3);
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(10);
        let engine = QueryEngine::new(&td, &store);
        assert_eq!(engine.cost_basic(3, 3, 100.0), Some(0.0));
        assert_eq!(engine.cost(3, 3, 100.0), Some(0.0));
        assert_eq!(engine.profile_basic(3, 3).unwrap().eval(5.0), 0.0);
    }

    #[test]
    fn ancestor_descendant_queries_work() {
        // Queries where X(s) is an ancestor of X(d) exercise the degenerate
        // cut = {s} ∪ bag(s) case.
        let g = seeded_graph(4, 25, 15, 3);
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(25);
        let engine = QueryEngine::new(&td, &store);
        let mut checked = 0;
        for v in 0..25u32 {
            for a in td.ancestors_root_first(v) {
                for t in [0.0, DAY / 3.0, DAY / 2.0] {
                    let want = shortest_path_cost(&g, a, v, t);
                    let got = engine.cost_basic(a, v, t);
                    match (want, got) {
                        (Some(x), Some(y)) => {
                            assert!((x - y).abs() < 1e-5, "a={a} v={v} t={t}: {x} vs {y}")
                        }
                        (None, None) => {}
                        other => panic!("a={a} v={v}: {other:?}"),
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn unreachable_returns_none() {
        use td_graph::TdGraph;
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 0, Plf::constant(1.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        g.add_edge(3, 2, Plf::constant(1.0)).unwrap();
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(4);
        let engine = QueryEngine::new(&td, &store);
        assert_eq!(engine.cost_basic(0, 3, 0.0), None);
        assert!(engine.profile_basic(0, 3).is_none());
        assert_eq!(engine.cost(0, 3, 0.0), None);
    }
}
