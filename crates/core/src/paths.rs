//! Shortest-path recovery.
//!
//! Def. 2 requires the intermediate vertex to be recorded in every compound
//! function; this module turns those witnesses back into a full vertex path.
//!
//! Recovery is two-level:
//!
//! 1. the *sweep level*: the scalar query tracks, per root-path vertex, which
//!    (node, bag entry) relaxation achieved its earliest arrival;
//! 2. the *function level*: each hop used a stored weight function
//!    `X(v).Ws_u` / `X(v).Wd_u` whose witnesses are elimination bridges
//!    (Algo. 1). [`expand_pair`] unfolds one hop recursively: a witness `m`
//!    splits `i → j` into `i → m` (= `X(m).Wd_i`) and `m → j` (= `X(m).Ws_j`),
//!    both recorded at `X(m)` because `i, j ∈ X(m)` when `m` was eliminated.
//!    `NO_VIA` terminates at an original edge.
//!
//! Recovery always runs on the basic sweeps (shortcut functions may reference
//! sub-shortcuts that were not selected); shortcuts accelerate costs, not
//! path extraction.

use crate::query::{CostScratch, QueryEngine};
use td_graph::{Path, VertexId};
use td_plf::{Plf, NO_VIA};
use td_treedec::TreeDecomposition;

/// Expands the stored function `f` for the pair `from → to` at departure
/// time `t`, appending all intermediate vertices and `to` itself to `out`.
/// Returns the travel cost of the expanded segment.
pub fn expand_pair(
    td: &TreeDecomposition,
    from: VertexId,
    to: VertexId,
    f: &Plf,
    t: f64,
    out: &mut Vec<VertexId>,
) -> f64 {
    let (cost, via) = f.eval_with_via(t);
    if via == NO_VIA {
        out.push(to);
        return cost;
    }
    let m = via;
    let node = td.node(m);
    let pos_from = td
        .bag_position(m, from)
        .expect("witness bridge must contain both endpoints");
    let pos_to = td
        .bag_position(m, to)
        .expect("witness bridge must contain both endpoints");
    let f1 = node.wd[pos_from]
        .as_ref()
        .expect("witnessed direction must exist");
    let f2 = node.ws[pos_to]
        .as_ref()
        .expect("witnessed direction must exist");
    let c1 = expand_pair(td, from, m, f1, t, out);
    let c2 = expand_pair(td, m, to, f2, t + c1, out);
    c1 + c2
}

impl QueryEngine<'_> {
    /// Travel cost *and* shortest path for `Q(s, d, t)`.
    ///
    /// Runs the basic scalar sweeps with predecessor tracking, then unfolds
    /// each hop's stored function through [`expand_pair`].
    pub fn cost_with_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.cost_with_path_in(&mut CostScratch::default(), s, d, t)
    }

    /// [`QueryEngine::cost_with_path`] reusing `scratch`'s sweep buffers.
    /// The returned [`Path`] is freshly allocated (it is the result), but the
    /// sweep tables are reused across calls.
    pub fn cost_with_path_in(
        &self,
        scratch: &mut CostScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        if s == d {
            return Some((0.0, Path::new(vec![s])));
        }
        let x = self.td.lca(s, d);
        let upto = self.td.node(x).depth as usize;
        self.sweep_up_scalar_into(s, t, &[], None, &mut scratch.up);
        self.sweep_down_scalar_into(d, &scratch.up.arr, upto, t, None, &mut scratch.down);
        let (up, down) = (&scratch.up, &scratch.down);
        let dd = down.path.len() - 1;
        let arrival = down.arr[dd]?;

        // Hops on d's path, walked backwards while a down-relaxation won;
        // the walk ends at the vertex whose up-sweep arrival was used (the
        // join with s's path, always on the common prefix).
        let mut hops_d: Vec<(usize, usize, usize)> = Vec::new(); // (from_k, to_k, bag idx)
        let mut k = dd;
        while let Some((ku, bi)) = down.pred[k] {
            hops_d.push((ku, k, bi));
            k = ku;
        }
        let join_depth = k;
        debug_assert!(join_depth <= upto || join_depth == dd && upto >= dd);

        // Hops on s's path from the join vertex back down to s.
        let ds = up.path.len() - 1;
        let mut hops_s: Vec<(usize, usize, usize)> = Vec::new(); // (from_k deeper, to_k, bag idx)
        let mut k = join_depth;
        while k != ds {
            let (kv, bi) = up.pred[k]?;
            hops_s.push((kv, k, bi));
            k = kv;
        }

        // Emit: s → … → join → … → d.
        let mut vertices = vec![s];
        let mut now = t;
        for &(kv, kt, bi) in hops_s.iter().rev() {
            let v = up.path[kv];
            let u = up.path[kt];
            let node = self.td.node(v);
            let f = node.ws[bi].as_ref().expect("used by the sweep");
            now += expand_pair(self.td, v, u, f, now, &mut vertices);
        }
        for &(ku, kt, bi) in hops_d.iter().rev() {
            let u = down.path[ku];
            let v = down.path[kt];
            let node = self.td.node(v);
            let f = node.wd[bi].as_ref().expect("used by the sweep");
            now += expand_pair(self.td, u, v, f, now, &mut vertices);
        }
        debug_assert!(
            (now - arrival).abs() < 1e-6,
            "expanded path cost {} disagrees with query arrival {}",
            now - t,
            arrival - t
        );
        Some((arrival - t, Path::new(vertices)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortcut::ShortcutStore;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn recovered_paths_are_valid_and_cost_exactly_the_reported_value() {
        for seed in 0..6u64 {
            let n = 30;
            let g = seeded_graph(seed, n, 20, 3);
            let td = TreeDecomposition::build(&g);
            let store = ShortcutStore::empty(n);
            let engine = QueryEngine::new(&td, &store);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
            for _ in 0..30 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                match engine.cost_with_path(s, d, t) {
                    Some((cost, path)) => {
                        assert_eq!(path.source(), s);
                        assert_eq!(path.destination(), d);
                        assert!(path.is_valid(&g), "seed={seed} invalid path {path}");
                        let replay = path.cost(&g, t).expect("valid path replays");
                        assert!(
                            (replay - cost).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: reported {cost} vs replay {replay}"
                        );
                        let want = shortest_path_cost(&g, s, d, t).expect("reachable");
                        assert!(
                            (want - cost).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: not shortest ({cost} vs {want})"
                        );
                    }
                    None => {
                        assert!(shortest_path_cost(&g, s, d, t).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_paths() {
        let g = seeded_graph(2, 12, 8, 3);
        let td = TreeDecomposition::build(&g);
        let store = ShortcutStore::empty(12);
        let engine = QueryEngine::new(&td, &store);
        let (c, p) = engine.cost_with_path(5, 5, 10.0).unwrap();
        assert_eq!(c, 0.0);
        assert_eq!(p.vertices, vec![5]);
    }
}
