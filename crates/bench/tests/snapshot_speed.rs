//! Acceptance check for the snapshot subsystem's whole reason to exist:
//! restarting from a CAL snapshot must be far cheaper than rebuilding.
//!
//! Two configurations, deliberately different in character:
//!
//! * **TD-appro** (the paper's index): construction runs the full
//!   `O(n·h)` candidate weigh pass — every pair's exact travel-cost
//!   function is computed — then stores only the budget-bounded selection,
//!   so the build is compute-bound while the snapshot stays small. Loading
//!   must be **≥ 10×** faster than building; in practice it is 50–100×.
//! * **TD-H2H** (the full-label baseline): at this synthetic scale the
//!   builder streams out labels at memory bandwidth (~output-bound), and a
//!   checksummed load moves the same hundreds of megabytes back in, so the
//!   wall-clock gap narrows toward the machine's bandwidth ratio. The
//!   snapshot must still answer **bit-identically** and load measurably
//!   faster than the build (a conservative ≥ 1.5× is asserted; the real
//!   ratio is printed).
//!
//! Meaningful timings need optimized code, so the assertions only run in
//! release builds (`cargo test --release -p td-bench --test snapshot_speed`,
//! as the CI snapshot job does); a debug run skips early instead of
//! reporting a meaningless ratio.

use td_api::{build_index, load_index, save_index, Backend, IndexConfig, RoutingIndex};
use td_bench::timed;
use td_gen::Dataset;

struct Measured {
    build_secs: f64,
    load_secs: f64,
}

fn measure(backend: Backend, scale: f64) -> Measured {
    let spec = Dataset::Cal.spec();
    let graph = spec.build_scaled(3, scale, 42);
    let n = graph.num_vertices();

    let cfg = IndexConfig {
        budget: spec.budget_at(scale) as u64,
        ..Default::default()
    };
    let (index, build_secs) = timed(|| build_index(graph, backend, &cfg));

    let dir = std::env::temp_dir().join("td-road-snapshot-speed");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("cal-{backend}-{}.tdx", std::process::id()));
    let (_, save_secs) = timed(|| save_index(index.as_ref(), &path).expect("save"));

    // Best of three loads (the second+ hit the warm page cache, like any
    // restarting service re-reading a recently written snapshot).
    let mut load_secs = f64::INFINITY;
    let mut loaded: Option<Box<dyn RoutingIndex>> = None;
    for _ in 0..3 {
        let (l, s) = timed(|| load_index(&path).expect("load"));
        load_secs = load_secs.min(s);
        loaded = Some(l);
    }
    let loaded = loaded.expect("three loads ran");
    std::fs::remove_file(&path).ok();

    // The loaded index answers bit-identically.
    for (s, d, t) in [
        (0u32, (n - 1) as u32, 8.0 * 3600.0),
        (3, (n / 2) as u32, 100.0),
        ((n - 5) as u32, 7, 70_000.0),
    ] {
        assert_eq!(
            index.query_cost(s, d, t).map(f64::to_bits),
            loaded.query_cost(s, d, t).map(f64::to_bits),
            "{backend} s={s} d={d} t={t}"
        );
    }

    eprintln!(
        "CAL {backend} (|V|={n}): build {build_secs:.3}s, save {save_secs:.3}s, \
         load {load_secs:.4}s — {:.0}x",
        build_secs / load_secs
    );
    Measured {
        build_secs,
        load_secs,
    }
}

#[test]
fn loading_cal_td_appro_is_10x_faster_than_building() {
    if cfg!(debug_assertions) {
        eprintln!("snapshot_speed: skipped in debug builds (timing assertion needs --release)");
        return;
    }
    let m = measure(Backend::TdAppro, 1.0);
    assert!(
        m.build_secs >= 10.0 * m.load_secs,
        "load must be >= 10x faster than build: build {:.3}s vs load {:.4}s ({:.1}x)",
        m.build_secs,
        m.load_secs,
        m.build_secs / m.load_secs
    );
}

#[test]
fn loading_cal_td_h2h_beats_building_bit_identically() {
    if cfg!(debug_assertions) {
        eprintln!("snapshot_speed: skipped in debug builds (timing assertion needs --release)");
        return;
    }
    let m = measure(Backend::TdH2h, 0.5);
    assert!(
        m.build_secs >= 1.5 * m.load_secs,
        "load must beat the (bandwidth-bound) full-label build: build {:.3}s vs load {:.4}s \
         ({:.1}x)",
        m.build_secs,
        m.load_secs,
        m.build_secs / m.load_secs
    );
}
