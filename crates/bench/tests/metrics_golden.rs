//! The scrape's metric-name set is a public interface: dashboards and
//! alerts key on these names. This golden test pins the `# TYPE` lines of
//! the process-wide catalog against the committed `crates/bench/metrics.txt`
//! — CI additionally diffs a real `tdx stats` scrape of the CAL snapshot
//! artifact against the same file, so the names cannot drift silently in
//! either direction. The catalog pre-registers every family, so the name
//! set is independent of which code paths a workload exercised.

/// The `"name kind"` pairs of every `# TYPE` line, sorted.
fn type_lines(scrape: &str) -> Vec<String> {
    let mut out: Vec<String> = scrape
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(str::to_string)
        .collect();
    out.sort();
    out
}

#[test]
fn scrape_metric_names_match_committed_golden() {
    let golden = include_str!("../metrics.txt");
    let want: Vec<String> = golden.lines().map(str::to_string).collect();
    let got = type_lines(&td_obs::metrics().registry.render_prometheus());
    assert_eq!(
        got, want,
        "metric-name set drifted from crates/bench/metrics.txt; \
         if the change is intentional, regenerate the golden with\n  \
         cargo run -p td-bench --bin tdx -- stats <any.tdx> | \
         grep '^# TYPE' | awk '{{print $3, $4}}' | sort > crates/bench/metrics.txt"
    );
}

#[test]
fn scrape_is_deterministically_ordered() {
    let a = td_obs::metrics().registry.render_prometheus();
    let names_a = type_lines(&a);
    let b = td_obs::metrics().registry.render_prometheus();
    assert_eq!(names_a, type_lines(&b), "family order is not stable");
    // Families arrive sorted by name.
    let mut sorted = names_a.clone();
    sorted.sort();
    assert_eq!(names_a, sorted);
}
