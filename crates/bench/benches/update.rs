//! Index-update benchmarks (Fig. 10 family, micro scale): batched edge
//! weight updates against a support-tracked TD-appro index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::random_graph::random_profile;
use td_gen::Dataset;

fn bench_updates(criterion: &mut Criterion) {
    let g = Dataset::Sf.spec().build_scaled(3, 0.02, 42); // ~200 vertices
    let budget = Dataset::Sf.spec().budget_at(0.02) as u64;
    let mut group = criterion.benchmark_group("update");
    group.sample_size(10);
    for batch in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("edges", batch), &batch, |b, &batch| {
            b.iter_batched(
                || {
                    let index = TdTreeIndex::build(
                        g.clone(),
                        IndexOptions {
                            strategy: SelectionStrategy::Greedy { budget },
                            threads: 1,
                            track_supports: true,
                        },
                    );
                    let mut rng = StdRng::seed_from_u64(batch as u64);
                    let m = g.num_edges();
                    let changes: Vec<_> = (0..batch)
                        .map(|_| {
                            let e = rng.gen_range(0..m) as u32;
                            let edge = g.edge(e);
                            (edge.from, edge.to, random_profile(&mut rng, 3, 5.0, 500.0))
                        })
                        .collect();
                    (index, changes)
                },
                |(mut index, changes)| index.update_edges(&changes),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
