//! Budget-checkpoint overhead gate: the same exact TD-A\*-CH query path
//! with (A) the frozen unbounded entry point versus (B) the bounded entry
//! point carrying a huge-but-finite [`QueryBudget`] (settle cap + far
//! deadline, so both checkpoint branches stay live and nothing degrades),
//! on the CAL-sized medium network.
//!
//! Timings are interleaved (one A rep, one B rep, repeat) so thermal and
//! scheduler drift cancels. Before timing, every query is cross-checked
//! **bit-identically** between the two entry points, and the bounded path
//! is asserted to perform **zero** heap allocations per query on a warmed
//! scratch — the budget lives in two registers, not in memory.
//!
//! Acceptance bar (ISSUE 7): the bounded path costs ≤ 2% over the frozen
//! unbounded path. A miss warns loudly by default; set BUDGET_ASSERT=1 to
//! make it fatal (quiet perf-regression gate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use td_api::{AStarChIndex, AStarChScratch, ParallelExecutor};
use td_dijkstra::{BoundedCost, QueryBudget};
use td_gen::Dataset;
use td_plf::DAY;
use td_server::{FaultPlan, HostileIndex};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// contract (layout validity, pointer provenance) is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's layout/size.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Interleaved A/B timing: mean ns per rep of each side after a warm-up.
fn compare2(mut a: impl FnMut(), mut b: impl FnMut(), budget_ms: u128) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb, mut reps) = (0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        reps += 1;
    }
    let r = reps as f64;
    (ta as f64 / r, tb as f64 / r)
}

fn bench_budget_overhead(criterion: &mut Criterion) {
    let g = Dataset::Cal.spec().build_scaled(3, 1.0, 42); // ~5.2k vertices
    let n = g.num_vertices();
    let index = AStarChIndex::new(g);

    let mut rng = StdRng::seed_from_u64(7);
    let qs: Vec<(u32, u32, f64)> = (0..64)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();

    // Huge but *finite* budget: both checkpoint branches (settle compare +
    // strided clock read) stay live, and no query degrades.
    let budget = QueryBudget::settles(u64::MAX / 2).with_timeout(Duration::from_secs(3600));

    // Correctness gate before any timing: bounded == unbounded, bit for bit.
    let mut sc_a = AStarChScratch::default();
    let mut sc_b = AStarChScratch::default();
    for &(s, d, t) in &qs {
        let want = index.query_cost_with(&mut sc_a, s, d, t);
        match index.query_cost_bounded_with(&mut sc_b, s, d, t, &budget) {
            BoundedCost::Exact(got) => assert_eq!(
                got.map(f64::to_bits),
                want.map(f64::to_bits),
                "s={s} d={d} t={t}"
            ),
            other => panic!("s={s} d={d} t={t}: huge budget degraded to {other:?}"),
        }
    }

    // Allocation gate: zero allocations per bounded query on warm scratch.
    let per_query = allocs(|| {
        for &(s, d, t) in &qs {
            black_box(index.query_cost_bounded_with(&mut sc_b, s, d, t, &budget));
        }
    }) as f64
        / qs.len() as f64;
    println!("allocations/query (bounded, warmed scratch): {per_query:.2}");
    assert_eq!(
        per_query, 0.0,
        "budget checkpoints must not add allocations to the query path"
    );

    // Post-panic allocation gate: a panicked slot's scratch is sanitized
    // in place during containment itself (generation stamps make the torn
    // state unreachable; the warmed capacity survives), so the first clean
    // batch *after* a panic storm allocates exactly what a clean batch
    // always allocates — recovery is not a slow path.
    {
        let _quiet = td_server::silence_contained_panics();
        let plan = FaultPlan {
            seed: 0xa110c,
            panic_per_million: 500_000,
            transient_panics: false,
            ..FaultPlan::none()
        };
        let g = Dataset::Cal.spec().build_scaled(1, 1.0, 43);
        let pn = g.num_vertices();
        let hostile = HostileIndex::new(AStarChIndex::new(g), &plan);
        let mut clean_qs: Vec<(u32, u32, f64)> = Vec::new();
        let mut hot_qs: Vec<(u32, u32, f64)> = Vec::new();
        for _ in 0..512 {
            let q = (
                rng.gen_range(0..pn) as u32,
                rng.gen_range(0..pn) as u32,
                rng.gen_range(0.0..DAY),
            );
            if hostile.would_fault(q.0, q.1, q.2) {
                if hot_qs.len() < 8 {
                    hot_qs.push(q);
                }
            } else if clean_qs.len() < 32 {
                clean_qs.push(q);
            }
        }
        assert!(!hot_qs.is_empty() && clean_qs.len() == 32);
        let mut exec = ParallelExecutor::new(&hostile, 1);
        // Warm the executor's scratch pool, then take the clean baseline.
        black_box(exec.query_batch_bounded(&clean_qs, &budget));
        black_box(exec.query_batch_bounded(&clean_qs, &budget));
        let baseline = allocs(|| {
            black_box(exec.query_batch_bounded(&clean_qs, &budget));
        });
        // The storm: every one of these slots panics (persistent faults)
        // and the worker's scratch is replaced + pre-warmed in place.
        black_box(exec.query_batch_bounded(&hot_qs, &budget));
        let post = allocs(|| {
            black_box(exec.query_batch_bounded(&clean_qs, &budget));
        });
        println!("allocations/clean-batch: baseline {baseline}, post-panic {post}");
        assert_eq!(
            post, baseline,
            "post-panic batches must not allocate beyond the clean baseline"
        );
    }

    // Interleaved overhead measurement over the whole workload.
    let (ta, tb) = compare2(
        || {
            for &(s, d, t) in &qs {
                black_box(index.query_cost_with(&mut sc_a, s, d, t));
            }
        },
        || {
            for &(s, d, t) in &qs {
                black_box(index.query_cost_bounded_with(&mut sc_b, s, d, t, &budget));
            }
        },
        1_500,
    );
    let overhead = (tb - ta) / ta;
    println!(
        "unbounded {:.0} ns/batch, bounded {:.0} ns/batch, overhead {:+.2}%",
        ta,
        tb,
        overhead * 100.0
    );
    if overhead > 0.02 {
        let msg = format!(
            "budget checkpoints cost {:.2}% on the TD-A*-CH path (bar: <= 2%)",
            overhead * 100.0
        );
        if std::env::var_os("BUDGET_ASSERT").is_some() {
            panic!("{msg}");
        }
        eprintln!("WARNING: {msg}");
    }

    // Criterion visibility for trend tracking.
    let mut group = criterion.benchmark_group("budget_overhead");
    {
        let mut i = 0usize;
        group.bench_function("unbounded", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(index.query_cost_with(&mut sc_a, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("bounded_unlimited_headroom", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(index.query_cost_bounded_with(&mut sc_b, s, d, t, &budget))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_budget_overhead);
criterion_main!(benches);
