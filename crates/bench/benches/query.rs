//! Query benchmarks (Fig. 8 family, micro scale): scalar travel-cost and
//! cost-function queries per index on a small CAL analogue, plus the
//! TD-Dijkstra non-index baseline — and the same cost workload served as
//! multi-threaded batches through `ParallelExecutor`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use td_api::{ParallelExecutor, QuerySession};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_dijkstra::shortest_path_cost;
use td_gen::Dataset;
use td_gtree::{GtreeConfig, TdGtree};
use td_plf::DAY;

fn bench_queries(criterion: &mut Criterion) {
    let g = Dataset::Cal.spec().build_scaled(3, 0.06, 42); // ~310 vertices
    let n = g.num_vertices();
    let budget = Dataset::Cal.spec().budget_at(0.06) as u64;
    let basic = TdTreeIndex::build(g.clone(), IndexOptions::default());
    let appro = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            threads: 0,
            track_supports: false,
        },
    );
    let h2h = td_h2h::TdH2h::build(g.clone(), td_h2h::H2hConfig::default());
    let gtree = TdGtree::build(g.clone(), GtreeConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<(u32, u32, f64)> = (0..256)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();
    let mut i = 0usize;
    let mut next = move || {
        i = (i + 1) % 256;
        i
    };

    let mut group = criterion.benchmark_group("cost_query");
    group.bench_function("td_dijkstra", |b| {
        b.iter(|| {
            let (s, d, t) = queries[next()];
            black_box(shortest_path_cost(&g, s, d, t))
        })
    });
    group.bench_function("td_basic", |b| {
        b.iter(|| {
            let (s, d, t) = queries[next()];
            black_box(basic.query_cost_basic(s, d, t))
        })
    });
    group.bench_function("td_appro", |b| {
        b.iter(|| {
            let (s, d, t) = queries[next()];
            black_box(appro.query_cost(s, d, t))
        })
    });
    group.bench_function("td_h2h", |b| {
        b.iter(|| {
            let (s, d, t) = queries[next()];
            black_box(h2h.query_cost(s, d, t))
        })
    });
    group.bench_function("td_gtree", |b| {
        b.iter(|| {
            let (s, d, t) = queries[next()];
            black_box(gtree.query_cost(s, d, t))
        })
    });
    group.finish();

    let mut group = criterion.benchmark_group("profile_query");
    group.sample_size(20);
    group.bench_function("td_basic", |b| {
        b.iter(|| {
            let (s, d, _) = queries[next()];
            black_box(basic.query_profile_basic(s, d))
        })
    });
    group.bench_function("td_appro", |b| {
        b.iter(|| {
            let (s, d, _) = queries[next()];
            black_box(appro.query_profile(s, d))
        })
    });
    group.bench_function("td_h2h", |b| {
        b.iter(|| {
            let (s, d, _) = queries[next()];
            black_box(h2h.query_profile(s, d))
        })
    });
    group.bench_function("td_gtree", |b| {
        b.iter(|| {
            let (s, d, _) = queries[next()];
            black_box(gtree.query_profile(s, d))
        })
    });
    group.finish();

    // The same 256-query cost workload served as one batch: a warmed
    // single-thread session versus the session-pooled parallel executor.
    // Each iteration is a whole batch, so the lines are directly comparable
    // to each other (not to the per-query lines above).
    let mut group = criterion.benchmark_group("cost_query_batch");
    {
        let mut session = QuerySession::new(&appro);
        let mut out = Vec::new();
        group.bench_function("td_appro_session", |b| {
            b.iter(|| {
                session.query_many_into(queries.iter().copied(), &mut out);
                black_box(out.len())
            })
        });
    }
    for threads in [2usize, 4] {
        let mut exec = ParallelExecutor::new(&appro, threads);
        let mut out = Vec::new();
        group.bench_function(format!("td_appro_parallel_{threads}"), |b| {
            b.iter(|| {
                exec.query_batch_into(&queries, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
