//! Batched-PLF gates (ISSUE 8): two interleaved A/B comparisons.
//!
//! **Kernel**: repeated scalar [`PlfSlice::eval`] versus the batched
//! [`eval_times_into`] over sorted departure runs on a dense arena. Before
//! timing, every lane is cross-checked **bit-identically** against the
//! scalar entry point, and the kernel is asserted to perform **zero** heap
//! allocations per batch — it walks borrowed SoA slices only.
//!
//! **Corridor**: dense profile-search A/B on targeted `s → d` queries —
//! the unbounded one-to-all frozen search (today's only way to obtain an
//! `s → d` cost profile) versus [`profile_search_frozen_corridor_to`],
//! whose backward min-rail from `d` plus the forward `s → d` upper bound
//! kills whole off-corridor subgraphs at their entry edge. Answers are
//! cross-checked first via the conformance step-10 contract
//! (value-identical envelopes on the union probe grid), then timed
//! interleaved. One-to-all rail stats are reported alongside for context.
//!
//! Acceptance bar (ISSUE 8): corridor ≥ 1.3× on the dense profile
//! workload. A miss warns loudly by default; set PLF_BATCH_ASSERT=1 to
//! make it fatal (quiet perf-regression gate, like BUDGET_ASSERT).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use td_dijkstra::{
    profile_search_frozen, profile_search_frozen_corridor, profile_search_frozen_corridor_to,
};
use td_gen::random_graph::{random_profile, seeded_graph};
use td_plf::{eval_times_into, PlfArena, DAY};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// contract (layout validity, pointer provenance) is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's layout/size.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Interleaved A/B timing: mean ns per rep of each side after a warm-up.
fn compare2(mut a: impl FnMut(), mut b: impl FnMut(), budget_ms: u128) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb, mut reps) = (0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        reps += 1;
    }
    let r = reps as f64;
    (ta as f64 / r, tb as f64 / r)
}

/// Loud-by-default perf gate, fatal under PLF_BATCH_ASSERT=1.
fn gate(msg: String) {
    if std::env::var_os("PLF_BATCH_ASSERT").is_some() {
        panic!("{msg}");
    }
    eprintln!("WARNING: {msg}");
}

fn bench_plf_batch(criterion: &mut Criterion) {
    // ---- Kernel A/B: repeated eval vs eval_times_into -------------------
    let mut rng = StdRng::seed_from_u64(17);
    let mut arena = PlfArena::new();
    let nf = 512usize;
    for _ in 0..nf {
        arena.push(&random_profile(&mut rng, 24, 5.0, 500.0));
    }
    // One sorted departure run per function (hint-chained fast path). Dense
    // runs — many departures per segment — are the kernel's target regime
    // (customization sweeps and border-matrix batches), and where the
    // lane-width loops engage.
    let run_len = 512usize;
    let mut runs: Vec<Vec<f64>> = (0..nf)
        .map(|_| {
            let mut ts: Vec<f64> = (0..run_len)
                .map(|_| rng.gen_range(-1000.0..DAY + 1000.0))
                .collect();
            ts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            ts
        })
        .collect();
    // A couple of unsorted runs keep the fallback path honest too.
    runs[0].reverse();
    runs[1].swap(3, 40);

    // Correctness gate before any timing: batched == scalar, bit for bit.
    let mut out = vec![0.0f64; run_len];
    for (id, ts) in runs.iter().enumerate() {
        let s = arena.slice(id as u32);
        eval_times_into(s, ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            assert_eq!(
                got.to_bits(),
                s.eval(t).to_bits(),
                "kernel diverges at id={id} t={t}"
            );
        }
    }

    // Allocation gate: the kernel touches no heap at all.
    let kernel_allocs = allocs(|| {
        for (id, ts) in runs.iter().enumerate() {
            eval_times_into(arena.slice(id as u32), ts, &mut out);
            black_box(&out);
        }
    });
    println!("allocations/batch (kernel, {nf} batches): {kernel_allocs}");
    assert_eq!(kernel_allocs, 0, "batch kernel must not allocate");

    let mut out_b = vec![0.0f64; run_len];
    let (ta, tb) = compare2(
        || {
            for (id, ts) in runs.iter().enumerate() {
                let s = arena.slice(id as u32);
                for (o, &t) in out.iter_mut().zip(ts) {
                    *o = s.eval(t);
                }
                black_box(&out);
            }
        },
        || {
            for (id, ts) in runs.iter().enumerate() {
                eval_times_into(arena.slice(id as u32), ts, &mut out_b);
                black_box(&out_b);
            }
        },
        800,
    );
    println!(
        "kernel: scalar {:.0} ns/sweep, batched {:.0} ns/sweep, speedup {:.2}x",
        ta,
        tb,
        ta / tb
    );

    // ---- Corridor A/B: targeted s→d profile queries ---------------------
    // Correctness gate on the *adversarial* generator first: fully random
    // profiles spanning [5, 500] (≈100× per-edge min/max spread) make the
    // scalar rails as loose as they can get — the shape that flushes out
    // soundness bugs, reusing the conformance step-10 contract verbatim
    // (value-identical envelopes on the union probe grid, one-to-all AND
    // targeted).
    {
        let adversarial = seeded_graph(42, 160, 1200, 6);
        let q: Vec<(u32, u32, f64)> = (0..8u32)
            .map(|i| (i * 19 % 160, (i * 53 + 80) % 160, 0.0))
            .collect();
        td_api::conformance::check_corridor_profiles(&adversarial, &q);
    }

    // Timing runs on the *road-like* generator — the paper's structural band
    // (m/n ≈ 2.4, grid + arterials) with daily congestion profiles whose
    // per-edge spread is ≤ peak × noise ≈ 2.2×. Bounded relative amplitude
    // is the regime corridor pruning targets (and what real travel-time
    // functions look like); the adversarial 100× spread above deliberately
    // defeats scalar rails and is kept for correctness only.
    let net = td_gen::RoadNetwork::generate(&td_gen::RoadNetworkConfig {
        rows: 24,
        cols: 24,
        ..Default::default()
    });
    let g = td_gen::profiles::apply_profiles(
        &net,
        &td_gen::ProfileConfig {
            points_per_edge: 6,
            ..Default::default()
        },
    );
    let fg = g.freeze();
    let n = g.num_vertices() as u32;
    // Spread s across the grid, d roughly diagonal-opposite: long queries.
    let pairs: Vec<(u32, u32)> = (0..8u32)
        .map(|i| (i * 73 % n, (n - 1 + i * 41) % n))
        .collect();
    let queries: Vec<(u32, u32, f64)> = pairs.iter().map(|&(s, d)| (s, d, 0.0)).collect();
    td_api::conformance::check_corridor_profiles(&g, &queries);
    let (mut skipped, mut relaxed) = (0u64, 0u64);
    let (mut t_skipped, mut t_relaxed) = (0u64, 0u64);
    for &(s, d) in &pairs {
        let (_, stats) = profile_search_frozen_corridor(&g, &fg, s);
        skipped += stats.skipped;
        relaxed += stats.relaxed;
        let (_, stats) = profile_search_frozen_corridor_to(&g, &fg, s, d);
        t_skipped += stats.skipped;
        t_relaxed += stats.relaxed;
    }
    println!(
        "corridor rails (one-to-all): skipped {skipped} / {} compounds ({:.1}%)",
        skipped + relaxed,
        100.0 * skipped as f64 / (skipped + relaxed) as f64
    );
    println!(
        "corridor targeted (s → d):   skipped {t_skipped} / {} compounds ({:.1}%)",
        t_skipped + t_relaxed,
        100.0 * t_skipped as f64 / (t_skipped + t_relaxed) as f64
    );

    let (tu, tc) = compare2(
        || {
            for &(s, d) in &pairs {
                let r = profile_search_frozen(&g, &fg, s);
                black_box(&r.dist[d as usize]);
            }
        },
        || {
            for &(s, d) in &pairs {
                black_box(profile_search_frozen_corridor_to(&g, &fg, s, d));
            }
        },
        2_000,
    );
    let speedup = tu / tc;
    println!(
        "profile s→d: unbounded {:.2} ms/batch, corridor {:.2} ms/batch, speedup {:.2}x",
        tu / 1e6,
        tc / 1e6,
        speedup
    );
    if speedup < 1.3 {
        gate(format!(
            "corridor profile search speedup {speedup:.2}x below the 1.3x bar"
        ));
    }

    // Criterion visibility for trend tracking.
    let mut group = criterion.benchmark_group("plf_batch");
    {
        let mut i = 0usize;
        group.bench_function("kernel_batched_sweep", |b| {
            b.iter(|| {
                i = (i + 1) % runs.len();
                eval_times_into(arena.slice(i as u32), &runs[i], &mut out_b);
                black_box(&out);
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("corridor_profile_search", |b| {
            b.iter(|| {
                i = (i + 1) % pairs.len();
                let (s, d) = pairs[i];
                black_box(profile_search_frozen_corridor_to(&g, &fg, s, d))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plf_batch);
criterion_main!(benches);
