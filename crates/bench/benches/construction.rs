//! Construction benchmarks (Fig. 9 family, micro scale): tree decomposition
//! (Algo. 2) and index construction per strategy on a small CAL analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::Dataset;
use td_treedec::TreeDecomposition;

fn bench_construction(criterion: &mut Criterion) {
    let g = Dataset::Cal.spec().build_scaled(3, 0.04, 42); // ~200 vertices
    let budget = Dataset::Cal.spec().budget_at(0.04) as u64;
    let mut group = criterion.benchmark_group("construction");
    group.sample_size(10);
    group.bench_function("tree_decomposition", |b| {
        b.iter(|| TreeDecomposition::build(&g))
    });
    group.bench_function("td_basic", |b| {
        b.iter(|| TdTreeIndex::build(g.clone(), IndexOptions::default()))
    });
    group.bench_function("td_appro", |b| {
        b.iter(|| {
            TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy: SelectionStrategy::Greedy { budget },
                    threads: 1,
                    track_supports: false,
                },
            )
        })
    });
    group.bench_function("td_h2h_full_label", |b| {
        b.iter(|| {
            TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy: SelectionStrategy::All,
                    threads: 1,
                    track_supports: false,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
