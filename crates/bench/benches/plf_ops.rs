//! Micro-benchmarks of the PLF algebra: `eval`, `Compound` (Def. 2) and
//! `minimum`, across interpolation-point counts — the constant `c` of every
//! complexity bound in the paper.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use td_gen::random_graph::random_profile;
use td_plf::NO_VIA;

fn bench_plf(criterion: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = criterion.benchmark_group("plf_ops");
    for points in [4usize, 16, 64, 256] {
        let f = random_profile(&mut rng, points, 50.0, 500.0);
        let g = random_profile(&mut rng, points, 50.0, 500.0);
        group.bench_with_input(BenchmarkId::new("eval", points), &points, |b, _| {
            b.iter(|| black_box(f.eval(black_box(43_210.0))))
        });
        group.bench_with_input(BenchmarkId::new("compound", points), &points, |b, _| {
            b.iter(|| black_box(f.compound(&g, NO_VIA)))
        });
        group.bench_with_input(BenchmarkId::new("minimum", points), &points, |b, _| {
            b.iter(|| black_box(f.minimum(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plf);
criterion_main!(benches);
