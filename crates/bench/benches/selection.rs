//! Shortcut-selection benchmarks (Algo. 4 vs Algo. 5) across instance sizes
//! — the construction-side trade-off behind Fig. 9 and §5.4.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use td_core::select::{select_dp, select_greedy};
use td_core::Candidate;

fn instance(n: usize, seed: u64) -> (Vec<Candidate>, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Candidate> = (0..n)
        .map(|_| Candidate {
            node: 0,
            ancestor: 0,
            utility: rng.gen_range(0.1..100.0),
            weight: rng.gen_range(1..60),
        })
        .collect();
    let total: u64 = items.iter().map(|c| c.weight as u64).sum();
    (items, total / 3)
}

fn bench_selection(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("selection");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 50_000] {
        let (items, budget) = instance(n, 9);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| black_box(select_greedy(&items, budget)))
        });
        group.bench_with_input(BenchmarkId::new("dp_scaled", n), &n, |b, _| {
            // Bucketed DP with a ~2000-cell row, as used at large budgets.
            let scale = (budget / 2_000).max(1) as u32;
            b.iter(|| black_box(select_dp(&items, budget, scale)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
