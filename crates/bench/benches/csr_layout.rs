//! Old-vs-new layout micro-bench: the same algorithms on the pointer-chasing
//! `Vec<Vec<..>>` + `Vec<Plf>` representation and on the frozen CSR/arena
//! representation (`FrozenGraph` / `FrozenTd`), on td-gen networks.
//!
//! Timings are interleaved (one A rep, one B rep, repeat) so thermal and
//! scheduler drift cancels instead of biasing whichever side runs second.
//! Four comparisons, each printed as a speedup ratio before the criterion
//! timings (the ratios are what CHANGES.md records):
//!
//! * scalar TD-Dijkstra `s → d` queries on the CAL-sized medium network, at
//!   `c = 3` and `c = 6` points per edge;
//! * profile search on a dense compound-heavy graph — the shape of
//!   TD-G-tree's `all_pairs` matrix builder, where the min/max label bounds
//!   prune hardest;
//! * TD-tree scalar sweeps (`cost_basic`) through `QueryEngine` with and
//!   without the frozen label view.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use td_core::{FrozenTd, QueryEngine};
use td_dijkstra::{
    profile_search, profile_search_frozen, shortest_path_cost_frozen_with, shortest_path_cost_with,
    DijkstraScratch,
};
use td_gen::random_graph::seeded_graph;
use td_gen::Dataset;
use td_plf::DAY;
use td_treedec::TreeDecomposition;

fn queries(n: usize, count: usize, seed: u64) -> Vec<(u32, u32, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect()
}

/// Interleaved A/B timing: mean ns per rep of each side after a warm-up rep.
fn compare(mut a: impl FnMut(), mut b: impl FnMut(), budget_ms: u128) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb, mut reps) = (0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        reps += 1;
    }
    (ta as f64 / reps as f64, tb as f64 / reps as f64)
}

fn bench_csr_layout(criterion: &mut Criterion) {
    // ---- Scalar Dijkstra on the medium (CAL-sized) network ----
    let mut dijkstra_ratios = Vec::new();
    for c in [3usize, 6] {
        let g = Dataset::Cal.spec().build_scaled(c, 1.0, 42); // ~5.2k vertices
        let fg = g.freeze();
        let n = g.num_vertices();
        let qs = queries(n, 64, 7);
        let mut sc_vec = DijkstraScratch::default();
        let mut sc_csr = DijkstraScratch::default();
        let (vec_ns, csr_ns) = compare(
            || {
                for &(s, d, t) in &qs {
                    black_box(shortest_path_cost_with(&mut sc_vec, &g, s, d, t));
                }
            },
            || {
                for &(s, d, t) in &qs {
                    black_box(shortest_path_cost_frozen_with(&mut sc_csr, &fg, s, d, t));
                }
            },
            1500,
        );
        println!(
            "scalar dijkstra (n={n}, c={c}): vec {:.0} ns/q, csr {:.0} ns/q, speedup {:.2}x",
            vec_ns / qs.len() as f64,
            csr_ns / qs.len() as f64,
            vec_ns / csr_ns
        );
        dijkstra_ratios.push(vec_ns / csr_ns);
    }

    // ---- Profile search on a dense compound-heavy graph ----
    let gd = seeded_graph(1, 80, 60, 4);
    let fgd = gd.freeze();
    let sources: Vec<u32> = (0..8).map(|i| i * 9).collect();
    let (prof_vec_ns, prof_csr_ns) = compare(
        || {
            for &s in &sources {
                black_box(profile_search(&gd, s));
            }
        },
        || {
            for &s in &sources {
                black_box(profile_search_frozen(&gd, &fgd, s));
            }
        },
        2000,
    );
    println!(
        "profile search dense (n={}): vec {:.2} ms/src, csr {:.2} ms/src, speedup {:.2}x",
        gd.num_vertices(),
        prof_vec_ns / 1e6 / sources.len() as f64,
        prof_csr_ns / 1e6 / sources.len() as f64,
        prof_vec_ns / prof_csr_ns
    );

    // ---- TD-tree scalar sweeps: legacy TreeNode layout vs FrozenTd ----
    let gt = Dataset::Cal.spec().build_scaled(3, 0.25, 42); // ~1.3k vertices
    let nt = gt.num_vertices();
    let td = TreeDecomposition::build(&gt);
    let frozen = FrozenTd::build(&td);
    let store = td_core::shortcut::ShortcutStore::empty(nt);
    let legacy = QueryEngine::new(&td, &store);
    let fast = QueryEngine::with_frozen(&td, &store, &frozen);
    let qt = queries(nt, 128, 11);
    let mut cs_vec = td_core::CostScratch::default();
    let mut cs_csr = td_core::CostScratch::default();
    let (tree_vec_ns, tree_csr_ns) = compare(
        || {
            for &(s, d, t) in &qt {
                black_box(legacy.cost_basic_with(&mut cs_vec, s, d, t));
            }
        },
        || {
            for &(s, d, t) in &qt {
                black_box(fast.cost_basic_with(&mut cs_csr, s, d, t));
            }
        },
        1500,
    );
    let tree_ratio = tree_vec_ns / tree_csr_ns;
    println!(
        "td-tree scalar sweeps (n={nt}): vec {:.0} ns/q, frozen {:.0} ns/q, speedup {:.2}x",
        tree_vec_ns / qt.len() as f64,
        tree_csr_ns / qt.len() as f64,
        tree_ratio
    );

    // Acceptance bar: the frozen layout should win where its layout matters
    // most (the sweep loop is pure label evaluation) and at least break even
    // on the heap-dominated Dijkstra workload. Timing on a shared machine is
    // noisy, so a miss warns loudly by default; set CSR_LAYOUT_ASSERT=1 (as
    // a quiet perf-regression gate) to make it fatal.
    let healthy = tree_ratio > 1.0 && dijkstra_ratios.iter().all(|&r| r > 0.9);
    if !healthy {
        let msg = format!(
            "csr_layout below the acceptance bar: td-tree {tree_ratio:.3}x, \
             dijkstra {dijkstra_ratios:?} — rerun on an idle machine"
        );
        if std::env::var_os("CSR_LAYOUT_ASSERT").is_some() {
            panic!("{msg}");
        }
        println!("WARNING: {msg}");
    }

    // ---- Criterion timings for the record ----
    let g = Dataset::Cal.spec().build_scaled(3, 1.0, 42);
    let fg = g.freeze();
    let qs = queries(g.num_vertices(), 64, 7);
    let mut group = criterion.benchmark_group("csr_layout");
    {
        let mut i = 0usize;
        let mut sc = DijkstraScratch::default();
        group.bench_function("dijkstra_vec_plf", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(shortest_path_cost_with(&mut sc, &g, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        let mut sc = DijkstraScratch::default();
        group.bench_function("dijkstra_csr_arena", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(shortest_path_cost_frozen_with(&mut sc, &fg, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        let mut sc = td_core::CostScratch::default();
        group.bench_function("tdtree_scalar_vec", |b| {
            b.iter(|| {
                i = (i + 1) % qt.len();
                let (s, d, t) = qt[i];
                black_box(legacy.cost_basic_with(&mut sc, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        let mut sc = td_core::CostScratch::default();
        group.bench_function("tdtree_scalar_frozen", |b| {
            b.iter(|| {
                i = (i + 1) % qt.len();
                let (s, d, t) = qt[i];
                black_box(fast.cost_basic_with(&mut sc, s, d, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csr_layout);
criterion_main!(benches);
