//! Fault-injection soak gate for the serving front-end.
//!
//! Runs the time-boxed soak harness twice on the same network — once
//! fault-free (the baseline), once under the full [`FaultPlan`] (1%
//! injected worker panics, periodic lock poisoning, slow consumers,
//! live-update storms with invalid batches, deadline storms) — and checks
//! the robustness claims:
//!
//! * **exactly-once** (always fatal): every admitted request got one
//!   terminal reply; no duplicates; no hung client — under both runs.
//! * **typed rejection latency** and **accepted-request p99 bound**
//!   (fatal under `SOAK_ASSERT=1`, loud warnings otherwise): rejections
//!   stay O(µs)-grade and the faulted p99 stays within a fixed multiple of
//!   the fault-free baseline, floored against 1-core CI noise.

use std::time::Duration;

use td_api::AStarChIndex;
use td_gen::Dataset;
use td_server::{run_soak, FaultPlan, ServerConfig, SoakConfig, SoakReport};

/// Accepted-request p99 may not exceed `baseline p99 × 10` (with the
/// baseline floored at 2 ms so a microsecond-fast baseline on a tiny
/// network cannot make the multiple unsatisfiable on a noisy shared core).
const P99_MULTIPLE: f64 = 10.0;
const P99_FLOOR_NANOS: u64 = 2_000_000;

/// A rejected submit must return in well under this (generous for a debug
/// CI box; the real path is two atomic loads and a refused queue push).
const REJECT_P99_CAP_NANOS: u64 = 10_000_000;

fn report(tag: &str, r: &SoakReport) {
    let s = &r.stats;
    println!(
        "{tag}: admitted {} rejected {} replied {} dup {} | exact {} approx {} failed {} \
         | shed_expired {} retries {} batches {} | updates applied {} retried {} shed {} \
         | p99 {:.3} ms, reject p99 {:.3} ms, hung {}",
        s.admitted,
        s.rejected,
        s.replied,
        s.duplicates,
        s.exact,
        s.approximate,
        s.failed,
        s.shed_expired,
        s.retries,
        s.batches,
        s.updates_applied,
        s.update_retries,
        s.updates_shed,
        r.p99_nanos as f64 / 1e6,
        r.reject_p99_nanos as f64 / 1e6,
        r.hung,
    );
}

fn gate(msg: String, fatal: bool) {
    if fatal {
        panic!("{msg}");
    }
    eprintln!("WARNING: {msg}");
}

fn main() {
    let fatal = std::env::var_os("SOAK_ASSERT").is_some();

    let server_cfg = ServerConfig::default();
    let soak = SoakConfig {
        duration: Duration::from_millis(1500),
        clients: 4,
        burst: 16,
        ..SoakConfig::default()
    };

    let baseline = run_soak(
        AStarChIndex::new(Dataset::Cal.spec().build_scaled(1, 1.0, 42)),
        server_cfg,
        &SoakConfig {
            plan: FaultPlan::none(),
            ..soak
        },
    );
    report("baseline", &baseline);
    assert!(
        baseline.exactly_once(),
        "fault-free soak broke exactly-once: {baseline:?}"
    );
    assert!(baseline.stats.admitted > 0, "baseline generated no load");

    let faulted = run_soak(
        AStarChIndex::new(Dataset::Cal.spec().build_scaled(1, 1.0, 42)),
        server_cfg,
        &SoakConfig {
            plan: FaultPlan::full(0x7d5e_ed01),
            ..soak
        },
    );
    report("full-plan", &faulted);

    // The invariants are invariants: fatal regardless of SOAK_ASSERT.
    assert!(
        faulted.exactly_once(),
        "faulted soak broke exactly-once (or hung): {faulted:?}"
    );
    assert!(faulted.stats.admitted > 0, "faulted soak generated no load");
    assert!(
        faulted.rejected_observed > 0,
        "full plan produced no typed rejections — the deadline storm never bit"
    );
    assert!(
        faulted.stats.updates_applied > 0,
        "update storm applied nothing — the live lane never ran"
    );

    // Perf-shaped claims gate behind SOAK_ASSERT like BUDGET_ASSERT does.
    if faulted.reject_p99_nanos > REJECT_P99_CAP_NANOS {
        gate(
            format!(
                "rejected submits took p99 {:.3} ms (cap {:.3} ms)",
                faulted.reject_p99_nanos as f64 / 1e6,
                REJECT_P99_CAP_NANOS as f64 / 1e6,
            ),
            fatal,
        );
    }
    let bound = (baseline.p99_nanos.max(P99_FLOOR_NANOS) as f64 * P99_MULTIPLE) as u64;
    if faulted.p99_nanos > bound {
        gate(
            format!(
                "faulted accepted-request p99 {:.3} ms exceeds {}x baseline bound {:.3} ms",
                faulted.p99_nanos as f64 / 1e6,
                P99_MULTIPLE,
                bound as f64 / 1e6,
            ),
            fatal,
        );
    }
    println!(
        "soak gate: ok (p99 {:.3} ms <= bound {:.3} ms)",
        faulted.p99_nanos as f64 / 1e6,
        bound as f64 / 1e6
    );
}
