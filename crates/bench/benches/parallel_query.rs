//! Parallel serving bench: `ParallelExecutor::query_batch` versus the
//! single-threaded `QuerySession` baseline on the medium generated network.
//!
//! Timings are interleaved (one baseline batch, one parallel batch, repeat)
//! so thermal and scheduler drift cancels. Three things are measured and
//! printed before the criterion lines:
//!
//! * thread scaling: batch throughput at 1/2/4/8 workers relative to the
//!   session baseline (the acceptance bar is ≥ 2x at 4 workers, asserted
//!   when the machine actually has ≥ 4 cores);
//! * allocation discipline: on warmed worker scratches with a reused output
//!   buffer, growing the batch must not grow the allocation count — i.e.
//!   **zero allocations per query** in every worker, exactly like the
//!   single-threaded session (a fixed per-batch cost for the scoped spawns
//!   remains and is printed).
//!
//! Both sides run through `dyn RoutingIndex` dispatch — the form a server
//! actually holds (`Box`/`Arc<dyn RoutingIndex>`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use td_api::{build_index, Backend, IndexConfig, ParallelExecutor, QuerySession, RoutingIndex};
use td_gen::Dataset;
use td_plf::DAY;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// contract (layout validity, pointer provenance) is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's layout/size.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Interleaved A/B timing: mean ns per rep of each side after a warm-up rep.
fn compare(mut a: impl FnMut(), mut b: impl FnMut(), budget_ms: u128) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb, mut reps) = (0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        reps += 1;
    }
    (ta as f64 / reps as f64, tb as f64 / reps as f64)
}

fn bench_parallel_query(criterion: &mut Criterion) {
    // The medium CAL analogue (~1.6k vertices) — big enough that a batch
    // dwarfs the scoped-spawn overhead, small enough to build quickly.
    let g = Dataset::Cal.spec().build_scaled(3, 0.3, 42);
    let n = g.num_vertices();
    let budget = Dataset::Cal.spec().budget_at(0.3) as u64;
    let index: Box<dyn RoutingIndex> = build_index(
        g,
        Backend::TdAppro,
        &IndexConfig {
            budget,
            ..Default::default()
        },
    );
    let index = index.as_ref();
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<(u32, u32, f64)> = (0..4096)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "medium network: {n} vertices, batch {} queries, {cores} cores",
        queries.len()
    );

    // ---- Allocation discipline on warmed workers ----
    let mut exec = ParallelExecutor::new(index, 4);
    let mut out = Vec::new();
    let half = &queries[..queries.len() / 2];
    exec.query_batch_into(&queries, &mut out); // warm scratches + buffer
    exec.query_batch_into(half, &mut out);
    let full_allocs = allocs(|| exec.query_batch_into(&queries, &mut out));
    let half_allocs = allocs(|| exec.query_batch_into(half, &mut out));
    let marginal = full_allocs.saturating_sub(half_allocs);
    println!(
        "allocations: full batch {full_allocs}, half batch {half_allocs} \
         (fixed spawn cost), marginal for {} extra queries: {marginal}",
        queries.len() / 2
    );
    assert!(
        marginal <= 8,
        "warmed workers must not allocate per query (got {marginal} over {} queries)",
        queries.len() / 2
    );

    // ---- Thread scaling, interleaved against the session baseline ----
    let mut session = QuerySession::new(index);
    let mut session_out = Vec::new();
    session.query_many_into(queries.iter().copied(), &mut session_out);
    let mut speedup_at_4 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut exec = ParallelExecutor::new(index, threads);
        let mut out = Vec::new();
        exec.query_batch_into(&queries, &mut out);
        let (base_ns, par_ns) = compare(
            || {
                session.query_many_into(queries.iter().copied(), &mut session_out);
                black_box(&session_out);
            },
            || {
                exec.query_batch_into(&queries, &mut out);
                black_box(&out);
            },
            600,
        );
        let speedup = base_ns / par_ns;
        if threads == 4 {
            speedup_at_4 = speedup;
        }
        println!(
            "scaling: {threads} workers {:>10.0} ns/batch vs session {:>10.0} ns/batch — {speedup:.2}x",
            par_ns, base_ns
        );
    }
    if cores >= 4 {
        assert!(
            speedup_at_4 >= 2.0,
            "4 workers on {cores} cores must be ≥ 2x the single-thread session \
             (got {speedup_at_4:.2}x)"
        );
    } else {
        println!("(≥ 2x @ 4 workers assertion skipped: only {cores} cores available)");
    }

    // ---- Criterion record ----
    let mut group = criterion.benchmark_group("parallel_query");
    {
        let mut session = QuerySession::new(index);
        let mut out = Vec::new();
        group.bench_function("session_batch", |b| {
            b.iter(|| {
                session.query_many_into(queries.iter().copied(), &mut out);
                black_box(out.len())
            })
        });
    }
    for threads in [2usize, 4] {
        let mut exec = ParallelExecutor::new(index, threads);
        let mut out = Vec::new();
        group.bench_function(format!("executor_{threads}_threads"), |b| {
            b.iter(|| {
                exec.query_batch_into(&queries, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_query);
criterion_main!(benches);
