//! Telemetry overhead gate: the same exact TD-A\*-CH query path with (A)
//! the plain [`RoutingIndex::query_cost_in`] entry point versus (B) the
//! traced entry point — [`RoutingIndex::query_cost_traced_in`] plus a full
//! [`td_obs::Metrics::record_query`] export — on the CAL-sized medium
//! network.
//!
//! Timings are interleaved (one A rep, one B rep, repeat) so thermal and
//! scheduler drift cancels. Before timing, every query is cross-checked
//! **bit-identically** between the two entry points, and the traced path is
//! asserted to perform **zero** heap allocations per query on a warmed
//! scratch — counters are scratch-resident `u64`s and the export is relaxed
//! atomics onto pre-registered families.
//!
//! Acceptance bar (ISSUE 9): tracing + export costs ≤ 2% over the plain
//! path. A miss warns loudly by default; set OBS_ASSERT=1 to make it fatal
//! (quiet perf-regression gate). Build with `--features obs-disabled` to
//! prove the compiled-out layer benches within noise as well.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use td_api::{AStarChIndex, RoutingIndex, SessionScratch};
use td_gen::Dataset;
use td_plf::DAY;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// contract (layout validity, pointer provenance) is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's layout/size.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Interleaved A/B timing: mean ns per rep of each side after a warm-up.
fn compare2(mut a: impl FnMut(), mut b: impl FnMut(), budget_ms: u128) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb, mut reps) = (0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        reps += 1;
    }
    let r = reps as f64;
    (ta as f64 / r, tb as f64 / r)
}

fn bench_obs_overhead(criterion: &mut Criterion) {
    let g = Dataset::Cal.spec().build_scaled(3, 1.0, 42); // ~5.2k vertices
    let n = g.num_vertices();
    let index = AStarChIndex::new(g);

    let mut rng = StdRng::seed_from_u64(7);
    let qs: Vec<(u32, u32, f64)> = (0..64)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();

    // Force catalog registration outside the timed/counted regions.
    let metrics = td_obs::metrics();

    // Correctness gate before any timing: traced == plain, bit for bit, and
    // (when the layer is compiled in) the trace actually carries counters.
    let mut sc_a = SessionScratch::none();
    let mut sc_b = SessionScratch::none();
    for &(s, d, t) in &qs {
        let want = index.query_cost_in(&mut sc_a, s, d, t);
        let (got, trace) = index.query_cost_traced_in(&mut sc_b, s, d, t);
        assert_eq!(
            got.map(f64::to_bits),
            want.map(f64::to_bits),
            "s={s} d={d} t={t}"
        );
        if td_obs::ENABLED && want.is_some() {
            assert!(trace.stats.settled > 0, "s={s} d={d} t={t}: empty trace");
            assert!(trace.nanos > 0, "s={s} d={d} t={t}: no latency");
        }
    }

    // Allocation gate: zero allocations per traced-and-exported query on a
    // warmed scratch and a registered catalog.
    let per_query = allocs(|| {
        for &(s, d, t) in &qs {
            let (cost, trace) = index.query_cost_traced_in(&mut sc_b, s, d, t);
            metrics.record_query(0, &trace);
            black_box(cost);
        }
    }) as f64
        / qs.len() as f64;
    println!("allocations/query (traced + exported, warmed scratch): {per_query:.2}");
    assert_eq!(
        per_query, 0.0,
        "telemetry must not add allocations to the query path"
    );

    // Interleaved overhead measurement over the whole workload.
    let (ta, tb) = compare2(
        || {
            for &(s, d, t) in &qs {
                black_box(index.query_cost_in(&mut sc_a, s, d, t));
            }
        },
        || {
            for &(s, d, t) in &qs {
                let (cost, trace) = index.query_cost_traced_in(&mut sc_b, s, d, t);
                metrics.record_query(0, &trace);
                black_box(cost);
            }
        },
        1_500,
    );
    let overhead = (tb - ta) / ta;
    println!(
        "plain {:.0} ns/batch, traced {:.0} ns/batch, overhead {:+.2}%",
        ta,
        tb,
        overhead * 100.0
    );
    if overhead > 0.02 {
        let msg = format!(
            "telemetry costs {:.2}% on the TD-A*-CH path (bar: <= 2%)",
            overhead * 100.0
        );
        if std::env::var_os("OBS_ASSERT").is_some() {
            panic!("{msg}");
        }
        eprintln!("WARNING: {msg}");
    }

    // Criterion visibility for trend tracking.
    let mut group = criterion.benchmark_group("obs_overhead");
    {
        let mut i = 0usize;
        group.bench_function("plain", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(index.query_cost_in(&mut sc_a, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("traced_exported", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                let (cost, trace) = index.query_cost_traced_in(&mut sc_b, s, d, t);
                metrics.record_query(0, &trace);
                black_box(cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
