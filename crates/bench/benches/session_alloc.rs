//! Session-reuse micro-bench: per-query heap allocations and throughput of
//! repeated scalar queries, with and without a `QuerySession`, under both
//! static and `dyn RoutingIndex` dispatch.
//!
//! Documents the `td-api` overhead budget:
//! * a warmed session performs **zero** allocations per `query_cost` (the
//!   allocation counts are printed before the timing runs, and asserted);
//! * session reuse beats fresh per-call scratch on throughput (the
//!   acceptance bar is ≥ 20%);
//! * `dyn` dispatch through `Box<dyn RoutingIndex>` costs only the virtual
//!   call — it shares the same scratch machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use td_api::{build_index, Backend, IndexConfig, QuerySession, RoutingIndex, RoutingIndexExt};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::Dataset;
use td_plf::DAY;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump; every
// contract (layout validity, pointer provenance) is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.dealloc`; `ptr` came from this allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's layout/size.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn bench_session_alloc(criterion: &mut Criterion) {
    let g = Dataset::Cal.spec().build_scaled(3, 0.06, 42); // ~310 vertices
    let n = g.num_vertices();
    let budget = Dataset::Cal.spec().budget_at(0.06) as u64;
    let index = TdTreeIndex::build(
        g.clone(),
        IndexOptions {
            strategy: SelectionStrategy::Greedy { budget },
            threads: 0,
            track_supports: false,
        },
    );
    let boxed: Box<dyn RoutingIndex> = build_index(
        g,
        Backend::TdAppro,
        &IndexConfig {
            budget,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<(u32, u32, f64)> = (0..256)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect();

    // ---- Allocation accounting (printed, not timed) ----
    let per_call = allocs(|| {
        for &(s, d, t) in &queries {
            black_box(index.query_cost(s, d, t));
        }
    }) as f64
        / queries.len() as f64;

    let mut session = index.session();
    for &(s, d, t) in &queries {
        black_box(session.query_cost(s, d, t)); // warm the scratch buffers
    }
    let warmed = allocs(|| {
        for &(s, d, t) in &queries {
            black_box(session.query_cost(s, d, t));
        }
    }) as f64
        / queries.len() as f64;

    println!("allocations/query: fresh-per-call {per_call:.1}, warmed session {warmed:.1}");
    assert_eq!(
        warmed, 0.0,
        "QuerySession::query_cost must not allocate after warm-up"
    );

    // ---- Throughput ----
    let mut group = criterion.benchmark_group("session_alloc");
    {
        let mut i = 0usize;
        group.bench_function("fresh_per_call", |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                let (s, d, t) = queries[i];
                black_box(index.query_cost(s, d, t))
            })
        });
    }
    {
        let mut session = index.session();
        let mut i = 0usize;
        group.bench_function("session_static", |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                let (s, d, t) = queries[i];
                black_box(session.query_cost(s, d, t))
            })
        });
    }
    {
        let mut session: QuerySession<'_, dyn RoutingIndex> = QuerySession::new(boxed.as_ref());
        let mut i = 0usize;
        group.bench_function("session_dyn", |b| {
            b.iter(|| {
                i = (i + 1) % queries.len();
                let (s, d, t) = queries[i];
                black_box(session.query_cost(s, d, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_session_alloc);
criterion_main!(benches);
