//! Potential A/B micro-bench: the same exact TD-A\* forward search driven by
//! (A) the legacy full-backward-Dijkstra potential — O(n) setup per query —
//! versus (B) the lazy CH potential — one small backward upward search plus
//! memoized resolution — versus (C) plain frozen TD-Dijkstra with no goal
//! direction at all, on the CAL-sized medium network.
//!
//! Timings are interleaved (one A rep, one B rep, one C rep, repeat) so
//! thermal and scheduler drift cancels. Before timing, every query's answer
//! is cross-checked **bit-identically** across all three methods, and the
//! CH potential's per-query setup (vertices settled by the backward upward
//! search) is asserted to stay ≤ 5% of the graph.
//!
//! Acceptance bar (ISSUE 5): lazy CH-potential A\* ≥ 5x faster per query
//! than the full-potential baseline. A miss warns loudly by default; set
//! POTENTIALS_ASSERT=1 to make it fatal (quiet perf-regression gate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use td_ch::ContractionHierarchy;
use td_dijkstra::{
    astar_cost_frozen_with, shortest_path_cost_frozen_with, AStarScratch, ChPotential,
    ChPotentialScratch, DijkstraScratch, FullPotential, FullPotentialScratch,
};
use td_gen::Dataset;
use td_plf::DAY;

fn queries(n: usize, count: usize, seed: u64) -> Vec<(u32, u32, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect()
}

/// Interleaved A/B/C timing: mean ns per rep of each side after a warm-up.
fn compare3(
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    mut c: impl FnMut(),
    budget_ms: u128,
) -> (f64, f64, f64) {
    a();
    b();
    c();
    let (mut ta, mut tb, mut tc, mut reps) = (0u128, 0u128, 0u128, 0u64);
    let start = Instant::now();
    while start.elapsed().as_millis() < budget_ms {
        let s = Instant::now();
        a();
        ta += s.elapsed().as_nanos();
        let s = Instant::now();
        b();
        tb += s.elapsed().as_nanos();
        let s = Instant::now();
        c();
        tc += s.elapsed().as_nanos();
        reps += 1;
    }
    let r = reps as f64;
    (ta as f64 / r, tb as f64 / r, tc as f64 / r)
}

fn bench_potentials(criterion: &mut Criterion) {
    // The CAL-sized medium network, as in benches/csr_layout.rs.
    let g = Dataset::Cal.spec().build_scaled(3, 1.0, 42); // ~5.2k vertices
    let fg = g.freeze();
    let n = g.num_vertices();
    let t0 = Instant::now();
    let ch = ContractionHierarchy::build(&fg);
    println!(
        "CH over lower-bound metrics: n={n}, {} suffix windows, {} shortcuts, built in {:.2}s",
        ch.window_starts().len(),
        ch.num_shortcuts(),
        t0.elapsed().as_secs_f64()
    );

    let qs = queries(n, 64, 7);
    let mut full_sc = FullPotentialScratch::default();
    let mut ch_sc = ChPotentialScratch::default();
    let mut astar_a = AStarScratch::default();
    let mut astar_b = AStarScratch::default();
    let mut dj = DijkstraScratch::default();

    // Correctness + setup-size gate before any timing: all three methods
    // bit-identical, CH potential setup small.
    let mut max_settled = 0usize;
    for &(s, d, t) in &qs {
        let want = shortest_path_cost_frozen_with(&mut dj, &fg, s, d, t);
        let mut full = FullPotential::new(&fg, &mut full_sc);
        let got_full = astar_cost_frozen_with(&mut astar_a, &fg, &mut full, s, d, t);
        let mut lazy = ChPotential::new(&ch, &mut ch_sc);
        let got_ch = astar_cost_frozen_with(&mut astar_b, &fg, &mut lazy, s, d, t);
        max_settled = max_settled.max(ch_sc.last_init_settled());
        assert_eq!(
            want.map(f64::to_bits),
            got_full.map(f64::to_bits),
            "full-potential A* diverges at s={s} d={d} t={t}"
        );
        assert_eq!(
            want.map(f64::to_bits),
            got_ch.map(f64::to_bits),
            "CH-potential A* diverges at s={s} d={d} t={t}"
        );
    }
    let settled_pct = 100.0 * max_settled as f64 / n as f64;
    println!(
        "CH potential setup: ≤ {max_settled} of {n} vertices settled per query ({settled_pct:.2}%)"
    );
    assert!(
        settled_pct <= 5.0,
        "potential setup settles {settled_pct:.2}% of vertices (bar: 5%)"
    );

    let (full_ns, ch_ns, dj_ns) = compare3(
        || {
            for &(s, d, t) in &qs {
                let mut pot = FullPotential::new(&fg, &mut full_sc);
                black_box(astar_cost_frozen_with(&mut astar_a, &fg, &mut pot, s, d, t));
            }
        },
        || {
            for &(s, d, t) in &qs {
                let mut pot = ChPotential::new(&ch, &mut ch_sc);
                black_box(astar_cost_frozen_with(&mut astar_b, &fg, &mut pot, s, d, t));
            }
        },
        || {
            for &(s, d, t) in &qs {
                black_box(shortest_path_cost_frozen_with(&mut dj, &fg, s, d, t));
            }
        },
        3000,
    );
    let per_q = qs.len() as f64;
    let speedup_vs_full = full_ns / ch_ns;
    let speedup_vs_dijkstra = dj_ns / ch_ns;
    println!(
        "potentials (n={n}): full-pot A* {:.1} µs/q, lazy-CH A* {:.1} µs/q, plain dijkstra {:.1} µs/q",
        full_ns / 1e3 / per_q,
        ch_ns / 1e3 / per_q,
        dj_ns / 1e3 / per_q
    );
    println!(
        "lazy CH A* speedup: {speedup_vs_full:.2}x vs full-potential A*, \
         {speedup_vs_dijkstra:.2}x vs plain frozen dijkstra"
    );

    // Acceptance bar: ≥ 5x vs the O(n)-setup baseline. Timing on a shared
    // machine is noisy, so a miss warns loudly by default; set
    // POTENTIALS_ASSERT=1 to make it fatal.
    if speedup_vs_full < 5.0 {
        let msg = format!(
            "lazy CH potential below the acceptance bar: {speedup_vs_full:.2}x vs full \
             potential (bar: 5x) — rerun on an idle machine"
        );
        if std::env::var_os("POTENTIALS_ASSERT").is_some() {
            panic!("{msg}");
        }
        println!("WARNING: {msg}");
    }

    // ---- Criterion timings for the record ----
    let mut group = criterion.benchmark_group("potentials");
    {
        let mut i = 0usize;
        group.bench_function("astar_full_potential", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                let mut pot = FullPotential::new(&fg, &mut full_sc);
                black_box(astar_cost_frozen_with(&mut astar_a, &fg, &mut pot, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("astar_lazy_ch_potential", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                let mut pot = ChPotential::new(&ch, &mut ch_sc);
                black_box(astar_cost_frozen_with(&mut astar_b, &fg, &mut pot, s, d, t))
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("dijkstra_no_potential", |b| {
            b.iter(|| {
                i = (i + 1) % qs.len();
                let (s, d, t) = qs[i];
                black_box(shortest_path_cost_frozen_with(&mut dj, &fg, s, d, t))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_potentials);
criterion_main!(benches);
