#![forbid(unsafe_code)]
//! # td-bench — experiment harness and benchmarks
//!
//! One binary per table/figure of the paper (see DESIGN.md §3) plus Criterion
//! micro-benchmarks. Binaries print paper-style rows and write CSV files into
//! `results/`.

pub mod harness;
pub mod sweep;

pub use harness::*;
