//! Shared sweep machinery for the Fig. 8 / Fig. 9 experiments: build every
//! index for a (dataset, c) grid, measure query and construction metrics.

use crate::harness::{avg_micros, dp_scale, timed};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::{Dataset, Workload, WorkloadConfig};
use td_gtree::{GtreeConfig, TdGtree};
use td_h2h::TdH2h;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Interpolation points per edge.
    pub c: usize,
    /// Method name.
    pub method: &'static str,
    /// Average travel-cost query time, ms.
    pub cost_query_ms: f64,
    /// Average cost-function query time, ms.
    pub profile_query_ms: f64,
    /// Construction wall time, seconds.
    pub construction_s: f64,
    /// Index memory, bytes.
    pub memory_bytes: usize,
}

/// Which methods to run in a sweep cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// TD-G-tree baseline.
    Gtree,
    /// TD-H2H baseline.
    H2h,
    /// TD-basic (no shortcuts).
    Basic,
    /// TD-appro (Algo. 5 selection).
    Appro,
    /// TD-dp (Algo. 4 selection).
    Dp,
}

impl Method {
    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Gtree => "TD-G-tree",
            Method::H2h => "TD-H2H",
            Method::Basic => "TD-basic",
            Method::Appro => "TD-appro",
            Method::Dp => "TD-dp",
        }
    }
}

/// Builds and measures one (dataset, c, method) cell.
#[allow(clippy::too_many_arguments)] // experiment-grid parameters, used by binaries only
pub fn run_cell(
    dataset: Dataset,
    c: usize,
    method: Method,
    scale: f64,
    seed: u64,
    threads: usize,
    cost_queries: usize,
    profile_queries: usize,
    measure_queries: bool,
) -> SweepRow {
    let spec = dataset.spec();
    let g = spec.build_scaled(c, scale, seed);
    let n = g.num_vertices();
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: cost_queries.max(profile_queries).max(1),
            times_per_pair: 10,
            seed,
        },
    );
    let cost_wl = &wl.queries[..(cost_queries * 10).min(wl.queries.len())];
    let profile_pairs: Vec<_> = wl.pairs().into_iter().take(profile_queries).collect();
    let budget = spec.budget_at(scale) as u64;

    let (cost_ms, profile_ms, build_s, mem) = match method {
        Method::Gtree => {
            let (gt, build_s) = timed(|| TdGtree::build(g, GtreeConfig::default()));
            let (cq, pq) = if measure_queries {
                (
                    avg_micros(cost_wl, |q| {
                        gt.query_cost(q.source, q.destination, q.depart);
                    }),
                    avg_micros(&profile_pairs, |&(s, d)| {
                        gt.query_profile(s, d);
                    }),
                )
            } else {
                (0.0, 0.0)
            };
            (cq / 1e3, pq / 1e3, build_s, gt.memory_bytes())
        }
        Method::H2h => {
            let (ix, build_s) = timed(|| TdH2h::build(g, threads));
            let (cq, pq) = if measure_queries {
                (
                    avg_micros(cost_wl, |q| {
                        ix.query_cost(q.source, q.destination, q.depart);
                    }),
                    avg_micros(&profile_pairs, |&(s, d)| {
                        ix.query_profile(s, d);
                    }),
                )
            } else {
                (0.0, 0.0)
            };
            (cq / 1e3, pq / 1e3, build_s, ix.memory_bytes())
        }
        Method::Basic | Method::Appro | Method::Dp => {
            let strategy = match method {
                Method::Basic => SelectionStrategy::Basic,
                Method::Appro => SelectionStrategy::Greedy { budget },
                Method::Dp => SelectionStrategy::Dp {
                    budget,
                    weight_scale: dp_scale(budget, 10_000),
                },
                _ => unreachable!(),
            };
            let (ix, build_s) = timed(|| {
                TdTreeIndex::build(
                    g,
                    IndexOptions {
                        strategy,
                        threads,
                        track_supports: false,
                    },
                )
            });
            let (cq, pq) = if measure_queries {
                match method {
                    Method::Basic => (
                        avg_micros(cost_wl, |q| {
                            ix.query_cost_basic(q.source, q.destination, q.depart);
                        }),
                        avg_micros(&profile_pairs, |&(s, d)| {
                            ix.query_profile_basic(s, d);
                        }),
                    ),
                    _ => (
                        avg_micros(cost_wl, |q| {
                            ix.query_cost(q.source, q.destination, q.depart);
                        }),
                        avg_micros(&profile_pairs, |&(s, d)| {
                            ix.query_profile(s, d);
                        }),
                    ),
                }
            } else {
                (0.0, 0.0)
            };
            (cq / 1e3, pq / 1e3, build_s, ix.memory_bytes())
        }
    };

    SweepRow {
        dataset: dataset.name(),
        c,
        method: method.name(),
        cost_query_ms: cost_ms,
        profile_query_ms: profile_ms,
        construction_s: build_s,
        memory_bytes: mem,
    }
}
