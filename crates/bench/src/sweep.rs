//! Shared sweep machinery for the Fig. 8 / Fig. 9 experiments: build every
//! index for a (dataset, c) grid, measure query and construction metrics.
//!
//! Since the `td-api` redesign the cell runner is backend-generic: one
//! [`build_index`] call and one [`QuerySession`] query loop serve every
//! method — there is no per-backend dispatch anywhere in the measurement
//! path.

use crate::harness::{avg_micros, timed};
use td_api::{build_index, Backend, IndexConfig, QuerySession};
use td_gen::{Dataset, Workload, WorkloadConfig};

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Interpolation points per edge.
    pub c: usize,
    /// Method name.
    pub method: &'static str,
    /// Average travel-cost query time, ms.
    pub cost_query_ms: f64,
    /// Average cost-function query time, ms.
    pub profile_query_ms: f64,
    /// Construction wall time, seconds.
    pub construction_s: f64,
    /// Index memory, bytes.
    pub memory_bytes: usize,
}

/// Builds and measures one (dataset, c, backend) cell.
///
/// With `snapshot` set, construction runs build-or-load through
/// [`IndexConfig::snapshot_path`]: the first run builds and saves, repeated
/// runs load in milliseconds — `construction_s` then reports the load time,
/// which is the number a snapshot-restarting deployment actually pays.
#[allow(clippy::too_many_arguments)] // experiment-grid parameters, used by binaries only
pub fn run_cell(
    dataset: Dataset,
    c: usize,
    backend: Backend,
    scale: f64,
    seed: u64,
    threads: usize,
    cost_queries: usize,
    profile_queries: usize,
    measure_queries: bool,
    snapshot: Option<std::path::PathBuf>,
) -> SweepRow {
    let spec = dataset.spec();
    let g = spec.build_scaled(c, scale, seed);
    let n = g.num_vertices();
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: cost_queries.max(profile_queries).max(1),
            times_per_pair: 10,
            seed,
        },
    );
    let cost_wl = &wl.queries[..(cost_queries * 10).min(wl.queries.len())];
    let profile_pairs: Vec<_> = wl.pairs().into_iter().take(profile_queries).collect();
    let cfg = IndexConfig {
        budget: spec.budget_at(scale) as u64,
        threads,
        snapshot_path: snapshot,
        ..Default::default()
    };

    let (index, build_s) = timed(|| build_index(g, backend, &cfg));
    let (cost_us, profile_us) = if measure_queries {
        let mut session = QuerySession::new(index.as_ref());
        (
            avg_micros(cost_wl, |q| {
                session.query_cost(q.source, q.destination, q.depart);
            }),
            avg_micros(&profile_pairs, |&(s, d)| {
                session.query_profile(s, d);
            }),
        )
    } else {
        (0.0, 0.0)
    };

    SweepRow {
        dataset: dataset.name(),
        c,
        method: backend.name(),
        cost_query_ms: cost_us / 1e3,
        profile_query_ms: profile_us / 1e3,
        construction_s: build_s,
        memory_bytes: index.memory_bytes(),
    }
}
