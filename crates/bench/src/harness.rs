//! Utilities shared by the experiment binaries.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Parses `--scale X`, `--c N`, `--quick`, `--full` style flags.
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Dataset scale multiplier (vertex count factor).
    pub scale: f64,
    /// Seed for generators.
    pub seed: u64,
    /// Worker threads (0 = all).
    pub threads: usize,
    /// Number of query pairs (paper: 1000).
    pub pairs: usize,
    /// `--load DIR`: reuse `.tdx` index snapshots from this directory
    /// (build-or-load: missing cells are built once and saved there).
    pub snapshot_load: Option<PathBuf>,
    /// `--save DIR`: force a fresh build of every cell and (re)write its
    /// snapshot into this directory.
    pub snapshot_save: Option<PathBuf>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            seed: 42,
            threads: 0,
            pairs: 1000,
            snapshot_load: None,
            snapshot_save: None,
        }
    }
}

impl ExpArgs {
    /// Parses from `std::env::args`.
    pub fn parse() -> ExpArgs {
        let mut a = ExpArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => a.scale = args.next().and_then(|v| v.parse().ok()).expect("--scale X"),
                "--seed" => a.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
                "--threads" => {
                    a.threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads N")
                }
                "--pairs" => a.pairs = args.next().and_then(|v| v.parse().ok()).expect("--pairs N"),
                "--save" => a.snapshot_save = Some(args.next().expect("--save DIR").into()),
                "--load" => a.snapshot_load = Some(args.next().expect("--load DIR").into()),
                "--quick" => {
                    a.scale = 0.25;
                    a.pairs = 200;
                }
                "--full" => {
                    a.scale = 4.0;
                }
                other => panic!("unknown flag {other}"),
            }
        }
        a
    }

    /// The snapshot file for one experiment cell, honouring `--save`
    /// (force-refresh: an existing snapshot is removed so the cell
    /// rebuilds) and `--load` (build-or-load). `None` when neither flag
    /// was given.
    ///
    /// The scale and seed are baked into the file name alongside the
    /// caller's cell key: a snapshot is only ever reused for the exact
    /// input graph it was built from — a `--load` run at a different
    /// scale or seed builds its own cells instead of serving answers
    /// about the wrong graph.
    pub fn snapshot_file(&self, cell: &str) -> Option<PathBuf> {
        let (dir, refresh) = match (&self.snapshot_save, &self.snapshot_load) {
            (Some(dir), _) => (dir, true),
            (None, Some(dir)) => (dir, false),
            (None, None) => return None,
        };
        std::fs::create_dir_all(dir).expect("create snapshot dir");
        let scale = format!("{}", self.scale).replace('.', "p");
        let path = dir.join(format!("{cell}_s{scale}_r{}.tdx", self.seed));
        if refresh {
            let _ = std::fs::remove_file(&path);
        }
        Some(path)
    }
}

/// Appends rows to `results/<name>.csv` (header written once).
pub struct Csv {
    path: PathBuf,
    wrote_header: bool,
}

impl Csv {
    /// Creates/truncates `results/<name>.csv`.
    pub fn new(name: &str) -> Csv {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let _ = std::fs::remove_file(&path);
        Csv {
            path,
            wrote_header: false,
        }
    }

    /// Writes the header once, then rows.
    pub fn row(&mut self, header: &str, values: std::fmt::Arguments<'_>) {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .expect("open csv");
        if !self.wrote_header {
            writeln!(f, "{header}").expect("write header");
            self.wrote_header = true;
        }
        writeln!(f, "{values}").expect("write row");
    }
}

/// Pretty table separator for stdout.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Average wall-clock microseconds per call of `f` over `queries`.
pub fn avg_micros<Q, F: FnMut(&Q)>(queries: &[Q], mut f: F) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let t0 = Instant::now();
    for q in queries {
        f(q);
    }
    t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64
}

/// Formats bytes as a human-readable string.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1024 * 1024 * 1024 {
        format!("{:.2}GB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024 * 1024 {
        format!("{:.1}MB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.1}KB", b as f64 / 1024.0)
    }
}
