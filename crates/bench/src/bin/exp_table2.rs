//! Table 2 — dataset statistics: |V|, |E|, h(T_G), w(T_G) and the default
//! shortcut budget N, for the synthetic analogue of each paper dataset,
//! printed next to the paper's published values.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_table2 [--scale X]`

use td_bench::{timed, Csv, ExpArgs};
use td_gen::Dataset;
use td_treedec::TreeDecomposition;

fn main() {
    let args = ExpArgs::parse();
    let mut csv = Csv::new("table2_datasets");
    println!(
        "Table 2: Statistics of datasets (synthetic analogues at scale {})",
        args.scale
    );
    println!(
        "{:<8} {:>9} {:>9} {:>7} {:>6} {:>12} | paper: (V, E, h, w, N)",
        "Dataset", "#Vertices", "#Edges", "h(TG)", "w(TG)", "N"
    );
    td_bench::rule(100);
    for d in Dataset::ALL {
        let spec = d.spec();
        let g = spec.build_scaled(3, args.scale, args.seed);
        let (td, secs) = timed(|| TreeDecomposition::build(&g));
        let st = td.stats();
        let budget = spec.budget_at(args.scale);
        let (pv, pe, ph, pw, pn) = d.paper_stats();
        println!(
            "{:<8} {:>9} {:>9} {:>7} {:>6} {:>12} | ({pv}, {pe}, {ph}, {pw}, {pn})  [decompose {secs:.1}s]",
            d.name(),
            g.num_vertices(),
            g.num_edges(),
            st.height,
            st.width,
            budget,
        );
        csv.row(
            "dataset,vertices,edges,height,width,budget,paper_vertices,paper_edges,paper_h,paper_w,paper_n",
            format_args!(
                "{},{},{},{},{},{},{pv},{pe},{ph},{pw},{pn}",
                d.name(),
                g.num_vertices(),
                g.num_edges(),
                st.height,
                st.width,
                budget
            ),
        );
    }
}
