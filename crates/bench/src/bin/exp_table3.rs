//! Table 3 — performance on CAL: average travel-cost query time, index
//! construction time and memory for TD-G-tree, TD-H2H and TD-basic.
//!
//! Paper values (CAL, 21k vertices): TD-G-tree 0.16 ms / 0.006 h / 0.169 GB;
//! TD-H2H 0.0001 ms / 0.12 h / 3.7 GB; TD-basic 4.4 ms / 0.0002 h / 0.089 GB.
//! The expected *shape*: H2H is fastest but largest by far; basic is smallest
//! and fastest to build but slowest to query; G-tree sits in between.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_table3 [--scale X] [--pairs N]`

use td_bench::{avg_micros, fmt_bytes, timed, Csv, ExpArgs};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::{Dataset, Workload, WorkloadConfig};
use td_gtree::{GtreeConfig, TdGtree};
use td_h2h::TdH2h;

fn main() {
    let args = ExpArgs::parse();
    let d = Dataset::Cal;
    let g = d.spec().build_scaled(3, args.scale, args.seed);
    let n = g.num_vertices();
    println!("Table 3: Performance on CAL (|V|={n}, |E|={}, c=3)", g.num_edges());
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: args.pairs,
            times_per_pair: 10,
            seed: args.seed,
        },
    );
    let mut csv = Csv::new("table3_cal");
    let header = "method,query_ms,construction_s,memory_bytes";
    println!(
        "{:<10} {:>14} {:>16} {:>10}   (paper: query / construction / memory)",
        "Method", "Query cost", "Construction", "Memory"
    );
    td_bench::rule(95);

    // TD-G-tree.
    let (gt, build_s) = timed(|| TdGtree::build(g.clone(), GtreeConfig::default()));
    let q = avg_micros(&wl.queries, |q| {
        gt.query_cost(q.source, q.destination, q.depart);
    });
    println!(
        "{:<10} {:>11.3}ms {:>15.1}s {:>10}   (0.16ms / 0.006h / 0.169GB)",
        "TD-G-tree",
        q / 1000.0,
        build_s,
        fmt_bytes(gt.memory_bytes())
    );
    csv.row(header, format_args!("TD-G-tree,{},{},{}", q / 1000.0, build_s, gt.memory_bytes()));
    drop(gt);

    // TD-H2H.
    let (h2h, build_s) = timed(|| TdH2h::build(g.clone(), args.threads));
    let q = avg_micros(&wl.queries, |q| {
        h2h.query_cost(q.source, q.destination, q.depart);
    });
    println!(
        "{:<10} {:>11.4}ms {:>15.1}s {:>10}   (0.0001ms / 0.12h / 3.7GB)",
        "TD-H2H",
        q / 1000.0,
        build_s,
        fmt_bytes(h2h.memory_bytes())
    );
    csv.row(header, format_args!("TD-H2H,{},{},{}", q / 1000.0, build_s, h2h.memory_bytes()));
    drop(h2h);

    // TD-basic.
    let (basic, build_s) = timed(|| {
        TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Basic,
                threads: args.threads,
                track_supports: false,
            },
        )
    });
    let q = avg_micros(&wl.queries, |q| {
        basic.query_cost_basic(q.source, q.destination, q.depart);
    });
    println!(
        "{:<10} {:>11.3}ms {:>15.1}s {:>10}   (4.4ms / 0.0002h / 0.089GB)",
        "TD-basic",
        q / 1000.0,
        build_s,
        fmt_bytes(basic.memory_bytes())
    );
    csv.row(header, format_args!("TD-basic,{},{},{}", q / 1000.0, build_s, basic.memory_bytes()));
}
