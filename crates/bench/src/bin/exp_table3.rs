//! Table 3 — performance on CAL: average travel-cost query time, index
//! construction time and memory for TD-G-tree, TD-H2H and TD-basic.
//!
//! Paper values (CAL, 21k vertices): TD-G-tree 0.16 ms / 0.006 h / 0.169 GB;
//! TD-H2H 0.0001 ms / 0.12 h / 3.7 GB; TD-basic 4.4 ms / 0.0002 h / 0.089 GB.
//! The expected *shape*: H2H is fastest but largest by far; basic is smallest
//! and fastest to build but slowest to query; G-tree sits in between.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_table3 [--scale X] [--pairs N]`

use td_api::{build_index, Backend, IndexConfig, QuerySession};
use td_bench::{avg_micros, fmt_bytes, timed, Csv, ExpArgs};
use td_gen::{Dataset, Workload, WorkloadConfig};

fn main() {
    let args = ExpArgs::parse();
    let d = Dataset::Cal;
    let g = d.spec().build_scaled(3, args.scale, args.seed);
    let n = g.num_vertices();
    println!(
        "Table 3: Performance on CAL (|V|={n}, |E|={}, c=3)",
        g.num_edges()
    );
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: args.pairs,
            times_per_pair: 10,
            seed: args.seed,
        },
    );
    let mut csv = Csv::new("table3_cal");
    let header = "method,query_ms,construction_s,memory_bytes";
    println!(
        "{:<10} {:>14} {:>16} {:>10}   (paper: query / construction / memory)",
        "Method", "Query cost", "Construction", "Memory"
    );
    td_bench::rule(95);

    let cfg = IndexConfig {
        threads: args.threads,
        ..Default::default()
    };
    let rows: [(Backend, &str); 3] = [
        (Backend::TdGtree, "(0.16ms / 0.006h / 0.169GB)"),
        (Backend::TdH2h, "(0.0001ms / 0.12h / 3.7GB)"),
        (Backend::TdBasic, "(4.4ms / 0.0002h / 0.089GB)"),
    ];
    for (backend, paper) in rows {
        let (index, build_s) = timed(|| build_index(g.clone(), backend, &cfg));
        let mut session = QuerySession::new(index.as_ref());
        let q = avg_micros(&wl.queries, |q| {
            session.query_cost(q.source, q.destination, q.depart);
        });
        println!(
            "{:<10} {:>11.4}ms {:>15.1}s {:>10}   {paper}",
            backend.name(),
            q / 1000.0,
            build_s,
            fmt_bytes(index.memory_bytes())
        );
        csv.row(
            header,
            format_args!(
                "{},{},{},{}",
                backend.name(),
                q / 1000.0,
                build_s,
                index.memory_bytes()
            ),
        );
    }
}
