//! Ablation of the paper's design choices, on real candidate sets.
//!
//! 1. **Selection strategies** (§4.4): utility-only greedy vs density-only
//!    greedy vs the paper's dual greedy (Algo. 5) vs exact DP (Algo. 4) —
//!    achieved utility under the same budget. The paper's argument that
//!    *both* greedy views are needed shows up as the dual matching DP while
//!    the single strategies fall short on some budgets.
//! 2. **Budget pressure**: the same comparison across budgets from 1% to 50%
//!    of the total candidate weight.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_ablation [--scale X]`

use td_api::IndexConfig;
use td_bench::{timed, Csv, ExpArgs};
use td_core::select::{
    select_dp, select_greedy, select_greedy_density_only, select_greedy_utility_only,
};
use td_core::shortcut::weigh_candidates;
use td_gen::Dataset;
use td_treedec::TreeDecomposition;

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.2;
    }
    let g = Dataset::Sf.spec().build_scaled(3, args.scale, args.seed);
    let td = TreeDecomposition::build(&g);
    let width = td.stats().width;
    let (candidates, secs) = timed(|| weigh_candidates(&td, width, args.threads));
    let total_weight: u64 = candidates.iter().map(|c| c.weight as u64).sum();
    println!(
        "Ablation on SF analogue: |V|={} candidates={} (weighed in {secs:.1}s), total weight={total_weight}",
        g.num_vertices(),
        candidates.len()
    );
    let mut csv = Csv::new("ablation_selection");
    let header = "budget_pct,strategy,utility,utility_vs_dp,seconds";
    println!(
        "{:>7} {:<14} {:>14} {:>9} {:>9}",
        "budget%", "strategy", "utility", "vs DP", "time(s)"
    );
    td_bench::rule(60);
    for pct in [1u64, 5, 10, 25, 50] {
        let budget = total_weight * pct / 100;
        let scale = IndexConfig {
            budget,
            ..Default::default()
        }
        .dp_weight_scale();
        let (dp, dp_secs) = timed(|| select_dp(&candidates, budget, scale));
        let runs: Vec<(&str, f64, f64)> = {
            let (u, su) = timed(|| select_greedy_utility_only(&candidates, budget));
            let (d, sd) = timed(|| select_greedy_density_only(&candidates, budget));
            let (g2, sg) = timed(|| select_greedy(&candidates, budget));
            vec![
                ("utility-only", u.utility, su),
                ("density-only", d.utility, sd),
                ("dual (Algo.5)", g2.utility, sg),
                ("DP (Algo.4)", dp.utility, dp_secs),
            ]
        };
        for (name, utility, secs) in runs {
            let ratio = if dp.utility > 0.0 {
                utility / dp.utility
            } else {
                1.0
            };
            println!(
                "{:>6}% {:<14} {:>14.1} {:>8.3} {:>9.2}",
                pct, name, utility, ratio, secs
            );
            csv.row(
                header,
                format_args!("{pct},{name},{utility},{ratio},{secs}"),
            );
        }
    }
    println!("\nWrote results/ablation_selection.csv");
}
