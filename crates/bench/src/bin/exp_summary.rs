//! §5.4 summary numbers — the TD-dp vs TD-appro trade-off on one dataset:
//! construction-time gap (paper: TD-dp takes 0.01–0.2 h more) and query-time
//! gap (paper: TD-dp is slightly faster, by no more than 30 ms).
//!
//! Usage: `cargo run --release -p td-bench --bin exp_summary [--scale X]
//!          [--save DIR | --load DIR]`
//!
//! `--load DIR` reuses one built index per cell across repeated runs
//! (build-or-load `.tdx` snapshots); `--save DIR` forces a fresh build and
//! rewrites the snapshots.

use td_api::Backend;
use td_bench::sweep::run_cell;
use td_bench::{Csv, ExpArgs};
use td_gen::Dataset;

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.25;
    }
    let mut csv = Csv::new("summary_dp_vs_appro");
    let header = "dataset,method,cost_query_ms,profile_query_ms,construction_s,memory_bytes";
    println!(
        "§5.4 summary: TD-dp vs TD-appro (c=3, scale {})",
        args.scale
    );
    println!(
        "{:<6} {:<10} {:>15} {:>19} {:>16} {:>12}",
        "data", "method", "cost query (ms)", "function query (ms)", "construction (s)", "memory"
    );
    td_bench::rule(85);
    for dataset in [Dataset::Col, Dataset::Fla] {
        let mut rows = Vec::new();
        for m in [Backend::TdAppro, Backend::TdDp] {
            let row = run_cell(
                dataset,
                3,
                m,
                args.scale,
                args.seed,
                args.threads,
                300,
                150,
                true,
                args.snapshot_file(&format!("{}_c3_{}", dataset.name(), m.name())),
            );
            println!(
                "{:<6} {:<10} {:>15.4} {:>19.3} {:>16.1} {:>12}",
                row.dataset,
                row.method,
                row.cost_query_ms,
                row.profile_query_ms,
                row.construction_s,
                td_bench::fmt_bytes(row.memory_bytes)
            );
            csv.row(
                header,
                format_args!(
                    "{},{},{},{},{},{}",
                    row.dataset,
                    row.method,
                    row.cost_query_ms,
                    row.profile_query_ms,
                    row.construction_s,
                    row.memory_bytes
                ),
            );
            rows.push(row);
        }
        let (appro, dp) = (&rows[0], &rows[1]);
        println!(
            "   -> dp construction overhead: {:+.1}s; dp query gain: {:+.3}ms (function query)",
            dp.construction_s - appro.construction_s,
            appro.profile_query_ms - dp.profile_query_ms
        );
    }
}
