//! Fig. 10 — index update cost on SF: total time to apply weight updates to
//! 10 / 100 / 1,000 / … randomly chosen edges of a TD-appro index built with
//! support tracking.
//!
//! Expected shape (paper): update time grows with the number of updated
//! edges and stays far below a full rebuild for small batches.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_fig10 [--scale X]`

use rand::prelude::*;
use rand::rngs::StdRng;
use td_bench::{timed, Csv, ExpArgs};
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::random_graph::random_profile;
use td_gen::Dataset;

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.25;
    }
    let spec = Dataset::Sf.spec();
    let g = spec.build_scaled(3, args.scale, args.seed);
    let budget = spec.budget_at(args.scale) as u64;
    println!(
        "Fig. 10: Index update on SF analogue (|V|={}, |E|={})",
        g.num_vertices(),
        g.num_edges()
    );
    let (index, build_s) = timed(|| {
        TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget },
                threads: args.threads,
                track_supports: true,
            },
        )
    });
    println!("TD-appro built in {build_s:.1}s (reference: full rebuild cost)");
    let mut csv = Csv::new("fig10_updates");
    let header = "updated_edges,update_s,replay_s,rebuild_s,changed_nodes,full_rebuild_s";
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>14}",
        "#updated edges", "update (s)", "replay(s)", "rebuild(s)", "changed nodes"
    );
    td_bench::rule(70);

    let m = g.num_edges();
    let batches: Vec<usize> = [10usize, 100, 1_000, 10_000, 100_000]
        .into_iter()
        .filter(|&b| b <= m)
        .collect();
    for &batch in &batches {
        // Fresh index per batch so measurements are independent.
        let mut index = TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget },
                threads: args.threads,
                track_supports: true,
            },
        );
        let mut rng = StdRng::seed_from_u64(args.seed ^ batch as u64);
        let mut picked: Vec<u32> = (0..m as u32).collect();
        picked.shuffle(&mut rng);
        let changes: Vec<_> = picked[..batch]
            .iter()
            .map(|&e| {
                let edge = index.graph().edge(e);
                (edge.from, edge.to, random_profile(&mut rng, 3, 5.0, 500.0))
            })
            .collect();
        let (stats, secs) = timed(|| index.update_edges(&changes));
        println!(
            "{:>14} {:>12.2} {:>10.2} {:>10.2} {:>14}",
            batch, secs, stats.replay_secs, stats.rebuild_secs, stats.changed_nodes
        );
        csv.row(
            header,
            format_args!(
                "{batch},{secs},{},{},{},{build_s}",
                stats.replay_secs, stats.rebuild_secs, stats.changed_nodes
            ),
        );
        let _ = index;
    }
    println!("\nWrote results/fig10_updates.csv");
    drop(index);
}
