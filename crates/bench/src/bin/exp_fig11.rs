//! Fig. 11 — effect of the selection budget N on FLA: query cost and index
//! memory of TD-appro as N sweeps 1×..5× the base budget (the paper sweeps
//! 10M–50M on the real FLA).
//!
//! Expected shape (paper): memory grows linearly with N while query time
//! falls — more shortcuts, faster queries.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_fig11 [--scale X]`

use td_api::{build_index, Backend, IndexConfig, QuerySession};
use td_bench::{avg_micros, fmt_bytes, timed, Csv, ExpArgs};
use td_gen::{Dataset, Workload, WorkloadConfig};

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.25;
    }
    let spec = Dataset::Fla.spec();
    let g = spec.build_scaled(3, args.scale, args.seed);
    let n = g.num_vertices();
    let base = spec.budget_at(args.scale) as u64;
    println!("Fig. 11: Varying N on FLA analogue (|V|={n}, base N={base})",);
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: args.pairs.min(300),
            times_per_pair: 10,
            seed: args.seed,
        },
    );
    let mut csv = Csv::new("fig11_budget");
    let header = "budget_multiplier,budget,query_ms,memory_bytes,selected_pairs,construction_s";
    println!(
        "{:>4} {:>12} {:>14} {:>12} {:>10} {:>15}",
        "N/x", "budget", "query (ms)", "memory", "#pairs", "construction(s)"
    );
    td_bench::rule(75);
    for mult in 1..=5u64 {
        let budget = base * mult;
        let cfg = IndexConfig {
            budget,
            threads: args.threads,
            ..Default::default()
        };
        let (index, build_s) = timed(|| build_index(g.clone(), Backend::TdAppro, &cfg));
        let mut session = QuerySession::new(index.as_ref());
        let q = avg_micros(&wl.queries, |q| {
            session.query_cost(q.source, q.destination, q.depart);
        });
        println!(
            "{:>4} {:>12} {:>14.4} {:>12} {:>10} {:>15.1}",
            mult,
            budget,
            q / 1000.0,
            fmt_bytes(index.memory_bytes()),
            index.build_stats().precomputed_pairs,
            build_s
        );
        csv.row(
            header,
            format_args!(
                "{mult},{budget},{},{},{},{build_s}",
                q / 1000.0,
                index.memory_bytes(),
                index.build_stats().precomputed_pairs
            ),
        );
    }
    println!("\nWrote results/fig11_budget.csv");
}
