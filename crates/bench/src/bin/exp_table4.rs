//! Table 4 — performance on W-USA (the largest dataset): TD-G-tree vs
//! TD-basic, with TD-H2H reported N/A exactly as in the paper (its full
//! label does not fit in memory at this graph size).
//!
//! Paper values: TD-G-tree 30 ms / 15 h / 102 GB; TD-H2H N/A;
//! TD-basic 9,118 ms / 1.18 h / 66 GB. Expected shape: both buildable
//! methods construct, basic queries are orders of magnitude slower than
//! G-tree's, H2H is infeasible.
//!
//! Default scale is 0.35 (≈11k vertices) so the run completes on a laptop;
//! `--scale 1.0` grows it to ≈32k.

use td_api::{build_index, Backend, IndexConfig, QuerySession};
use td_bench::{avg_micros, fmt_bytes, timed, Csv, ExpArgs};
use td_gen::{Dataset, Workload, WorkloadConfig};

fn main() {
    let mut args = ExpArgs::parse();
    if (args.scale - 1.0).abs() < 1e-12 && !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.35;
    }
    let d = Dataset::WUsa;
    let g = d.spec().build_scaled(3, args.scale, args.seed);
    let n = g.num_vertices();
    println!(
        "Table 4: Performance on W-USA analogue (|V|={n}, |E|={}, c=3)",
        g.num_edges()
    );
    let wl = Workload::generate(
        n,
        &WorkloadConfig {
            pairs: args.pairs.min(200),
            times_per_pair: 10,
            seed: args.seed,
        },
    );
    let mut csv = Csv::new("table4_wusa");
    let header = "method,query_ms,construction_s,memory_bytes";
    println!(
        "{:<10} {:>14} {:>16} {:>10}   (paper: query / construction / memory)",
        "Method", "Query cost", "Construction", "Memory"
    );
    td_bench::rule(95);

    let cfg = IndexConfig {
        threads: args.threads,
        ..Default::default()
    };
    // TD-G-tree first, as in the paper's row order.
    run_row(
        &g,
        Backend::TdGtree,
        &cfg,
        &wl,
        "(30ms / 15h / 102GB)",
        &mut csv,
        header,
    );

    // TD-H2H: project the label size before attempting the build — at this
    // structure it exceeds sensible memory, which is the paper's N/A.
    {
        let td = td_treedec::TreeDecomposition::build(&g);
        let st = td.stats();
        let avg_depth = st.avg_depth;
        // Every node stores two functions per ancestor; points grow with
        // distance — project from the tree's own stored density.
        let avg_points_per_fn = (st.stored_points as f64
            / (2.0 * td.nodes.iter().map(|x| x.bag.len()).sum::<usize>().max(1) as f64))
            .max(2.0);
        let growth = 8.0; // labels to far ancestors carry many more points
        let projected = (n as f64) * avg_depth * 2.0 * avg_points_per_fn * growth * 24.0;
        let limit = 8.0 * 1024.0 * 1024.0 * 1024.0;
        println!(
            "{:<10} {:>14} {:>16} {:>10}   (N/A / N/A / N/A) [projected label ≈ {}, limit {}]",
            "TD-H2H",
            "N/A",
            "N/A",
            "N/A",
            fmt_bytes(projected as usize),
            fmt_bytes(limit as usize)
        );
        csv.row(header, format_args!("TD-H2H,NA,NA,NA"));
    }

    run_row(
        &g,
        Backend::TdBasic,
        &cfg,
        &wl,
        "(9118ms / 1.18h / 66GB)",
        &mut csv,
        header,
    );
}

fn run_row(
    g: &td_graph::TdGraph,
    backend: Backend,
    cfg: &IndexConfig,
    wl: &Workload,
    paper: &str,
    csv: &mut Csv,
    header: &str,
) {
    let (index, build_s) = timed(|| build_index(g.clone(), backend, cfg));
    let mut session = QuerySession::new(index.as_ref());
    let q = avg_micros(&wl.queries, |q| {
        session.query_cost(q.source, q.destination, q.depart);
    });
    println!(
        "{:<10} {:>11.3}ms {:>15.1}s {:>10}   {paper}",
        backend.name(),
        q / 1000.0,
        build_s,
        fmt_bytes(index.memory_bytes())
    );
    csv.row(
        header,
        format_args!(
            "{},{},{},{}",
            backend.name(),
            q / 1000.0,
            build_s,
            index.memory_bytes()
        ),
    );
}
