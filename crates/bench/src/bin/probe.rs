//! Calibration probe: construction cost of each index at a given scale.
use td_bench::timed;
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::Dataset;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let d = Dataset::Cal;
    let spec = d.spec();
    let g = spec.build_scaled(3, scale, 42);
    println!(
        "CAL scale={scale}: |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );
    let (td, secs) = timed(|| td_treedec::TreeDecomposition::build(&g));
    let st = td.stats();
    println!(
        "decompose: {secs:.2}s  h={} w={} points={} bytes={}MB",
        st.height,
        st.width,
        st.stored_points,
        st.bytes / (1024 * 1024)
    );
    drop(td);
    let budget = spec.budget_at(scale);
    let (idx, secs) = timed(|| {
        TdTreeIndex::build(
            g.clone(),
            IndexOptions {
                strategy: SelectionStrategy::Greedy {
                    budget: budget as u64,
                },
                threads: 0,
                track_supports: false,
            },
        )
    });
    println!("TD-appro build: {secs:.2}s (weigh {:.2}s select {:.2}s build {:.2}s) candidates={} selected={} budget={}",
        idx.build_stats.weigh_secs, idx.build_stats.select_secs, idx.build_stats.build_secs,
        idx.build_stats.candidates, idx.build_stats.selected_pairs, budget);
    let (h2h, secs) = timed(|| td_h2h::TdH2h::build(g.clone(), td_h2h::H2hConfig::default()));
    println!(
        "TD-H2H build: {secs:.2}s labels={} mem={}MB",
        h2h.num_labels(),
        h2h.memory_bytes() / (1024 * 1024)
    );
    let (gt, secs) =
        timed(|| td_gtree::TdGtree::build(g.clone(), td_gtree::GtreeConfig::default()));
    println!(
        "TD-G-tree build: {secs:.2}s mem={}MB",
        gt.memory_bytes() / (1024 * 1024)
    );
}
