//! Calibration probe: construction cost of each index at a given scale.
//!
//! Usage: `probe [SCALE] [--save PATH] [--load PATH]`
//!
//! `--save PATH` writes the TD-appro index as a `.tdx` snapshot after
//! building it; `--load PATH` skips that build entirely and times the
//! snapshot load instead — the restart path a deployment actually takes.
use td_bench::timed;
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_gen::Dataset;

fn main() {
    let mut scale: f64 = 0.25;
    let mut save: Option<String> = None;
    let mut load: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--save" => save = Some(args.next().expect("--save PATH")),
            "--load" => load = Some(args.next().expect("--load PATH")),
            s => scale = s.parse().expect("probe [SCALE] [--save P] [--load P]"),
        }
    }
    let d = Dataset::Cal;
    let spec = d.spec();
    let g = spec.build_scaled(3, scale, 42);
    println!(
        "CAL scale={scale}: |V|={} |E|={}",
        g.num_vertices(),
        g.num_edges()
    );
    let (td, secs) = timed(|| td_treedec::TreeDecomposition::build(&g));
    let st = td.stats();
    println!(
        "decompose: {secs:.2}s  h={} w={} points={} bytes={}MB",
        st.height,
        st.width,
        st.stored_points,
        st.bytes / (1024 * 1024)
    );
    drop(td);
    let budget = spec.budget_at(scale);
    let idx = if let Some(path) = &load {
        let (idx, secs) = timed(|| td_api::load_tree_index(path).expect("load snapshot"));
        println!(
            "TD-appro load: {secs:.3}s from {path} ({} selected pairs)",
            idx.build_stats.selected_pairs
        );
        idx
    } else {
        let (idx, secs) = timed(|| {
            TdTreeIndex::build(
                g.clone(),
                IndexOptions {
                    strategy: SelectionStrategy::Greedy {
                        budget: budget as u64,
                    },
                    threads: 0,
                    track_supports: false,
                },
            )
        });
        println!("TD-appro build: {secs:.2}s (weigh {:.2}s select {:.2}s build {:.2}s) candidates={} selected={} budget={}",
            idx.build_stats.weigh_secs, idx.build_stats.select_secs, idx.build_stats.build_secs,
            idx.build_stats.candidates, idx.build_stats.selected_pairs, budget);
        idx
    };
    if let Some(path) = &save {
        let (_, secs) = timed(|| td_api::save_index(&idx, path).expect("save snapshot"));
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!("TD-appro save: {secs:.3}s -> {path} ({bytes} bytes)");
    }
    drop(idx);
    let (h2h, secs) = timed(|| td_h2h::TdH2h::build(g.clone(), td_h2h::H2hConfig::default()));
    println!(
        "TD-H2H build: {secs:.2}s labels={} mem={}MB",
        h2h.num_labels(),
        h2h.memory_bytes() / (1024 * 1024)
    );
    let (gt, secs) =
        timed(|| td_gtree::TdGtree::build(g.clone(), td_gtree::GtreeConfig::default()));
    println!(
        "TD-G-tree build: {secs:.2}s mem={}MB",
        gt.memory_bytes() / (1024 * 1024)
    );
}
