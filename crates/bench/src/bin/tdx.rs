//! `tdx` — the snapshot tool: build a `.tdx` index snapshot from a named
//! dataset, inspect its section table, or verify its integrity end to end.
//!
//! ```text
//! tdx build --dataset CAL --backend td-h2h --out cal-h2h.tdx [--scale 0.25]
//!           [--seed 42] [--c 3] [--threads 0] [--budget N] [--max-leaf 32]
//!           [--track-supports]
//! tdx inspect <path.tdx>
//! tdx verify <path.tdx> [--queries 200] [--seed 42]
//! tdx stats <path.tdx> [--queries 256] [--seed 42] [--threads 2]
//! ```
//!
//! `verify` walks every section checksum, fully reloads the index, and
//! (with `--queries N`) replays a seeded workload against a fresh
//! TD-Dijkstra oracle over the snapshot's own graph — the same agreement
//! the conformance suite demands.
//!
//! `stats` loads the snapshot, drives a seeded serving workload through the
//! parallel executor (exact, budget-bounded and profile queries), then
//! prints the process-wide metric catalog as a Prometheus text scrape on
//! stdout — the workload summary goes to stderr, so the scrape pipes clean.

use std::time::Instant;
use td_api::{
    build_index, load_index, save_index, Backend, IndexConfig, ParallelExecutor, QueryBudget,
    QuerySession,
};
use td_gen::Dataset;
use td_store::error::tag_name;
use td_store::section::{elem, walk_sections};

fn usage() -> ! {
    eprintln!(
        "usage:\n  tdx build --dataset <CAL|SF|COL|FLA|W-USA> --backend <name> --out <path> \\\n            [--scale X] [--seed N] [--c N] [--threads N] [--budget N] [--max-leaf N] [--track-supports]\n  tdx inspect <path.tdx>\n  tdx verify <path.tdx> [--queries N] [--seed N]\n  tdx stats <path.tdx> [--queries N] [--seed N] [--threads N]\n  tdx serve <path.tdx> [--duration-ms N] [--clients N] [--burst N] [--deadline-ms N] [--chaos] [--seed N]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("tdx: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => usage(),
    }
}

fn parse_dataset(name: &str) -> Dataset {
    Dataset::ALL
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| fail(format!("unknown dataset `{name}`")))
}

fn cmd_build(args: &[String]) {
    let mut dataset = None;
    let mut backend = None;
    let mut out = None;
    let mut scale = 0.25f64;
    let mut seed = 42u64;
    let mut c = 3usize;
    let mut threads = 0usize;
    let mut budget = None;
    let mut max_leaf = 32usize;
    let mut track_supports = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{arg} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--dataset" => dataset = Some(parse_dataset(&val())),
            "--backend" => {
                backend = Some(val().parse::<Backend>().unwrap_or_else(|e| fail(e)));
            }
            "--out" => out = Some(val()),
            "--scale" => scale = val().parse().unwrap_or_else(|_| fail("bad --scale")),
            "--seed" => seed = val().parse().unwrap_or_else(|_| fail("bad --seed")),
            "--c" => c = val().parse().unwrap_or_else(|_| fail("bad --c")),
            "--threads" => threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            "--budget" => budget = Some(val().parse().unwrap_or_else(|_| fail("bad --budget"))),
            "--max-leaf" => max_leaf = val().parse().unwrap_or_else(|_| fail("bad --max-leaf")),
            "--track-supports" => track_supports = true,
            other => fail(format!("unknown flag `{other}`")),
        }
    }
    let (Some(dataset), Some(backend), Some(out)) = (dataset, backend, out) else {
        usage();
    };

    let spec = dataset.spec();
    let t0 = Instant::now();
    let graph = spec.build_scaled(c, scale, seed);
    println!(
        "{}: |V|={} |E|={} (scale {scale}, c={c}, seed {seed}) generated in {:.2}s",
        dataset.name(),
        graph.num_vertices(),
        graph.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    let cfg = IndexConfig {
        budget: budget.unwrap_or(spec.budget_at(scale) as u64),
        threads,
        track_supports,
        max_leaf,
        ..Default::default()
    };
    let t1 = Instant::now();
    let index = build_index(graph, backend, &cfg);
    let build_secs = t1.elapsed().as_secs_f64();
    println!(
        "{} built in {build_secs:.2}s ({} pairs, {} points, {})",
        index.backend_name(),
        index.build_stats().precomputed_pairs,
        index.build_stats().stored_points,
        td_bench::fmt_bytes(index.memory_bytes())
    );

    let t2 = Instant::now();
    save_index(index.as_ref(), &out).unwrap_or_else(|e| fail(e));
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out}: {} in {:.3}s",
        td_bench::fmt_bytes(bytes as usize),
        t2.elapsed().as_secs_f64()
    );
}

fn elem_name(code: u8) -> &'static str {
    match code {
        elem::END => "end",
        elem::U8 => "u8",
        elem::U32 => "u32",
        elem::U64 => "u64",
        elem::F64 => "f64",
        _ => "?",
    }
}

/// Opens a snapshot, prints its header, and returns the CRC-verified
/// section list.
fn walk(path: &str) -> Vec<td_store::section::SectionInfo> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path).unwrap_or_else(|e| fail(e)));
    let header = td_store::format::read_header(&mut f).unwrap_or_else(|e| fail(e));
    println!(
        "{path}: format v{}, backend {}",
        header.version, header.backend
    );
    walk_sections(&mut f).unwrap_or_else(|e| fail(e))
}

fn cmd_inspect(args: &[String]) {
    let [path] = args else { usage() };
    let infos = walk(path);
    println!(
        "{:<8} {:<5} {:>12} {:>14} {:>10} {:>10}",
        "section", "type", "count", "bytes", "crc32", "load"
    );
    td_bench::rule(65);
    let mut total = 0u64;
    let mut total_secs = 0.0f64;
    for s in &infos {
        println!(
            "{:<8} {:<5} {:>12} {:>14} {:>10x} {:>10}",
            tag_name(s.tag),
            elem_name(s.type_code),
            s.count,
            s.bytes,
            s.crc,
            format!("{:.2}ms", s.load_secs * 1e3)
        );
        total += s.bytes;
        total_secs += s.load_secs;
    }
    td_bench::rule(65);
    println!(
        "{} sections, {} payload read in {:.2}ms (all checksums OK)",
        infos.len(),
        td_bench::fmt_bytes(total as usize),
        total_secs * 1e3
    );

    // The crash-consistency generation pair: which generations exist, how
    // old each is, and which one a load would actually serve (`load_index`
    // tries primary first, `.prev` on any error).
    println!();
    println!("{:<10} {:>14} {:>10}  status", "generation", "bytes", "age");
    td_bench::rule(65);
    let prev = format!("{path}.prev");
    let primary_ok = print_generation("primary", path);
    let prev_ok = print_generation("prev", &prev);
    td_bench::rule(65);
    println!(
        "a load would serve: {}",
        match (primary_ok, prev_ok) {
            (true, _) => "primary",
            (false, true) => "prev (fallback)",
            (false, false) => "nothing — both generations unloadable",
        }
    );
}

/// One row of the generation table; true when the file walks clean.
fn print_generation(label: &str, path: &str) -> bool {
    let Ok(meta) = std::fs::metadata(path) else {
        println!("{label:<10} {:>14} {:>10}  absent", "-", "-");
        return false;
    };
    let age = meta
        .modified()
        .ok()
        .and_then(|m| m.elapsed().ok())
        .map_or_else(|| "?".to_string(), fmt_age);
    let status = check_generation(path);
    println!(
        "{label:<10} {:>14} {age:>10}  {status}",
        td_bench::fmt_bytes(meta.len() as usize),
    );
    status.starts_with("OK")
}

/// Walks a generation's header + every section checksum (without loading
/// the index) and renders the outcome.
fn check_generation(path: &str) -> String {
    let open = std::fs::File::open(path).map_err(td_store::StoreError::from);
    let walked = open.and_then(|f| {
        let mut r = std::io::BufReader::new(f);
        td_store::format::read_header(&mut r)?;
        walk_sections(&mut r)
    });
    match walked {
        Ok(infos) => format!("OK ({} sections)", infos.len()),
        Err(e) => format!("unloadable: {e}"),
    }
}

fn fmt_age(age: std::time::Duration) -> String {
    let s = age.as_secs();
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else if s < 86_400 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else {
        format!("{}d{:02}h", s / 86_400, (s % 86_400) / 3600)
    }
}

fn cmd_verify(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut queries = 0usize;
    let mut seed = 42u64;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{arg} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--queries" => queries = val().parse().unwrap_or_else(|_| fail("bad --queries")),
            "--seed" => seed = val().parse().unwrap_or_else(|_| fail("bad --seed")),
            other => fail(format!("unknown flag `{other}`")),
        }
    }

    // 1. Structural walk: every section checksum.
    let infos = walk(path);
    println!("checksums: {} sections OK", infos.len());

    // 2. Full reload through the typed path (validates every invariant).
    let t0 = Instant::now();
    let index = load_index(path).unwrap_or_else(|e| fail(e));
    println!(
        "reload: {} ({}) in {:.3}s",
        index.backend_name(),
        td_bench::fmt_bytes(index.memory_bytes()),
        t0.elapsed().as_secs_f64()
    );

    // 3. Optional oracle agreement over the snapshot's own graph.
    if queries > 0 && index.graph().num_vertices() == 0 {
        println!("oracle agreement: skipped (snapshot holds an empty graph)");
    } else if queries > 0 {
        let graph = index.graph().clone();
        let oracle = td_api::DijkstraOracle::new(graph);
        let n = index.graph().num_vertices() as u64;
        let mut session = QuerySession::new(index.as_ref());
        let mut checked = 0usize;
        for i in 0..queries as u64 {
            let (s, d, t) = probe(seed, i, n);
            let want = oracle.query_cost(s, d, t);
            let got = session.query_cost(s, d, t);
            match (want, got) {
                (Some(a), Some(b)) if (a - b).abs() < 1e-4 => checked += 1,
                (None, None) => checked += 1,
                other => fail(format!(
                    "oracle disagreement at s={s} d={d} t={t}: {other:?}"
                )),
            }
        }
        println!("oracle agreement: {checked}/{queries} queries OK");
    }
    println!("verify: OK");
}

/// Deterministic splitmix-style probe query `i` over an `n`-vertex graph.
fn probe(seed: u64, i: u64, n: u64) -> (u32, u32, f64) {
    let mut x = seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let s = (x % n) as u32;
    let d = ((x >> 20) % n) as u32;
    let t = ((x >> 13) % 86_400) as f64;
    (s, d, t)
}

fn cmd_stats(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut queries = 256usize;
    let mut seed = 42u64;
    let mut threads = 2usize;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{arg} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--queries" => queries = val().parse().unwrap_or_else(|_| fail("bad --queries")),
            "--seed" => seed = val().parse().unwrap_or_else(|_| fail("bad --seed")),
            "--threads" => threads = val().parse().unwrap_or_else(|_| fail("bad --threads")),
            other => fail(format!("unknown flag `{other}`")),
        }
    }

    // The load itself feeds td_snapshot_load_seconds.
    let index = load_index(path).unwrap_or_else(|e| fail(e));
    let n = index.graph().num_vertices() as u64;
    if n > 0 && queries > 0 {
        let workload: Vec<td_api::CostQuery> =
            (0..queries as u64).map(|i| probe(seed, i, n)).collect();
        let mut exec = ParallelExecutor::new(index.as_ref(), threads);
        let exact = exec.query_batch(&workload);
        let reachable = exact.iter().filter(|c| c.is_some()).count();
        // The bounded rung: a tight settle budget walks the degradation
        // ladder, and one out-of-range probe exercises the error rung.
        let mut bounded_load = workload.clone();
        bounded_load.push((n as u32, 0, 0.0));
        let bounded = exec.query_batch_bounded(&bounded_load, &QueryBudget::settles(16));
        let degraded = bounded
            .iter()
            .filter(|r| matches!(r, Ok(a) if !a.is_exact()))
            .count();
        // A few cost-function (profile) queries for corridor telemetry.
        let pairs: Vec<(u32, u32)> = workload.iter().take(4).map(|q| (q.0, q.1)).collect();
        let profiles = exec.profile_batch(&pairs);
        eprintln!(
            "{path}: {} over |V|={n} |E|={}; {} cost queries ({reachable} reachable), \
             {} bounded ({degraded} degraded), {} profiles, {} workers",
            index.backend_name(),
            index.graph().num_edges(),
            workload.len(),
            bounded_load.len(),
            profiles.iter().filter(|p| p.is_some()).count(),
            exec.num_workers(),
        );
    } else {
        eprintln!("{path}: empty graph or --queries 0; scrape reflects the load only");
    }
    print!("{}", td_obs::metrics().registry.render_prometheus());
}

/// `tdx serve`: loads a snapshot, stands the overload-safe serving
/// front-end up in front of it, and drives a seeded time-boxed workload
/// (optionally under the full chaos plan). The run summary goes to stderr;
/// the process-wide metric scrape — now including the `td_server_*`
/// families — goes to stdout, so it pipes clean like `tdx stats`. Exits
/// nonzero if the exactly-once serving invariant did not hold.
fn cmd_serve(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let mut duration_ms = 1500u64;
    let mut clients = 4usize;
    let mut burst = 16usize;
    let mut deadline_ms = 250u64;
    let mut chaos = false;
    let mut seed = 42u64;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| fail(format!("{arg} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--duration-ms" => {
                duration_ms = val().parse().unwrap_or_else(|_| fail("bad --duration-ms"));
            }
            "--clients" => clients = val().parse().unwrap_or_else(|_| fail("bad --clients")),
            "--burst" => burst = val().parse().unwrap_or_else(|_| fail("bad --burst")),
            "--deadline-ms" => {
                deadline_ms = val().parse().unwrap_or_else(|_| fail("bad --deadline-ms"));
            }
            "--chaos" => chaos = true,
            "--seed" => seed = val().parse().unwrap_or_else(|_| fail("bad --seed")),
            other => fail(format!("unknown flag `{other}`")),
        }
    }

    let index = load_index(path).unwrap_or_else(|e| fail(e));
    eprintln!(
        "{path}: serving {} over |V|={} |E|={} ({})",
        index.backend_name(),
        index.graph().num_vertices(),
        index.graph().num_edges(),
        if chaos {
            "full fault plan"
        } else {
            "fault-free"
        },
    );
    let soak = td_server::SoakConfig {
        duration: std::time::Duration::from_millis(duration_ms),
        clients,
        burst,
        client_deadline: std::time::Duration::from_millis(deadline_ms),
        plan: if chaos {
            td_server::FaultPlan::full(seed)
        } else {
            td_server::FaultPlan::none()
        },
        seed,
    };
    // `Box<dyn RoutingIndex>` serves through the fixed-source front-end;
    // live-update storms are a td-server soak concern, not a snapshot one.
    let report = td_server::run_soak_fixed(index, td_server::ServerConfig::default(), &soak);
    let s = &report.stats;
    eprintln!(
        "admitted {} ({} exact, {} approximate, {} failed), rejected {} typed, \
         shed {} expired, {} retries over {} batches",
        s.admitted,
        s.exact,
        s.approximate,
        s.failed,
        s.rejected,
        s.shed_expired,
        s.retries,
        s.batches,
    );
    eprintln!(
        "accepted-request p99 {:.3} ms, rejected-submit p99 {:.3} ms, duplicates {}, hung {}",
        report.p99_nanos as f64 / 1e6,
        report.reject_p99_nanos as f64 / 1e6,
        s.duplicates,
        report.hung,
    );
    print!("{}", td_obs::metrics().registry.render_prometheus());
    if !report.exactly_once() {
        fail("serving invariant violated: not exactly-once (or the run hung)");
    }
    eprintln!("serve: OK (exactly-once held)");
}
