//! Fig. 8 — query efficiency vs the interpolation-point parameter `c`:
//!
//! * panes (a)/(b): CAL with TD-G-tree, TD-basic, TD-H2H;
//! * panes (c)–(h): SF / COL / FLA with TD-G-tree, TD-appro, TD-dp;
//! * left column = travel cost query, right column = cost function query.
//!
//! Because the same index builds also produce Fig. 9's construction-time and
//! memory series, this binary writes `results/fig8_queries.csv` *and*
//! `results/fig9_construction.csv` in one run.
//!
//! Expected shape (paper): TD-dp/TD-appro beat TD-G-tree on every dataset and
//! grow slowly with `c`; TD-basic is orders of magnitude slower than both;
//! TD-H2H is fastest on CAL but cannot scale beyond it.
//!
//! Usage: `cargo run --release -p td-bench --bin exp_fig8 [--scale X] [--pairs N]`

use td_api::Backend;
use td_bench::sweep::run_cell;
use td_bench::{Csv, ExpArgs};
use td_gen::Dataset;

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.25; // sweep default: 15 builds per dataset group
    }
    let cost_queries = args.pairs.min(300);
    let profile_queries = 150;
    let mut q_csv = Csv::new("fig8_queries");
    let mut c_csv = Csv::new("fig9_construction");
    let qh = "dataset,c,method,cost_query_ms,profile_query_ms";
    let ch = "dataset,c,method,construction_s,memory_bytes";

    let groups: [(Dataset, &[Backend]); 4] = [
        (
            Dataset::Cal,
            &[Backend::TdGtree, Backend::TdBasic, Backend::TdH2h],
        ),
        (
            Dataset::Sf,
            &[Backend::TdGtree, Backend::TdAppro, Backend::TdDp],
        ),
        (
            Dataset::Col,
            &[Backend::TdGtree, Backend::TdAppro, Backend::TdDp],
        ),
        (
            Dataset::Fla,
            &[Backend::TdGtree, Backend::TdAppro, Backend::TdDp],
        ),
    ];

    for (dataset, methods) in groups {
        println!("\n=== {} (scale {}) ===", dataset.name(), args.scale);
        println!(
            "{:>2} {:<10} {:>16} {:>20} {:>15} {:>12}",
            "c", "method", "cost query (ms)", "function query (ms)", "construction(s)", "memory"
        );
        td_bench::rule(85);
        for c in 2..=6 {
            for &m in methods {
                let row = run_cell(
                    dataset,
                    c,
                    m,
                    args.scale,
                    args.seed,
                    args.threads,
                    cost_queries,
                    profile_queries,
                    true,
                    args.snapshot_file(&format!("{}_c{}_{}", dataset.name(), c, m.name())),
                );
                println!(
                    "{:>2} {:<10} {:>16.4} {:>20.3} {:>15.1} {:>12}",
                    c,
                    row.method,
                    row.cost_query_ms,
                    row.profile_query_ms,
                    row.construction_s,
                    td_bench::fmt_bytes(row.memory_bytes)
                );
                q_csv.row(
                    qh,
                    format_args!(
                        "{},{},{},{},{}",
                        row.dataset, row.c, row.method, row.cost_query_ms, row.profile_query_ms
                    ),
                );
                c_csv.row(
                    ch,
                    format_args!(
                        "{},{},{},{},{}",
                        row.dataset, row.c, row.method, row.construction_s, row.memory_bytes
                    ),
                );
            }
        }
    }
    println!("\nWrote results/fig8_queries.csv and results/fig9_construction.csv");
}
