//! Fig. 9 — index construction time and memory vs `c` on SF / COL / FLA for
//! TD-G-tree, TD-appro and TD-dp (construction-only: queries are skipped, so
//! this is cheaper than `exp_fig8`, which also emits this figure's data).
//!
//! Expected shape (paper): TD-appro/TD-dp construct ~2× faster than
//! TD-G-tree and stay stable as `c` grows; all memories grow with `c`, with
//! TD-dp/TD-appro comparable to TD-G-tree (the selection keeps them within
//! the budget N).
//!
//! Usage: `cargo run --release -p td-bench --bin exp_fig9 [--scale X]`

use td_api::Backend;
use td_bench::sweep::run_cell;
use td_bench::{Csv, ExpArgs};
use td_gen::Dataset;

fn main() {
    let mut args = ExpArgs::parse();
    if !std::env::args().any(|a| a == "--scale") {
        args.scale = 0.25;
    }
    let mut csv = Csv::new("fig9_construction_only");
    let header = "dataset,c,method,construction_s,memory_bytes";

    for dataset in [Dataset::Sf, Dataset::Col, Dataset::Fla] {
        println!("\n=== {} (scale {}) ===", dataset.name(), args.scale);
        println!(
            "{:>2} {:<10} {:>16} {:>12}",
            "c", "method", "construction(s)", "memory"
        );
        td_bench::rule(50);
        for c in 2..=6 {
            for m in [Backend::TdGtree, Backend::TdAppro, Backend::TdDp] {
                let row = run_cell(
                    dataset,
                    c,
                    m,
                    args.scale,
                    args.seed,
                    args.threads,
                    0,
                    0,
                    false,
                    args.snapshot_file(&format!("{}_c{}_{}", dataset.name(), c, m.name())),
                );
                println!(
                    "{:>2} {:<10} {:>16.1} {:>12}",
                    c,
                    row.method,
                    row.construction_s,
                    td_bench::fmt_bytes(row.memory_bytes)
                );
                csv.row(
                    header,
                    format_args!(
                        "{},{},{},{},{}",
                        row.dataset, row.c, row.method, row.construction_s, row.memory_bytes
                    ),
                );
            }
        }
    }
    println!("\nWrote results/fig9_construction_only.csv");
}
