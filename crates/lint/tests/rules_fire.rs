//! Fixture-driven liveness tests: every rule provably fires, with the exact
//! `(file, line, rule)` it should fire at, and the real workspace stays
//! clean under a self-run.

use std::path::{Path, PathBuf};

use td_lint::{check_workspace, default_root, Diagnostic};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Vec<Diagnostic> {
    check_workspace(&fixture_root(name)).expect("fixture workspace is readable")
}

/// Asserts the fixture produces exactly `want` as `(file, line, rule)`.
fn expect(name: &str, want: &[(&str, u32, &str)]) {
    let got: Vec<(String, u32, &str)> = run(name)
        .into_iter()
        .map(|d| (d.path, d.line, d.rule))
        .collect();
    let want: Vec<(String, u32, &str)> = want
        .iter()
        .map(|&(p, l, r)| (p.to_string(), l, r))
        .collect();
    assert_eq!(got, want, "fixture `{name}`");
}

#[test]
fn hot_panic_fires() {
    expect("hot_panic", &[("demo/src/lib.rs", 5, "hot-panic")]);
}

#[test]
fn hot_alloc_fires() {
    expect("hot_alloc", &[("demo/src/lib.rs", 5, "hot-alloc")]);
}

#[test]
fn hot_index_fires() {
    expect("hot_index", &[("demo/src/lib.rs", 5, "hot-index")]);
}

#[test]
fn hot_obs_fires() {
    expect("hot_obs", &[("demo/src/lib.rs", 5, "hot-obs")]);
}

#[test]
fn unsafe_forbid_fires() {
    expect("unsafe_forbid", &[("demo/src/lib.rs", 1, "unsafe-forbid")]);
}

#[test]
fn unsafe_safety_fires() {
    // The crate is allowlisted (fixture pins.toml), so only the missing
    // SAFETY comment fires — not the crate-root attribute rule.
    expect("unsafe_safety", &[("demo/src/lib.rs", 5, "unsafe-safety")]);
}

#[test]
fn reader_lock_fires() {
    expect("reader_lock", &[("demo/src/lib.rs", 4, "reader-lock")]);
}

#[test]
fn pin_missing_fires() {
    expect("pin_missing", &[("pins.toml", 2, "pin-missing")]);
}

#[test]
fn assert_policy_fires() {
    expect("assert_policy", &[("demo/src/lib.rs", 9, "assert-policy")]);
}

#[test]
fn empty_reason_allow_is_rejected_and_does_not_suppress() {
    expect(
        "allow_reason",
        &[
            ("demo/src/lib.rs", 5, "allow-reason"),
            ("demo/src/lib.rs", 6, "hot-panic"),
        ],
    );
}

#[test]
fn unknown_marker_fires() {
    expect("allow_unknown", &[("demo/src/lib.rs", 3, "allow-unknown")]);
}

#[test]
fn well_formed_allow_suppresses() {
    expect("clean_allow", &[]);
}

#[test]
fn workspace_self_run_is_clean() {
    let diags = check_workspace(&default_root()).expect("workspace is readable");
    let rendered: Vec<String> = diags.iter().map(Diagnostic::to_string).collect();
    assert!(diags.is_empty(), "workspace has violations:\n{rendered:#?}");
}
