#![deny(unsafe_code)]

#[allow(unsafe_code)]
pub fn read_raw(p: *const u32) -> u32 {
    unsafe { *p }
}
