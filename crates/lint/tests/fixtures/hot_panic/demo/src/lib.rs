#![forbid(unsafe_code)]

// td-lint: hot
pub fn cost(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
