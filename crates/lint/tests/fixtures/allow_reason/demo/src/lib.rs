#![forbid(unsafe_code)]

// td-lint: hot
pub fn get(xs: &[f64]) -> f64 {
    // td-lint: allow(hot-panic)
    *xs.first().unwrap()
}
