#![forbid(unsafe_code)]
// td-lint: reader-path

use std::sync::Mutex;
