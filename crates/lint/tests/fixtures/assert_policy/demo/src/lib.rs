#![forbid(unsafe_code)]

// td-lint: hot
pub fn hot_fn(x: u64) -> u64 {
    x + 1
}

pub fn check(x: u64) {
    assert!(x > 0);
}
