#![forbid(unsafe_code)]

// td-lint: hot
pub fn scratch() -> Vec<u64> {
    Vec::new()
}
