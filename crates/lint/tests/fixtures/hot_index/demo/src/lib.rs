#![forbid(unsafe_code)]

// td-lint: hot
pub fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
