#![forbid(unsafe_code)]

// td-lint: hot
pub fn settle(n: u64) -> u64 {
    let m = td_obs::metrics();
    m.queries_total.get() + n
}
