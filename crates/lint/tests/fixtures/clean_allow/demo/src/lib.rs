#![forbid(unsafe_code)]

// td-lint: hot
pub fn get(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    // td-lint: allow(hot-panic) empty input is rejected by the caller
    *xs.first().unwrap()
}
