#![forbid(unsafe_code)]

// td-lint: warm
pub fn f() {}
