#![forbid(unsafe_code)]

pub struct Engine;
