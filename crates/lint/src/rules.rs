//! The five rule families (R1–R5) plus the marker/allow grammar.
//!
//! | id             | family | fires when                                              |
//! |----------------|--------|---------------------------------------------------------|
//! | `hot-panic`    | R1     | panic path (`unwrap`, `expect`, `panic!`, `assert!`, …) in a hot region |
//! | `hot-alloc`    | R1     | allocation idiom (`Vec::new`, `.push`, `.collect`, `.clone`, `format!`, …) in a hot region |
//! | `hot-index`    | R1     | `[]` indexing in a hot function with no `debug_assert!` bound check in that function |
//! | `hot-obs`      | R1     | metrics-registry call (`metrics()`, `phase()`, `.counter()`, `.render_prometheus()`, …) in a hot region — hot code records via scratch-resident `SearchStats` only |
//! | `unsafe-forbid`| R2     | crate root missing `#![forbid(unsafe_code)]` (or `#![deny]` for allowlisted crates) |
//! | `unsafe-safety`| R2     | `unsafe` with no `// SAFETY:` / `# Safety` comment nearby |
//! | `reader-lock`  | R3     | `Mutex`/`RwLock`/`mpsc`/`.lock()` in a `reader-path` file |
//! | `pin-missing`  | R4     | pinned type lacks a `const` Send/Sync assertion anywhere |
//! | `assert-policy`| R5     | non-`debug_` assert outside tests in a file with hot regions |
//! | `allow-reason` | —      | `td-lint: allow(...)` with an empty reason                |
//! | `allow-unknown`| —      | `td-lint: allow(...)` naming an unknown rule              |
//!
//! Markers are ordinary line comments, so they need no build plumbing:
//!
//! * `// td-lint: hot` — the next `fn`/`mod`/`impl` item is a hot region;
//! * `// td-lint: reader-path` — the whole file is reader-side code (R3);
//! * `// td-lint: allow(<rule>) <reason>` — suppresses `<rule>` on the same
//!   line or the line below; the reason is mandatory and non-empty.

use crate::lexer::{lex, Tok, TokKind};
use crate::{Config, Diagnostic, PinCapability};
use std::collections::HashMap;

/// Every rule id an `allow(...)` may name.
pub const KNOWN_RULES: &[&str] = &[
    "hot-panic",
    "hot-alloc",
    "hot-index",
    "hot-obs",
    "unsafe-forbid",
    "unsafe-safety",
    "reader-lock",
    "pin-missing",
    "assert-policy",
];

/// Method names whose call is a panic path in a hot region (R1).
const HOT_PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros that panic (R1 inside hot regions; R5 for the `assert` family
/// elsewhere in hot files).
const HOT_PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "todo",
    "unimplemented",
    "unreachable",
];
/// Method names that allocate or copy containers (R1).
const HOT_ALLOC_METHODS: &[&str] = &[
    "push",
    "collect",
    "to_vec",
    "clone",
    "to_string",
    "to_owned",
    "extend",
];
/// Macros that allocate (R1).
const HOT_ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Registry-side telemetry methods banned in hot regions (R1): they take
/// the registry lock or allocate. Hot code fills scratch-resident
/// `SearchStats` recorders; exports happen per query at the serving layer.
const HOT_OBS_METHODS: &[&str] = &[
    "counter",
    "counter_with",
    "gauge",
    "histogram_seconds",
    "histogram_seconds_with",
    "declare",
    "render_prometheus",
];
/// Catalog entry points banned in hot regions (R1), called bare or
/// path-qualified (`td_obs::metrics()` / `td_obs::phase(...)`).
const HOT_OBS_FNS: &[&str] = &["metrics", "phase"];
/// Container types whose constructors are banned in hot regions (R1).
const HOT_ALLOC_TYPES: &[&str] = &[
    "Vec",
    "Box",
    "String",
    "VecDeque",
    "BinaryHeap",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
];
/// Synchronisation identifiers banned in `reader-path` files (R3).
const READER_BANNED_TYPES: &[&str] = &["Mutex", "RwLock", "mpsc", "Condvar", "Barrier"];
/// Blocking method calls banned in `reader-path` files (R3).
const READER_BANNED_METHODS: &[&str] = &["lock", "read", "write"];

/// A half-open line/token region covered by one `td-lint: hot` marker.
#[derive(Debug)]
struct HotSpan {
    /// Code-token index range `[start, end)` of the item body.
    toks: (usize, usize),
    /// True when the region contains a `debug_assert!` family call —
    /// `hot-index` accepts `[]` indexing only then.
    has_debug_assert: bool,
}

/// One `td-lint: allow(rule) reason` comment.
struct Allow {
    rule: String,
    line: u32,
}

/// Send/Sync capabilities asserted for a type by `const` pin blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssertedCaps {
    pub send: bool,
    pub sync: bool,
}

/// Everything one file contributes: its diagnostics plus the Send/Sync pin
/// assertions it contains (merged across files for R4).
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub pins: HashMap<String, AssertedCaps>,
}

/// Runs all per-file rules over one source file.
///
/// `rel_path` is the `/`-separated path relative to the workspace root —
/// used verbatim in diagnostics and for the crate-root test of R2.
pub fn check_file(rel_path: &str, src: &str, config: &Config) -> FileReport {
    let all = lex(src);
    // Code tokens: everything the compiler would see (comments stripped).
    let code: Vec<&Tok> = all.iter().filter(|t| !t.is_comment()).collect();

    let mut diagnostics = Vec::new();

    // ---- marker & allow grammar --------------------------------------
    let mut reader_path = false;
    let mut hot_marker_toks: Vec<usize> = Vec::new(); // index into `code`
    let mut allows: Vec<Allow> = Vec::new();
    {
        // Walk the full stream so marker comments can be associated with
        // the first code token after them.
        let mut code_idx = 0usize;
        for t in &all {
            if !t.is_comment() {
                code_idx += 1;
                continue;
            }
            if t.kind != TokKind::LineComment {
                continue;
            }
            let Some(body) = marker_body(&t.text) else {
                continue;
            };
            if body == "hot" {
                hot_marker_toks.push(code_idx); // next code token
            } else if body == "reader-path" {
                reader_path = true;
            } else if let Some(rest) = body.strip_prefix("allow(") {
                match rest.split_once(')') {
                    Some((rule, reason)) => {
                        if !KNOWN_RULES.contains(&rule.trim()) {
                            diagnostics.push(Diagnostic::new(
                                rel_path,
                                t.line,
                                "allow-unknown",
                                format!("allow names unknown rule `{}`", rule.trim()),
                            ));
                        } else if reason.trim().is_empty() {
                            diagnostics.push(Diagnostic::new(
                                rel_path,
                                t.line,
                                "allow-reason",
                                format!(
                                    "allow({}) needs a non-empty reason after the `)`",
                                    rule.trim()
                                ),
                            ));
                        } else {
                            allows.push(Allow {
                                rule: rule.trim().to_string(),
                                line: t.line,
                            });
                        }
                    }
                    None => diagnostics.push(Diagnostic::new(
                        rel_path,
                        t.line,
                        "allow-unknown",
                        "malformed allow: expected `td-lint: allow(<rule>) <reason>`".to_string(),
                    )),
                }
            } else {
                diagnostics.push(Diagnostic::new(
                    rel_path,
                    t.line,
                    "allow-unknown",
                    format!("unknown td-lint marker `{body}`"),
                ));
            }
        }
    }
    let allowed = |rule: &str, line: u32| {
        allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    };

    // ---- region discovery --------------------------------------------
    let test_spans = find_test_spans(&code);
    let in_test = |i: usize| test_spans.iter().any(|&(s, e)| i >= s && i < e);

    let mut hot_spans: Vec<HotSpan> = Vec::new();
    for &start in &hot_marker_toks {
        if let Some((s, e)) = item_body_span(&code, start) {
            let has_debug_assert = (s..e).any(|i| {
                code[i].kind == TokKind::Ident
                    && code[i].text.starts_with("debug_assert")
                    && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            });
            hot_spans.push(HotSpan {
                toks: (s, e),
                has_debug_assert,
            });
        }
    }
    let hot_span_of = |i: usize| hot_spans.iter().find(|h| i >= h.toks.0 && i < h.toks.1);
    let file_has_hot = !hot_spans.is_empty();

    // ---- R2a: crate-root unsafe attribute ----------------------------
    if let Some(crate_dir) = crate_root_dir(rel_path) {
        let attr = unsafe_code_attr(&code);
        let want_deny = config.unsafe_allow.iter().any(|c| c == &crate_dir);
        match (want_deny, attr) {
            (false, Some("forbid")) | (true, Some("deny")) | (true, Some("forbid")) => {}
            (false, found) => diagnostics.push(Diagnostic::new(
                rel_path,
                1,
                "unsafe-forbid",
                match found {
                    Some(level) => format!(
                        "crate `{crate_dir}` must carry `#![forbid(unsafe_code)]`, found `#![{level}(unsafe_code)]` (add the crate to the allowlist in pins.toml to permit `deny`)"
                    ),
                    None => format!("crate `{crate_dir}` is missing `#![forbid(unsafe_code)]`"),
                },
            )),
            (true, _) => diagnostics.push(Diagnostic::new(
                rel_path,
                1,
                "unsafe-forbid",
                format!(
                    "allowlisted crate `{crate_dir}` must still carry `#![deny(unsafe_code)]` with scoped `#[allow]`s"
                ),
            )),
        }
    }

    // ---- token-pattern scan ------------------------------------------
    let mut pins: HashMap<String, AssertedCaps> = HashMap::new();
    let bound_fns = collect_bound_fns(&code);

    for i in 0..code.len() {
        let t = code[i];
        let line = t.line;
        match &t.kind {
            TokKind::Punct('.') => {
                // `.name(` — a method call.
                let (Some(name_tok), Some(paren)) = (code.get(i + 1), code.get(i + 2)) else {
                    continue;
                };
                if name_tok.kind != TokKind::Ident || !paren.is_punct('(') {
                    continue;
                }
                let name = name_tok.text.as_str();
                let line = name_tok.line;
                if let Some(_span) = hot_span_of(i) {
                    if HOT_PANIC_METHODS.contains(&name) && !allowed("hot-panic", line) {
                        diagnostics.push(Diagnostic::new(
                            rel_path,
                            line,
                            "hot-panic",
                            format!("`.{name}()` is a panic path inside a hot region"),
                        ));
                    } else if HOT_ALLOC_METHODS.contains(&name) && !allowed("hot-alloc", line) {
                        diagnostics.push(Diagnostic::new(
                            rel_path,
                            line,
                            "hot-alloc",
                            format!("`.{name}()` may allocate inside a hot region"),
                        ));
                    } else if HOT_OBS_METHODS.contains(&name) && !allowed("hot-obs", line) {
                        diagnostics.push(Diagnostic::new(
                            rel_path,
                            line,
                            "hot-obs",
                            format!(
                                "`.{name}()` touches the metrics registry inside a hot \
                                 region; record via scratch-resident `SearchStats` instead"
                            ),
                        ));
                    }
                }
                if reader_path
                    && !in_test(i)
                    && READER_BANNED_METHODS.contains(&name)
                    && !allowed("reader-lock", line)
                {
                    diagnostics.push(Diagnostic::new(
                        rel_path,
                        line,
                        "reader-lock",
                        format!("`.{name}()` call in a reader-path file may block readers"),
                    ));
                }
            }
            TokKind::Ident => {
                let name = t.text.as_str();
                // `name!` — a macro invocation.
                if code.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    let is_panic_macro = HOT_PANIC_MACROS.contains(&name);
                    let is_alloc_macro = HOT_ALLOC_MACROS.contains(&name);
                    if hot_span_of(i).is_some() {
                        if is_panic_macro && !allowed("hot-panic", line) {
                            diagnostics.push(Diagnostic::new(
                                rel_path,
                                line,
                                "hot-panic",
                                format!("`{name}!` is a panic path inside a hot region"),
                            ));
                        } else if is_alloc_macro && !allowed("hot-alloc", line) {
                            diagnostics.push(Diagnostic::new(
                                rel_path,
                                line,
                                "hot-alloc",
                                format!("`{name}!` allocates inside a hot region"),
                            ));
                        }
                    } else if file_has_hot
                        && !in_test(i)
                        && name.starts_with("assert")
                        && is_panic_macro
                        && !allowed("assert-policy", line)
                    {
                        diagnostics.push(Diagnostic::new(
                            rel_path,
                            line,
                            "assert-policy",
                            format!(
                                "`{name}!` in non-test code of a hot file: use `debug_{name}!`"
                            ),
                        ));
                    }
                }
                // `metrics(` / `td_obs::phase(` — catalog entry points lock
                // the registry or read the clock; hot code must not.
                if HOT_OBS_FNS.contains(&name)
                    && hot_span_of(i).is_some()
                    && code.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && (i == 0 || !code[i - 1].is_punct('.'))
                    && !allowed("hot-obs", line)
                {
                    diagnostics.push(Diagnostic::new(
                        rel_path,
                        line,
                        "hot-obs",
                        format!(
                            "`{name}(...)` reaches the metric catalog inside a hot region; \
                             record via scratch-resident `SearchStats` instead"
                        ),
                    ));
                }
                // `Type::ctor(` — a container constructor.
                if HOT_ALLOC_TYPES.contains(&name)
                    && hot_span_of(i).is_some()
                    && code.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    if let Some(ctor) = code.get(i + 3) {
                        if ctor.kind == TokKind::Ident
                            && ["new", "with_capacity", "from", "default"]
                                .contains(&ctor.text.as_str())
                            && !allowed("hot-alloc", ctor.line)
                        {
                            diagnostics.push(Diagnostic::new(
                                rel_path,
                                ctor.line,
                                "hot-alloc",
                                format!(
                                    "`{name}::{}` constructs a container inside a hot region",
                                    ctor.text
                                ),
                            ));
                        }
                    }
                }
                // `unsafe` — R2b: SAFETY comment nearby.
                if name == "unsafe"
                    && !unsafe_is_documented(&all, line)
                    && !allowed("unsafe-safety", line)
                {
                    diagnostics.push(Diagnostic::new(
                        rel_path,
                        line,
                        "unsafe-safety",
                        "`unsafe` without a `// SAFETY:` (or `/// # Safety`) comment just above"
                            .to_string(),
                    ));
                }
                // Reader-path type bans.
                if reader_path
                    && !in_test(i)
                    && READER_BANNED_TYPES.contains(&name)
                    && !allowed("reader-lock", line)
                {
                    diagnostics.push(Diagnostic::new(
                        rel_path,
                        line,
                        "reader-lock",
                        format!("`{name}` in a reader-path file: readers must stay lock-free"),
                    ));
                }
                // Pin assertions: `bound_fn::<Type, ...>(`.
                if let Some(&caps) = bound_fns.get(name) {
                    if code.get(i + 1).is_some_and(|n| n.is_punct(':'))
                        && code.get(i + 2).is_some_and(|n| n.is_punct(':'))
                        && code.get(i + 3).is_some_and(|n| n.is_punct('<'))
                    {
                        for ty in generic_arg_idents(&code, i + 3) {
                            let entry = pins.entry(ty).or_default();
                            entry.send |= caps.send;
                            entry.sync |= caps.sync;
                        }
                    }
                }
            }
            TokKind::Punct('[') => {
                // Index expression: `expr[...]` — previous code token is an
                // identifier, `]` or `)`. Attributes (`#[...]`) and macro
                // brackets (`vec![...]`) are preceded by `#`/`!` instead.
                let is_index = i > 0
                    && matches!(
                        code[i - 1].kind,
                        TokKind::Ident | TokKind::Punct(']') | TokKind::Punct(')')
                    );
                if !is_index {
                    continue;
                }
                if let Some(span) = hot_span_of(i) {
                    if !span.has_debug_assert && !allowed("hot-index", line) {
                        diagnostics.push(Diagnostic::new(
                            rel_path,
                            line,
                            "hot-index",
                            "`[]` indexing in a hot function with no `debug_assert!` bound check"
                                .to_string(),
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    FileReport { diagnostics, pins }
}

/// The body of a `td-lint:` marker comment, if `text` is one.
fn marker_body(text: &str) -> Option<&str> {
    let t = text.trim_start_matches('/').trim();
    t.strip_prefix("td-lint:").map(str::trim)
}

/// `Some(crate_dir)` when `rel_path` is a library crate root (`src/lib.rs`).
fn crate_root_dir(rel_path: &str) -> Option<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["src", "lib.rs"] => Some(".".to_string()),
        [.., dir, "src", "lib.rs"] => Some((*dir).to_string()),
        _ => None,
    }
}

/// The level of a crate-level `#![forbid|deny(unsafe_code)]`, if present.
fn unsafe_code_attr(code: &[&Tok]) -> Option<&'static str> {
    for i in 0..code.len() {
        if code[i].is_punct('#')
            && code.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && code.get(i + 2).is_some_and(|t| t.is_punct('['))
            && code.get(i + 4).is_some_and(|t| t.is_punct('('))
            && code.get(i + 5).is_some_and(|t| t.is_ident("unsafe_code"))
        {
            if code.get(i + 3).is_some_and(|t| t.is_ident("forbid")) {
                return Some("forbid");
            }
            if code.get(i + 3).is_some_and(|t| t.is_ident("deny")) {
                return Some("deny");
            }
        }
    }
    None
}

/// Is there a `SAFETY:`/`# Safety` comment within the 10 lines above `line`
/// (or on it)?
fn unsafe_is_documented(all: &[Tok], line: u32) -> bool {
    all.iter().any(|t| {
        t.is_comment()
            && t.line <= line
            && t.line + 10 >= line
            && (t.text.contains("SAFETY:") || t.text.contains("# Safety"))
    })
}

/// Code-token spans of `#[cfg(test)]` items and `#[test]` functions.
fn find_test_spans(code: &[&Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let is_cfg_test = code[i].is_punct('#')
            && code.get(i + 1).is_some_and(|t| t.is_punct('['))
            && code.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && code.get(i + 3).is_some_and(|t| t.is_punct('('))
            && code.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && code.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && code.get(i + 6).is_some_and(|t| t.is_punct(']'));
        let is_test_attr = code[i].is_punct('#')
            && code.get(i + 1).is_some_and(|t| t.is_punct('['))
            && code.get(i + 2).is_some_and(|t| t.is_ident("test"))
            && code.get(i + 3).is_some_and(|t| t.is_punct(']'));
        if is_cfg_test || is_test_attr {
            if let Some((s, e)) = item_body_span(code, i) {
                spans.push((s, e));
                i = e;
                continue;
            }
        }
        i += 1;
    }
    spans
}

/// The `{ ... }` body span of the next `fn`/`mod`/`impl` item at or after
/// code-token `start`: `(open_brace_idx, close_brace_idx + 1)`.
fn item_body_span(code: &[&Tok], start: usize) -> Option<(usize, usize)> {
    // Find the item keyword (skipping attributes, visibility, `const`, ...).
    let mut i = start;
    while i < code.len() {
        if matches!(code[i].kind, TokKind::Ident)
            && matches!(code[i].text.as_str(), "fn" | "mod" | "impl" | "trait")
        {
            break;
        }
        i += 1;
    }
    if i >= code.len() {
        return None;
    }
    // Find the opening brace at paren depth 0 (stop at `;` — a bodyless
    // declaration such as `mod x;` or a trait method signature).
    let mut paren = 0i32;
    let mut j = i + 1;
    let open = loop {
        let t = code.get(j)?;
        match t.kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => paren -= 1,
            TokKind::Punct('{') if paren == 0 => break j,
            TokKind::Punct(';') if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    };
    // Match braces.
    let mut depth = 0i32;
    for (k, t) in code.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, k + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// `const fn`s whose type parameter carries `Send`/`Sync` bounds — the pin
/// helpers of R4: `const fn pin<T: Send + Sync>() {}`. Plain (non-`const`)
/// helpers do not count: a pin must fail *compilation*, not a test run.
fn collect_bound_fns(code: &[&Tok]) -> HashMap<String, AssertedCaps> {
    let mut out = HashMap::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") || i == 0 || !code[i - 1].is_ident("const") {
            continue;
        }
        let Some(name) = code.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !code.get(i + 2).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        // Scan the generic parameter list for Send/Sync bounds.
        let mut caps = AssertedCaps::default();
        let mut depth = 0i32;
        for t in code.iter().skip(i + 2) {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident if t.text == "Send" => caps.send = true,
                TokKind::Ident if t.text == "Sync" => caps.sync = true,
                _ => {}
            }
        }
        if caps.send || caps.sync {
            out.insert(name.text.clone(), caps);
        }
    }
    out
}

/// The identifiers inside a turbofish `::<A, B, ...>` starting at the `<`
/// token index (path segments included — pins match on the type name).
fn generic_arg_idents(code: &[&Tok], open: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    for t in code.iter().skip(open) {
        match t.kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokKind::Ident => out.push(t.text.clone()),
            _ => {}
        }
    }
    out
}

/// R4 over the whole workspace: every type in `config.pins` must be covered
/// by merged assertions.
pub fn check_pins(
    config: &Config,
    asserted: &HashMap<String, AssertedCaps>,
    pins_path: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pin in &config.pins {
        let got = asserted.get(&pin.type_name).copied().unwrap_or_default();
        let missing = match pin.capability {
            PinCapability::Send => !got.send,
            PinCapability::Sync => !got.sync,
            PinCapability::SendSync => !got.send || !got.sync,
        };
        if missing {
            out.push(Diagnostic::new(
                pins_path,
                pin.line,
                "pin-missing",
                format!(
                    "type `{}` has no `const` {} assertion anywhere in the workspace",
                    pin.type_name,
                    pin.capability.describe()
                ),
            ));
        }
    }
    out
}
