#![forbid(unsafe_code)]
//! # td-lint — in-repo static analysis for the invariants the benches prove
//!
//! The performance story of this workspace (52 µs exact queries, 0
//! allocations per warmed query, lock-free readers) rests on source-level
//! invariants the compiler does not check: frozen query loops must stay off
//! panic and allocation paths, `unsafe` stays confined and documented,
//! reader-side files never block, and the Send/Sync contracts of shared
//! index types stay pinned. `td-lint` makes those invariants machine-checked
//! with a dependency-free analyzer (hand-rolled lexer — this container has
//! no crates.io access, so no `syn`/dylint):
//!
//! ```text
//! cargo run -p td-lint --release -- check
//! ```
//!
//! Rules (R1–R5), the marker grammar, and the escape hatch are documented in
//! [`rules`] and `crates/lint/README.md`. Configuration — the Send/Sync pin
//! registry and the unsafe-crate allowlist — lives in `crates/lint/pins.toml`
//! (fixture corpora place a `pins.toml` at their own root instead).

pub mod lexer;
pub mod rules;

use rules::AssertedCaps;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One violation: `path:line: rule: message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// `/`-separated path relative to the checked root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`hot-panic`, `unsafe-forbid`, ... — see [`rules::KNOWN_RULES`]).
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(path: &str, line: u32, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Capability a pinned type must have asserted (R4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinCapability {
    Send,
    Sync,
    SendSync,
}

impl PinCapability {
    pub(crate) fn describe(self) -> &'static str {
        match self {
            PinCapability::Send => "Send",
            PinCapability::Sync => "Sync",
            PinCapability::SendSync => "Send + Sync",
        }
    }
}

/// One `Type = "send+sync"` entry of the `[pins]` table.
#[derive(Clone, Debug)]
pub struct Pin {
    pub type_name: String,
    pub capability: PinCapability,
    /// Line of the entry inside pins.toml (for diagnostics).
    pub line: u32,
}

/// Parsed pins.toml: the pin registry plus the unsafe-crate allowlist.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// `[pins]`: public index/scratch types requiring a `const` Send/Sync
    /// assertion somewhere in the workspace.
    pub pins: Vec<Pin>,
    /// `[unsafe] allow = [...]`: crate dirs permitted `#![deny(unsafe_code)]`
    /// (with scoped `#[allow]`s) instead of `#![forbid(unsafe_code)]`.
    pub unsafe_allow: Vec<String>,
}

impl Config {
    /// Parses the tiny TOML subset pins.toml uses: `[section]` headers,
    /// `key = "value"` and `key = ["a", "b"]` lines, `#` comments. Errors
    /// carry the offending line.
    pub fn parse(src: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("pins.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match section.as_str() {
                "pins" => {
                    let cap = value.trim_matches('"');
                    let capability = match cap {
                        "send" => PinCapability::Send,
                        "sync" => PinCapability::Sync,
                        "send+sync" | "sync+send" => PinCapability::SendSync,
                        other => {
                            return Err(format!(
                                "pins.toml:{lineno}: unknown capability `{other}` (use \"send\", \"sync\" or \"send+sync\")"
                            ))
                        }
                    };
                    config.pins.push(Pin {
                        type_name: key.to_string(),
                        capability,
                        line: lineno,
                    });
                }
                "unsafe" if key == "allow" => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| {
                            format!("pins.toml:{lineno}: `allow` must be a [\"...\"] list")
                        })?;
                    for item in inner.split(',') {
                        let item = item.trim().trim_matches('"');
                        if !item.is_empty() {
                            config.unsafe_allow.push(item.to_string());
                        }
                    }
                }
                other => {
                    return Err(format!(
                        "pins.toml:{lineno}: unknown section `[{other}]` or key `{key}`"
                    ))
                }
            }
        }
        Ok(config)
    }
}

/// Where a root's pins.toml may live, in priority order.
fn config_path(root: &Path) -> Option<PathBuf> {
    [root.join("crates/lint/pins.toml"), root.join("pins.toml")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", "node_modules"];

/// All `.rs` files under `root`, sorted, as (absolute, `/`-relative) pairs.
///
/// `fixtures/` directories are skipped everywhere: the fixture corpus under
/// `crates/lint/tests/fixtures` exists to *contain* violations.
fn discover(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| e.to_string())?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((path, rel));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs every rule over the workspace rooted at `root`. The returned
/// diagnostics are sorted by `(path, line, rule)`; empty means clean.
pub fn check_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let (config, pins_rel) = match config_path(root) {
        Some(path) => {
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            (Config::parse(&src)?, rel)
        }
        None => (Config::default(), "pins.toml".to_string()),
    };

    let mut diagnostics = Vec::new();
    let mut asserted: HashMap<String, AssertedCaps> = HashMap::new();
    for (path, rel) in discover(root)? {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let report = rules::check_file(&rel, &src, &config);
        diagnostics.extend(report.diagnostics);
        for (ty, caps) in report.pins {
            let entry = asserted.entry(ty).or_default();
            entry.send |= caps.send;
            entry.sync |= caps.sync;
        }
    }
    diagnostics.extend(rules::check_pins(&config, &asserted, &pins_rel));
    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(diagnostics)
}

/// The workspace root this binary was compiled in — the default `check`
/// target.
pub fn default_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_pins_and_allowlist() {
        let cfg = Config::parse(
            "# registry\n[pins]\nPlfArena = \"send+sync\"\nScratch = \"send\"\n\n[unsafe]\nallow = [\"api\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.pins.len(), 2);
        assert_eq!(cfg.pins[0].type_name, "PlfArena");
        assert_eq!(cfg.pins[0].capability, PinCapability::SendSync);
        assert_eq!(cfg.pins[1].capability, PinCapability::Send);
        assert_eq!(cfg.unsafe_allow, vec!["api".to_string()]);
    }

    #[test]
    fn config_rejects_unknown_capability() {
        assert!(Config::parse("[pins]\nX = \"fast\"\n").is_err());
    }

    #[test]
    fn diagnostics_render_as_file_line_rule() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "hot-panic", "msg".into());
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7: hot-panic: msg");
    }
}
