//! A minimal hand-rolled Rust lexer — just enough token structure for the
//! rule checks in [`crate::rules`].
//!
//! No crates.io access means no `syn`/`proc-macro2`; fortunately the rules
//! only need four things a full parser would give us:
//!
//! 1. **comments vs code** — markers (`// td-lint: ...`), `// SAFETY:`
//!    comments and banned identifiers inside string literals must not be
//!    confused with live code;
//! 2. **identifiers with line numbers** — every diagnostic is `file:line`;
//! 3. **punctuation adjacency** — `.unwrap(` is a method call, `"unwrap"`
//!    is data, `unwrap:` is a field name;
//! 4. **brace matching** — a `// td-lint: hot` marker covers the next
//!    `fn`/`mod`/`impl` item's body, found by matching `{ ... }`.
//!
//! The lexer is intentionally forgiving: unknown characters become opaque
//! punct tokens, and malformed input never panics — worst case a file is
//! tokenized oddly and a human reads a strange diagnostic, which is the
//! right failure mode for a lint that gates CI.

/// What a token is. Only the distinctions the rules consume are kept.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident,
    /// `// ...` comment (doc comments included); text excludes the `//`.
    LineComment,
    /// `/* ... */` comment (possibly spanning lines); text is the interior.
    BlockComment,
    /// String/char/byte literal of any flavour; contents are opaque.
    Literal,
    /// Lifetime such as `'a` (kept distinct so `'a` is never a char literal).
    Lifetime,
    /// Single punctuation character (`.`, `(`, `[`, `!`, `#`, ...).
    Punct(char),
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// Identifier name or comment text; empty for punctuation/literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True for either comment flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Tokenizes `src`. Never fails: anything unrecognised is passed through as
/// punctuation.
pub fn lex(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let tok_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: src[start..end].to_string(),
                    line: tok_line,
                });
            }
            '"' => {
                let tok_line = line;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            'r' | 'b' if starts_raw_string(&src[i..]) => {
                let tok_line = line;
                // Skip the r/br/b prefix, count the `#`s, find `"`.
                while i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'"' {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < bytes.len() && bytes[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'"' {
                    i += 1;
                    // Scan for `"` followed by `hashes` `#`s.
                    'scan: while i < bytes.len() {
                        if bytes[i] == b'\n' {
                            line += 1;
                        } else if bytes[i] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && bytes.get(i + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: tok_line,
                });
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
                let rest = &bytes[i + 1..];
                let is_lifetime = match rest.first() {
                    Some(&c2) if (c2 as char).is_alphabetic() || c2 == b'_' => {
                        // `'a'` is a char literal; `'ab` is a lifetime.
                        rest.get(1) != Some(&b'\'')
                    }
                    _ => false,
                };
                if is_lifetime {
                    i += 1;
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let tok_line = line;
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                // Unterminated char literal; bail at EOL.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: tok_line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_alphanumeric() || b == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numeric literal (possibly with underscores, dots, suffix
                // letters, exponent signs). Consumed greedily and dropped —
                // no rule looks at numbers. A trailing range like `0..n` is
                // kept intact because `..` starts with a second dot.
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric()
                        || b == '_'
                        || (b == '.' && bytes.get(i + 1).is_some_and(|&n| n.is_ascii_digit()))
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            }
            c => {
                toks.push(Tok {
                    kind: TokKind::Punct(c),
                    text: String::new(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    toks
}

/// Does `rest` begin a raw (byte) string literal: `r"`, `r#`, `br"`, `b"`...?
fn starts_raw_string(rest: &str) -> bool {
    let b = rest.as_bytes();
    match b.first() {
        Some(b'r') => matches!(b.get(1), Some(b'"') | Some(b'#')),
        Some(b'b') => match b.get(1) {
            Some(b'"') => true,
            Some(b'r') => matches!(b.get(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_idents_are_separated() {
        let toks = lex("let x = \"unwrap()\"; // td-lint: hot\nfoo.unwrap();");
        assert!(toks.iter().any(|t| t.is_ident("let")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::LineComment && t.text.contains("td-lint: hot")));
        // The "unwrap()" inside the string must NOT produce an ident.
        let unwraps: Vec<&Tok> = toks.iter().filter(|t| t.is_ident("unwrap")).collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal));
        // The char literal 'x' must not swallow the closing brace.
        assert!(toks.iter().any(|t| t.is_punct('}')));
    }

    #[test]
    fn raw_strings_are_opaque() {
        let toks = lex("let s = r#\"panic! assert! Mutex\"#; done");
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(!toks.iter().any(|t| t.is_ident("Mutex")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ live");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Ident).count(),
            1,
            "only `live` is code"
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"x\ny\"\nb");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn numeric_range_is_not_swallowed() {
        let toks = lex("for i in 0..n { arr[i]; }");
        assert!(toks.iter().any(|t| t.is_ident("n")));
        assert!(toks.iter().any(|t| t.is_punct('[')));
    }
}
