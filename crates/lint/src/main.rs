#![forbid(unsafe_code)]
// The CLI's whole job is printing diagnostics.
#![allow(clippy::print_stdout)]
//! `td-lint` command line: `td-lint check [--root <path>]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: td-lint check [--root <workspace-root>]

Checks every .rs file under the root against the project rules R1-R5
(hot-path purity, unsafe hygiene, reader-path lock discipline, Send/Sync
pin registry, assert policy). See crates/lint/README.md.";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command != "check" {
        eprintln!("td-lint: unknown command `{command}`\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("td-lint: --root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("td-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(td_lint::default_root);
    match td_lint::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("td-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("td-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("td-lint: {e}");
            ExitCode::from(2)
        }
    }
}
