#![forbid(unsafe_code)]
//! # td-gen — synthetic road networks, travel-time profiles and workloads
//!
//! The paper evaluates on five real DIMACS road networks (CAL, SF, COL, FLA,
//! W-USA). Those files are not available in this environment, so this crate
//! generates **road-like** synthetic networks that preserve the two structural
//! properties every algorithm in the paper depends on:
//!
//! 1. *sparsity* — directed `m/n ≈ 2.0–2.5`, exactly the band of the paper's
//!    datasets (Table 2), achieved as a random spanning tree of a jittered
//!    grid plus a small fraction of extra local edges;
//! 2. *small treewidth/treeheight* under min-degree elimination — a
//!    consequence of (1) plus edge locality; `exp_table2` reports the achieved
//!    `h(T_G)`/`w(T_G)` next to the paper's.
//!
//! Travel-time profiles follow the published setting (`c` interpolation points
//! per edge per day, FIFO, morning/evening rush hours), and workloads follow
//! §5: 1,000 random vertex pairs × 10 uniformly spaced departure times.
//!
//! Everything is seeded and deterministic.

pub mod dataset;
pub mod network;
pub mod profiles;
pub mod random_graph;
pub mod workload;

pub use dataset::{Dataset, DatasetSpec};
pub use network::{RoadNetwork, RoadNetworkConfig};
pub use profiles::ProfileConfig;
pub use workload::{Query, Workload, WorkloadConfig};
