//! Query workload generation (§5 of the paper).
//!
//! "We first randomly choose 1,000 pairs of vertices and uniformly generate
//! the query time in 10 different time intervals, thus we have 10,000 queries
//! for each dataset."

use rand::prelude::*;
use rand::rngs::StdRng;
use td_graph::VertexId;
use td_plf::DAY;

/// One shortest-path query `Q(s, d, t)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Query {
    /// Source vertex.
    pub source: VertexId,
    /// Destination vertex.
    pub destination: VertexId,
    /// Departure time (seconds from midnight).
    pub depart: f64,
}

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of random vertex pairs (paper: 1,000).
    pub pairs: usize,
    /// Number of departure-time intervals per pair (paper: 10).
    pub times_per_pair: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pairs: 1000,
            times_per_pair: 10,
            seed: 77,
        }
    }
}

/// A generated workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// All queries, pair-major (`pairs × times_per_pair` entries).
    pub queries: Vec<Query>,
}

impl Workload {
    /// Generates the paper's workload over `n` vertices.
    pub fn generate(n: usize, cfg: &WorkloadConfig) -> Workload {
        assert!(n >= 2, "need at least two vertices to query");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut queries = Vec::with_capacity(cfg.pairs * cfg.times_per_pair);
        let interval = DAY / cfg.times_per_pair.max(1) as f64;
        for _ in 0..cfg.pairs {
            let s = rng.gen_range(0..n) as VertexId;
            let mut d = rng.gen_range(0..n) as VertexId;
            while d == s {
                d = rng.gen_range(0..n) as VertexId;
            }
            for k in 0..cfg.times_per_pair {
                // Uniform within the k-th of 10 intervals.
                let t = k as f64 * interval + rng.gen_range(0.0..interval);
                queries.push(Query {
                    source: s,
                    destination: d,
                    depart: t,
                });
            }
        }
        Workload { queries }
    }

    /// The distinct `(s, d)` pairs, in generation order.
    pub fn pairs(&self) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for q in &self.queries {
            if out.last() != Some(&(q.source, q.destination)) {
                out.push((q.source, q.destination));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_pairs_times_intervals_queries() {
        let w = Workload::generate(
            100,
            &WorkloadConfig {
                pairs: 50,
                times_per_pair: 10,
                seed: 1,
            },
        );
        assert_eq!(w.queries.len(), 500);
        assert_eq!(w.pairs().len(), 50);
    }

    #[test]
    fn departure_times_are_stratified() {
        let w = Workload::generate(
            10,
            &WorkloadConfig {
                pairs: 1,
                times_per_pair: 10,
                seed: 3,
            },
        );
        let interval = DAY / 10.0;
        for (k, q) in w.queries.iter().enumerate() {
            assert!(q.depart >= k as f64 * interval);
            assert!(q.depart < (k + 1) as f64 * interval);
        }
    }

    #[test]
    fn no_self_queries() {
        let w = Workload::generate(2, &WorkloadConfig::default());
        for q in &w.queries {
            assert_ne!(q.source, q.destination);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(50, &cfg);
        let b = Workload::generate(50, &cfg);
        assert_eq!(a.queries, b.queries);
    }
}
