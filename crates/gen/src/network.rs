//! Road-like network topology generation.
//!
//! Topology = random spanning tree of a jittered `rows × cols` grid, plus a
//! controlled fraction of the remaining grid edges and a few longer "arterial"
//! edges. Every undirected road becomes a symmetric pair of directed edges, as
//! in the paper's datasets (Fig. 1 caption: `w_{u,v}(t) = w_{v,u}(t)`).
//!
//! The resulting graphs sit in the paper's structural band: directed
//! `m/n ≈ 2.0–2.5` and small treewidth under min-degree elimination (roads are
//! locally connected and globally tree-like).

use rand::prelude::*;
use rand::rngs::StdRng;
use td_graph::{GraphBuilder, TdGraph, VertexId};
use td_plf::Plf;

/// Configuration of the topology generator.
#[derive(Clone, Debug)]
pub struct RoadNetworkConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Fraction of non-tree grid edges to keep, relative to `n`
    /// (`0.03` reproduces CAL's `m/n≈2.06`, `0.25` the denser datasets).
    pub extra_edge_fraction: f64,
    /// Number of longer arterial edges (connecting vertices 2–4 grid steps
    /// apart), relative to `n`.
    pub arterial_fraction: f64,
    /// Grid cell size in metres.
    pub cell_metres: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig {
            rows: 64,
            cols: 64,
            extra_edge_fraction: 0.2,
            arterial_fraction: 0.02,
            cell_metres: 250.0,
            seed: 42,
        }
    }
}

/// A generated road network: topology (with free-flow costs as constant PLFs
/// until [`crate::profiles`] replaces them) plus planar coordinates, which the
/// TD-G-tree partitioner uses.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    /// The graph. Weights are free-flow constants until profiles are applied.
    pub graph: TdGraph,
    /// Vertex coordinates in metres.
    pub coords: Vec<(f64, f64)>,
    /// Free-flow travel cost (seconds) per undirected road, indexed like
    /// `roads`.
    pub base_costs: Vec<f64>,
    /// Undirected road list.
    pub roads: Vec<(VertexId, VertexId)>,
}

impl RoadNetwork {
    /// Generates a network from `cfg`. Deterministic in `cfg.seed`.
    pub fn generate(cfg: &RoadNetworkConfig) -> RoadNetwork {
        assert!(cfg.rows >= 2 && cfg.cols >= 2, "need at least a 2x2 grid");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (rows, cols) = (cfg.rows, cfg.cols);
        let n = rows * cols;
        let at = |r: usize, c: usize| (r * cols + c) as VertexId;

        // Jittered coordinates.
        let coords: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let r = (i / cols) as f64;
                let c = (i % cols) as f64;
                let jx: f64 = rng.gen_range(-0.3..0.3);
                let jy: f64 = rng.gen_range(-0.3..0.3);
                ((c + jx) * cfg.cell_metres, (r + jy) * cfg.cell_metres)
            })
            .collect();

        // All 4-adjacency grid edges.
        let mut grid_edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(2 * n);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    grid_edges.push((at(r, c), at(r, c + 1)));
                }
                if r + 1 < rows {
                    grid_edges.push((at(r, c), at(r + 1, c)));
                }
            }
        }

        // Random spanning tree: Kruskal over randomly weighted grid edges.
        grid_edges.shuffle(&mut rng);
        let mut dsu = Dsu::new(n);
        let mut roads: Vec<(VertexId, VertexId)> = Vec::with_capacity(n + n / 4);
        let mut leftovers: Vec<(VertexId, VertexId)> = Vec::new();
        for &(u, v) in &grid_edges {
            if dsu.union(u as usize, v as usize) {
                roads.push((u, v));
            } else {
                leftovers.push((u, v));
            }
        }
        debug_assert_eq!(roads.len(), n - 1);

        // Extra local edges from the leftovers.
        let extra = ((n as f64) * cfg.extra_edge_fraction).round() as usize;
        let extra = extra.min(leftovers.len());
        roads.extend(leftovers.into_iter().take(extra));

        // Arterial edges: connect vertices 2–4 grid steps apart (fast roads).
        let n_arterial = ((n as f64) * cfg.arterial_fraction).round() as usize;
        let mut arterials: Vec<(VertexId, VertexId)> = Vec::with_capacity(n_arterial);
        let mut attempts = 0;
        while arterials.len() < n_arterial && attempts < n_arterial * 20 {
            attempts += 1;
            let r = rng.gen_range(0..rows);
            let c = rng.gen_range(0..cols);
            let dr = rng.gen_range(-4i64..=4);
            let dc = rng.gen_range(-4i64..=4);
            if dr.abs() + dc.abs() < 2 {
                continue;
            }
            let (r2, c2) = (r as i64 + dr, c as i64 + dc);
            if r2 < 0 || c2 < 0 || r2 >= rows as i64 || c2 >= cols as i64 {
                continue;
            }
            let (u, v) = (at(r, c), at(r2 as usize, c2 as usize));
            if u != v {
                arterials.push((u.min(v), u.max(v)));
            }
        }
        arterials.sort_unstable();
        arterials.dedup();
        roads.extend(arterials.iter().copied());

        // Deduplicate roads (arterials may coincide with grid edges).
        for r in &mut roads {
            if r.0 > r.1 {
                *r = (r.1, r.0);
            }
        }
        roads.sort_unstable();
        roads.dedup();

        // Free-flow costs from Euclidean length; arterials are faster.
        let mut base_costs = Vec::with_capacity(roads.len());
        let mut builder = GraphBuilder::new(n);
        for &(u, v) in &roads {
            let (x0, y0) = coords[u as usize];
            let (x1, y1) = coords[v as usize];
            let dist = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt().max(10.0);
            let speed = if dist > 1.5 * cfg.cell_metres {
                // long edge: arterial, ~60 km/h
                16.7
            } else {
                // local street, ~36 km/h with some variety
                rng.gen_range(8.0..12.0)
            };
            let cost = dist / speed;
            base_costs.push(cost);
            builder
                .bidirectional(u, v, Plf::constant(cost))
                .expect("generated edges are valid");
        }

        RoadNetwork {
            graph: builder.build(),
            coords,
            base_costs,
            roads,
        }
    }
}

/// Disjoint-set union for the spanning tree.
struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Returns true when the two sets were merged (i.e. the edge is a tree edge).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_network_is_connected() {
        let net = RoadNetwork::generate(&RoadNetworkConfig {
            rows: 20,
            cols: 25,
            ..Default::default()
        });
        assert_eq!(net.graph.num_vertices(), 500);
        assert!(net.graph.is_connected());
    }

    #[test]
    fn edge_density_tracks_extra_fraction() {
        let sparse = RoadNetwork::generate(&RoadNetworkConfig {
            rows: 30,
            cols: 30,
            extra_edge_fraction: 0.03,
            arterial_fraction: 0.0,
            ..Default::default()
        });
        let n = sparse.graph.num_vertices() as f64;
        let ratio = sparse.graph.num_edges() as f64 / n;
        assert!((1.9..2.2).contains(&ratio), "sparse directed m/n = {ratio}");

        let dense = RoadNetwork::generate(&RoadNetworkConfig {
            rows: 30,
            cols: 30,
            extra_edge_fraction: 0.25,
            arterial_fraction: 0.0,
            ..Default::default()
        });
        let ratio = dense.graph.num_edges() as f64 / n;
        assert!((2.3..2.6).contains(&ratio), "dense directed m/n = {ratio}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = RoadNetworkConfig {
            rows: 12,
            cols: 12,
            seed: 7,
            ..Default::default()
        };
        let a = RoadNetwork::generate(&cfg);
        let b = RoadNetwork::generate(&cfg);
        assert_eq!(a.roads, b.roads);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let c = RoadNetwork::generate(&RoadNetworkConfig { seed: 8, ..cfg });
        assert_ne!(a.roads, c.roads);
    }

    #[test]
    fn roads_are_deduplicated_and_symmetric() {
        let net = RoadNetwork::generate(&RoadNetworkConfig {
            rows: 10,
            cols: 10,
            ..Default::default()
        });
        assert_eq!(net.graph.num_edges(), 2 * net.roads.len());
        for &(u, v) in &net.roads {
            assert!(u < v);
            assert!(net.graph.find_edge(u, v).is_some());
            assert!(net.graph.find_edge(v, u).is_some());
        }
    }

    #[test]
    fn base_costs_are_positive_and_plausible() {
        let net = RoadNetwork::generate(&RoadNetworkConfig::default());
        for &c in &net.base_costs {
            assert!(c > 0.0 && c < 600.0, "cost {c} out of plausible range");
        }
    }
}
