//! Named datasets mirroring the paper's Table 2.
//!
//! The paper's five DIMACS networks are substituted by synthetic road-like
//! analogues (see crate docs and DESIGN.md §4). Sizes are scaled down so the
//! whole evaluation runs on one developer machine; relative order, sparsity
//! band and the per-dataset shortcut budgets `N` (scaled by vertex ratio) are
//! preserved. `scale` multiplies the vertex counts for larger runs.

use crate::network::{RoadNetwork, RoadNetworkConfig};
use crate::profiles::{apply_profiles, ProfileConfig};
use td_graph::TdGraph;

/// The paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// California (paper: 21,048 V / 43,386 E, h=224, w=18, N=10M).
    Cal,
    /// San Francisco (paper: 321,270 V / 800,172 E, h=529, w=105, N=20M).
    Sf,
    /// Colorado (paper: 435,666 V / 1,057,066 E, h=511, w=122, N=50M).
    Col,
    /// Florida (paper: 1,070,376 V / 2,712,798 E, h=706, w=89, N=100M).
    Fla,
    /// Western USA (paper: 6,262,104 V / 15,248,146 E, h=1041, w=386, N=200M).
    WUsa,
}

impl Dataset {
    /// All datasets in the paper's order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Cal,
        Dataset::Sf,
        Dataset::Col,
        Dataset::Fla,
        Dataset::WUsa,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Cal => "CAL",
            Dataset::Sf => "SF",
            Dataset::Col => "COL",
            Dataset::Fla => "FLA",
            Dataset::WUsa => "W-USA",
        }
    }

    /// The paper's published statistics `(vertices, edges, h, w, N)`.
    pub fn paper_stats(&self) -> (usize, usize, usize, usize, usize) {
        match self {
            Dataset::Cal => (21_048, 43_386, 224, 18, 10_000_000),
            Dataset::Sf => (321_270, 800_172, 529, 105, 20_000_000),
            Dataset::Col => (435_666, 1_057_066, 511, 122, 50_000_000),
            Dataset::Fla => (1_070_376, 2_712_798, 706, 89, 100_000_000),
            Dataset::WUsa => (6_262_104, 15_248_146, 1041, 386, 200_000_000),
        }
    }

    /// Default synthetic analogue at `scale = 1.0`.
    pub fn spec(&self) -> DatasetSpec {
        // rows × cols chosen so relative sizes mirror the paper; the extra
        // edge fraction reproduces each dataset's directed m/n ratio.
        let (rows, cols, extra) = match self {
            Dataset::Cal => (72, 72, 0.035),   // ~5.2k, m/n≈2.07
            Dataset::Sf => (100, 100, 0.25),   // 10k, m/n≈2.5
            Dataset::Col => (115, 115, 0.22),  // ~13.2k
            Dataset::Fla => (140, 140, 0.26),  // ~19.6k
            Dataset::WUsa => (180, 180, 0.23), // ~32.4k
        };
        let (_, _, _, _, paper_n_budget) = self.paper_stats();
        let paper_vertices = self.paper_stats().0;
        let ours = rows * cols;
        // Scale the shortcut budget N by the vertex ratio, with a floor.
        let budget = ((paper_n_budget as f64) * (ours as f64) / (paper_vertices as f64))
            .round()
            .max(50_000.0) as usize;
        DatasetSpec {
            dataset: *self,
            rows,
            cols,
            extra_edge_fraction: extra,
            budget,
        }
    }

    /// Builds the dataset's graph with `c` interpolation points per edge at
    /// the given `scale` (vertex count multiplier).
    pub fn build(&self, c: usize, scale: f64, seed: u64) -> TdGraph {
        self.spec().build_scaled(c, scale, seed)
    }
}

/// A concrete synthetic dataset specification.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which paper dataset this mirrors.
    pub dataset: Dataset,
    /// Grid rows at scale 1.
    pub rows: usize,
    /// Grid columns at scale 1.
    pub cols: usize,
    /// Extra-edge fraction reproducing the paper's m/n.
    pub extra_edge_fraction: f64,
    /// Scaled shortcut budget `N` (interpolation points).
    pub budget: usize,
}

impl DatasetSpec {
    /// Number of vertices at `scale`.
    pub fn vertices_at(&self, scale: f64) -> usize {
        let r = ((self.rows as f64) * scale.sqrt()).round() as usize;
        let c = ((self.cols as f64) * scale.sqrt()).round() as usize;
        r.max(2) * c.max(2)
    }

    /// Builds the network topology at `scale`.
    pub fn network(&self, scale: f64, seed: u64) -> RoadNetwork {
        let r = (((self.rows as f64) * scale.sqrt()).round() as usize).max(2);
        let c = (((self.cols as f64) * scale.sqrt()).round() as usize).max(2);
        RoadNetwork::generate(&RoadNetworkConfig {
            rows: r,
            cols: c,
            extra_edge_fraction: self.extra_edge_fraction,
            arterial_fraction: 0.02,
            cell_metres: 250.0,
            seed,
        })
    }

    /// Builds the TD graph at `scale` with `c` interpolation points per edge.
    pub fn build_scaled(&self, c: usize, scale: f64, seed: u64) -> TdGraph {
        let net = self.network(scale, seed);
        apply_profiles(
            &net,
            &ProfileConfig {
                points_per_edge: c,
                seed: seed ^ 0x5eed_0001,
                ..Default::default()
            },
        )
    }

    /// Budget `N` scaled with the dataset.
    pub fn budget_at(&self, scale: f64) -> usize {
        ((self.budget as f64) * scale).round().max(10_000.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_have_specs() {
        for d in Dataset::ALL {
            let s = d.spec();
            assert!(s.vertices_at(1.0) >= 5_000, "{} too small", d.name());
            assert!(s.budget > 0);
        }
    }

    #[test]
    fn cal_density_matches_paper_band() {
        let g = Dataset::Cal.spec().build_scaled(3, 0.05, 1);
        let ratio = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((1.9..2.3).contains(&ratio), "CAL m/n = {ratio}");
    }

    #[test]
    fn scale_changes_vertex_count_quadratically() {
        let s = Dataset::Sf.spec();
        let full = s.vertices_at(1.0);
        let quarter = s.vertices_at(0.25);
        let ratio = full as f64 / quarter as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn build_produces_connected_fifo_graph() {
        let g = Dataset::Cal.build(3, 0.02, 7);
        assert!(g.is_connected());
        assert!(g.edges().iter().all(|e| e.weight.is_fifo()));
    }

    #[test]
    fn names_and_paper_stats_align() {
        assert_eq!(Dataset::Cal.name(), "CAL");
        assert_eq!(Dataset::WUsa.paper_stats().0, 6_262_104);
    }
}
