//! Time-dependent travel-time profile synthesis.
//!
//! The paper (§5, following \[17\]) models each edge weight as a piecewise
//! linear function with `c ∈ {2,…,6}` interpolation points per day ("the
//! travel cost of one road segment could be `c` different values one day").
//! We synthesise FIFO profiles with a daily congestion pattern: free-flow at
//! night, morning and evening rush-hour peaks, mild noise — deterministic per
//! seed.

use crate::network::RoadNetwork;
use rand::prelude::*;
use rand::rngs::StdRng;
use td_graph::TdGraph;
use td_plf::{Plf, Pt, DAY};

/// Configuration of the profile generator.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Interpolation points per edge — the paper's parameter `c` (≥ 1).
    pub points_per_edge: usize,
    /// Peak congestion multiplier at rush hour (≥ 1).
    pub peak_factor: f64,
    /// Relative noise applied to each sampled value.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            points_per_edge: 3,
            peak_factor: 1.8,
            noise: 0.1,
            seed: 4242,
        }
    }
}

/// Daily congestion multiplier: two tent-shaped rush-hour bumps
/// (08:00 and 17:30) over a baseline of 1.
fn congestion(t: f64, peak: f64) -> f64 {
    let bump = |t: f64, center: f64, width: f64| -> f64 {
        let d = (t - center).abs();
        if d >= width {
            0.0
        } else {
            1.0 - d / width
        }
    };
    let h = 3600.0;
    1.0 + (peak - 1.0) * (bump(t, 8.0 * h, 2.5 * h) + bump(t, 17.5 * h, 3.0 * h)).min(1.0)
}

/// Salient daily instants, in sampling-priority order: night baseline, the
/// two rush-hour peaks, then shoulders. A profile with `c` points samples the
/// first `c`, so *every* `c ≥ 2` captures genuine time dependence ("the
/// travel cost of one road segment could be `c` different values one day").
const SALIENT_HOURS: [f64; 6] = [3.0, 8.0, 17.5, 12.0, 6.0, 20.5];

/// Synthesises a FIFO profile for one edge with free-flow cost `base`.
///
/// Interpolation times are the first `c` salient instants of the day
/// (jittered ±20 min); values sample the congestion curve with noise and are
/// clamped to keep every slope ≥ −0.9 (strictly FIFO). Outside the sampled
/// range Eq. 1 clamps to the earliest/latest value.
pub fn edge_profile(base: f64, cfg: &ProfileConfig, rng: &mut StdRng) -> Plf {
    let c = cfg.points_per_edge.max(1);
    if c == 1 {
        return Plf::constant(base);
    }
    let mut hours: Vec<f64> = SALIENT_HOURS.iter().copied().take(c.min(6)).collect();
    // Beyond 6 points, fill with uniformly spread extras.
    for i in 6..c {
        hours.push((i as f64 * 24.0 / c as f64) % 24.0);
    }
    let mut pts: Vec<Pt> = Vec::with_capacity(c);
    for h in hours {
        let mut t = (h * 3600.0 + rng.gen_range(-1200.0..1200.0)).clamp(0.0, DAY);
        // Keep instants separated after jitter.
        while pts.iter().any(|p| (p.t - t).abs() < 600.0) {
            t = (t + 633.0) % DAY;
        }
        let noise = if cfg.noise > 0.0 {
            1.0 + rng.gen_range(-cfg.noise..cfg.noise)
        } else {
            1.0
        };
        let v = (base * congestion(t, cfg.peak_factor) * noise).max(1.0);
        pts.push(Pt::new(t, v));
    }
    pts.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite"));
    // Enforce FIFO: v_{i+1} ≥ v_i − 0.9·Δt (road slopes are tiny vs. a day,
    // so this virtually never binds, but it makes the guarantee a proof).
    for i in 1..pts.len() {
        let dt = pts[i].t - pts[i - 1].t;
        let lo = pts[i - 1].v - 0.9 * dt;
        if pts[i].v < lo {
            pts[i].v = lo.max(0.0);
        }
    }
    Plf::new(pts).expect("synthesised profile is valid")
}

/// Replaces every edge weight of `net.graph` with a synthesised profile; the
/// two directions of a road get independent profiles (asymmetric congestion).
pub fn apply_profiles(net: &RoadNetwork, cfg: &ProfileConfig) -> TdGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = net.graph.clone();
    for e in 0..g.num_edges() as u32 {
        let base = g.weight(e).eval(0.0);
        let plf = edge_profile(base, cfg, &mut rng);
        g.set_weight(e, plf)
            .expect("profile is FIFO by construction");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RoadNetworkConfig;

    #[test]
    fn profiles_have_requested_point_count() {
        let mut rng = StdRng::seed_from_u64(1);
        for c in 1..=6 {
            let cfg = ProfileConfig {
                points_per_edge: c,
                ..Default::default()
            };
            let p = edge_profile(100.0, &cfg, &mut rng);
            assert!(p.len() <= c, "c={c}, got {}", p.len());
            assert!(!p.is_empty());
            assert!(p.is_fifo());
        }
    }

    #[test]
    fn profiles_capture_rush_hour_from_c_equals_2() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in 2..=6 {
            let cfg = ProfileConfig {
                points_per_edge: c,
                noise: 0.0,
                ..Default::default()
            };
            let p = edge_profile(60.0, &cfg, &mut rng);
            assert!(p.first().t >= 0.0 && p.last().t <= DAY);
            // The 8am peak must be visibly more expensive than 3am.
            assert!(
                p.eval(8.0 * 3600.0) > p.eval(3.0 * 3600.0) * 1.2,
                "c={c}: peak {} vs night {}",
                p.eval(8.0 * 3600.0),
                p.eval(3.0 * 3600.0)
            );
        }
    }

    #[test]
    fn congestion_peaks_at_rush_hour() {
        let free = congestion(3.0 * 3600.0, 1.8);
        let morning = congestion(8.0 * 3600.0, 1.8);
        let evening = congestion(17.5 * 3600.0, 1.8);
        assert!((free - 1.0).abs() < 1e-12);
        assert!((morning - 1.8).abs() < 1e-12);
        assert!((evening - 1.8).abs() < 1e-12);
    }

    #[test]
    fn apply_profiles_is_deterministic_and_fifo() {
        let net = crate::network::RoadNetwork::generate(&RoadNetworkConfig {
            rows: 8,
            cols: 8,
            ..Default::default()
        });
        let cfg = ProfileConfig::default();
        let g1 = apply_profiles(&net, &cfg);
        let g2 = apply_profiles(&net, &cfg);
        for e in 0..g1.num_edges() as u32 {
            assert!(g1.weight(e).approx_eq(g2.weight(e), 1e-12));
            assert!(g1.weight(e).is_fifo());
            assert!(g1.weight(e).min_value() >= 1.0);
        }
    }

    #[test]
    fn rush_hour_costs_exceed_free_flow() {
        let net = crate::network::RoadNetwork::generate(&RoadNetworkConfig {
            rows: 10,
            cols: 10,
            ..Default::default()
        });
        let cfg = ProfileConfig {
            points_per_edge: 6,
            noise: 0.0,
            ..Default::default()
        };
        let g = apply_profiles(&net, &cfg);
        // On average, the cost around the morning peak must exceed the
        // night-time cost (samples are jittered, so compare the 9-10am band
        // against 3am with a modest margin).
        let (mut rush, mut night) = (0.0, 0.0);
        for e in 0..g.num_edges() as u32 {
            rush += g.weight(e).eval(9.5 * 3600.0);
            night += g.weight(e).eval(3.0 * 3600.0);
        }
        assert!(rush > night * 1.05, "rush={rush} night={night}");
    }
}
