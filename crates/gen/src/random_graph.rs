//! Small random connected TD graphs for correctness testing.
//!
//! Unlike [`crate::network`] (which targets road-like structure), these are
//! adversarially irregular: random tree + random chords with fully random
//! FIFO profiles — the shape that flushes out index bugs.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_graph::{GraphBuilder, TdGraph};
use td_plf::{Plf, Pt, DAY};

/// Generates a random FIFO profile with `1..=max_points` points and values in
/// `[lo, hi]`.
pub fn random_profile(rng: &mut StdRng, max_points: usize, lo: f64, hi: f64) -> Plf {
    let k = rng.gen_range(1..=max_points.max(1));
    if k == 1 {
        return Plf::constant(rng.gen_range(lo..hi));
    }
    let mut ts: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..DAY)).collect();
    ts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ts.dedup_by(|a, b| (*a - *b).abs() < 1.0);
    let mut pts: Vec<Pt> = Vec::with_capacity(ts.len());
    let mut prev: Option<Pt> = None;
    for t in ts {
        let mut v = rng.gen_range(lo..hi);
        if let Some(p) = prev {
            // FIFO clamp: slope ≥ -0.9.
            let min_v = p.v - 0.9 * (t - p.t);
            if v < min_v {
                v = min_v.max(0.0);
            }
        }
        let pt = Pt::new(t, v);
        prev = Some(pt);
        pts.push(pt);
    }
    Plf::new(pts).expect("valid by construction")
}

/// Generates a connected directed TD graph: a random spanning tree
/// (bidirectional) plus `extra_directed` random extra directed edges, all with
/// random FIFO profiles of up to `max_points` points.
pub fn random_connected_graph(
    rng: &mut StdRng,
    n: usize,
    extra_directed: usize,
    max_points: usize,
) -> TdGraph {
    assert!(n >= 2);
    let mut builder = GraphBuilder::new(n);
    // Random tree: attach vertex i to a random earlier vertex.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let w = random_profile(rng, max_points, 5.0, 500.0);
        builder
            .bidirectional(i as u32, j as u32, w)
            .expect("valid tree edge");
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_directed && attempts < extra_directed * 30 + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let w = random_profile(rng, max_points, 5.0, 500.0);
        builder.edge(u, v, w).expect("valid extra edge");
        added += 1;
    }
    builder.build()
}

/// Convenience: a seeded random connected graph.
pub fn seeded_graph(seed: u64, n: usize, extra_directed: usize, max_points: usize) -> TdGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_connected_graph(&mut rng, n, extra_directed, max_points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graphs_are_connected_and_fifo() {
        for seed in 0..5 {
            let g = seeded_graph(seed, 30, 20, 4);
            assert!(g.is_connected());
            for e in g.edges() {
                assert!(e.weight.is_fifo());
            }
        }
    }

    #[test]
    fn random_profile_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let p = random_profile(&mut rng, 6, 10.0, 20.0);
            assert!(p.is_fifo());
            assert!(p.min_value() >= 0.0);
            assert!(p.max_value() < 20.0 + 1e-9);
            assert!(p.len() <= 6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = seeded_graph(3, 20, 10, 3);
        let b = seeded_graph(3, 20, 10, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!(ea.from, eb.from);
            assert!(ea.weight.approx_eq(&eb.weight, 1e-12));
        }
    }
}
