//! Property tests: `.tdx` persistence round-trips arbitrary generated
//! graphs and their frozen CSR views bit-identically.

use proptest::prelude::*;
use td_graph::{CsrGraph, GraphBuilder, TdGraph};
use td_plf::{Plf, Pt};
use td_store::Persist;

/// Strategy: a small random TD graph with random FIFO profiles (mirrors
/// `proptest_io.rs`).
fn arb_graph() -> impl Strategy<Value = TdGraph> {
    (
        2usize..12,
        proptest::collection::vec((0u32..12, 0u32..12, 1u32..5, 1.0f64..500.0), 1..30),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, k, base) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u == v {
                    continue;
                }
                let pts: Vec<Pt> = (0..k)
                    .map(|i| Pt::new(i as f64 * 10_000.0, base + i as f64))
                    .collect();
                let w = Plf::new(pts).expect("valid");
                b.edge(u, v, w).expect("valid edge");
            }
            b.build()
        })
}

fn roundtrip<T: Persist>(v: &T) -> T {
    let mut buf = Vec::new();
    v.write_into(&mut buf).expect("write");
    let mut r = buf.as_slice();
    let back = T::read_from(&mut r).expect("read");
    assert!(r.is_empty(), "trailing bytes");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_persist_round_trips_exactly(g in arb_graph()) {
        let back = roundtrip(&g);
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(back.out_edges(v), g.out_edges(v));
            prop_assert_eq!(back.in_edges(v), g.in_edges(v));
        }
        for e in 0..g.num_edges() as u32 {
            prop_assert_eq!(back.weight(e), g.weight(e));
        }
    }

    #[test]
    fn csr_persist_round_trips_exactly(g in arb_graph()) {
        let csr = CsrGraph::build(&g);
        let back = roundtrip(&csr);
        prop_assert_eq!(back.num_vertices(), csr.num_vertices());
        prop_assert_eq!(back.num_edges(), csr.num_edges());
        for v in 0..csr.num_vertices() as u32 {
            prop_assert_eq!(
                back.out_edges(v).collect::<Vec<_>>(),
                csr.out_edges(v).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                back.in_edges(v).collect::<Vec<_>>(),
                csr.in_edges(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn frozen_graph_persist_preserves_weights_and_bounds(g in arb_graph()) {
        let fg = g.freeze();
        let back = roundtrip(&fg);
        for e in 0..fg.num_edges() as u32 {
            prop_assert_eq!(back.min_cost(e).to_bits(), fg.min_cost(e).to_bits());
            prop_assert_eq!(back.max_cost(e).to_bits(), fg.max_cost(e).to_bits());
            for t in [-10.0, 0.0, 15_000.0, 90_000.0] {
                prop_assert_eq!(
                    back.weight(e).eval(t).to_bits(),
                    fg.weight(e).eval(t).to_bits()
                );
            }
        }
    }
}
