//! Property tests: TD-format serialization round-trips arbitrary generated
//! graphs exactly, and malformed inputs are rejected rather than mis-parsed.

use proptest::prelude::*;
use std::io::BufReader;
use td_graph::io::{read_td, write_td};
use td_graph::{GraphBuilder, TdGraph};
use td_plf::{Plf, Pt};

/// Strategy: a small random TD graph with random FIFO profiles.
fn arb_graph() -> impl Strategy<Value = TdGraph> {
    (
        2usize..12,
        proptest::collection::vec((0u32..12, 0u32..12, 1u32..5, 1.0f64..500.0), 1..30),
    )
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, k, base) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u == v {
                    continue;
                }
                let pts: Vec<Pt> = (0..k)
                    .map(|i| Pt::new(i as f64 * 10_000.0, base + i as f64))
                    .collect();
                let w = Plf::new(pts).expect("valid");
                b.edge(u, v, w).expect("valid edge");
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn td_format_round_trips_exactly(g in arb_graph()) {
        let mut buf = Vec::new();
        write_td(&g, &mut buf).expect("serialize");
        let g2 = read_td(BufReader::new(&buf[..])).expect("parse back");
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for e in g.edges() {
            let e2 = g2.find_edge(e.from, e.to).expect("edge survives");
            prop_assert!(g2.weight(e2).approx_eq(&e.weight, 1e-9));
        }
    }

    #[test]
    fn truncated_files_never_panic(g in arb_graph(), cut in 0usize..2000) {
        let mut buf = Vec::new();
        write_td(&g, &mut buf).expect("serialize");
        let cut = cut.min(buf.len());
        // Must either parse (if the cut landed on a record boundary and the
        // count happens to match) or error — never panic.
        let _ = read_td(BufReader::new(&buf[..cut]));
    }
}

#[test]
fn rejects_nan_and_negative_weights() {
    for bad in [
        "p td 2 1\na 0 1 1 0 NaN\n",
        "p td 2 1\na 0 1 1 0 -5\n",
        "p td 2 1\na 0 1 2 10 3 5 4\n", // unsorted times
    ] {
        assert!(
            read_td(BufReader::new(bad.as_bytes())).is_err(),
            "accepted malformed input: {bad:?}"
        );
    }
}
