//! Paths through a time-dependent graph.

use crate::graph::{TdGraph, VertexId};

/// A path as a vertex sequence `v_0 → v_1 → … → v_k` (Def. 2's edge sequence,
/// stored by vertices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// The vertices in travel order; length ≥ 1.
    pub vertices: Vec<VertexId>,
}

impl Path {
    /// A path from an ordered vertex list.
    pub fn new(vertices: Vec<VertexId>) -> Self {
        assert!(!vertices.is_empty(), "a path has at least one vertex");
        Path { vertices }
    }

    /// Source vertex.
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Destination vertex.
    pub fn destination(&self) -> VertexId {
        *self.vertices.last().expect("non-empty")
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Evaluates the path's travel cost when departing at `t`, by the
    /// recursive `Compound` of Def. 2 applied edge by edge. Returns `None` if
    /// some consecutive pair is not an edge of `g`.
    ///
    /// This is the ground truth used to check recovered paths: a claimed
    /// shortest path must (a) exist and (b) cost exactly the reported value.
    pub fn cost(&self, g: &TdGraph, t: f64) -> Option<f64> {
        let mut now = t;
        let mut total = 0.0;
        for w in self.vertices.windows(2) {
            let e = g.find_edge(w[0], w[1])?;
            let c = g.weight(e).eval(now);
            total += c;
            now += c;
        }
        Some(total)
    }

    /// True iff every consecutive pair is an edge of `g`.
    pub fn is_valid(&self, g: &TdGraph) -> bool {
        self.vertices
            .windows(2)
            .all(|w| g.find_edge(w[0], w[1]).is_some())
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    fn line_graph() -> TdGraph {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(
            0,
            1,
            Plf::from_pairs(&[(0.0, 10.0), (100.0, 20.0)]).unwrap(),
        )
        .unwrap();
        g.add_edge(1, 2, Plf::constant(5.0)).unwrap();
        g
    }

    #[test]
    fn cost_compounds_edge_by_edge() {
        let g = line_graph();
        let p = Path::new(vec![0, 1, 2]);
        // depart 0: edge (0,1) costs 10, arrive 10; edge (1,2) costs 5.
        assert_eq!(p.cost(&g, 0.0), Some(15.0));
        // depart 100: edge (0,1) costs 20.
        assert_eq!(p.cost(&g, 100.0), Some(25.0));
    }

    #[test]
    fn invalid_path_detected() {
        let g = line_graph();
        let p = Path::new(vec![0, 2]);
        assert_eq!(p.cost(&g, 0.0), None);
        assert!(!p.is_valid(&g));
        assert!(Path::new(vec![0, 1]).is_valid(&g));
    }

    #[test]
    fn single_vertex_path_costs_zero() {
        let g = line_graph();
        let p = Path::new(vec![1]);
        assert_eq!(p.cost(&g, 42.0), Some(0.0));
        assert!(p.is_valid(&g));
        assert_eq!(p.source(), 1);
        assert_eq!(p.destination(), 1);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn display_formats_arrows() {
        let p = Path::new(vec![3, 1, 4]);
        assert_eq!(p.to_string(), "3 -> 1 -> 4");
    }
}
