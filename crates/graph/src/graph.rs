//! The [`TdGraph`] type.

use td_plf::Plf;

/// Vertex identifier. Compatible with [`td_plf::Via`] so witnesses can name
/// vertices directly.
pub type VertexId = u32;

/// Edge identifier (index into the edge array).
pub type EdgeId = u32;

/// A directed edge with its time-dependent weight function `w_{u,v}(t)`.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Tail vertex `u`.
    pub from: VertexId,
    /// Head vertex `v`.
    pub to: VertexId,
    /// Travel-cost function (Eq. 1).
    pub weight: Plf,
}

/// Errors raised by graph construction and mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// An endpoint is out of range.
    VertexOutOfRange(VertexId),
    /// Self loops are not meaningful on road networks.
    SelfLoop(VertexId),
    /// Duplicate directed edge `u → v` (parallel edges must be pre-merged by
    /// taking their pointwise minimum).
    DuplicateEdge(VertexId, VertexId),
    /// The weight function violates FIFO (overtaking), which the query
    /// algorithms assume.
    NotFifo(VertexId, VertexId),
    /// Unknown edge id.
    NoSuchEdge(EdgeId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
            GraphError::SelfLoop(v) => write!(f, "self loop at vertex {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {u} -> {v}"),
            GraphError::NotFifo(u, v) => write!(f, "edge {u} -> {v} violates FIFO"),
            GraphError::NoSuchEdge(e) => write!(f, "no such edge id {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A time-dependent directed graph (Def. 1).
///
/// Stores adjacency in both directions: `out(v)` lists `(head, edge)` pairs,
/// `in(v)` lists `(tail, edge)` pairs. Edge ids are stable across weight
/// updates, which the live-traffic update experiments rely on.
#[derive(Clone, Debug, Default)]
pub struct TdGraph {
    out: Vec<Vec<(VertexId, EdgeId)>>,
    inn: Vec<Vec<(VertexId, EdgeId)>>,
    edges: Vec<Edge>,
}

impl TdGraph {
    /// An empty graph with `n` vertices and no edges.
    pub fn with_vertices(n: usize) -> Self {
        TdGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Fallible [`TdGraph::with_vertices`] for untrusted vertex counts (the
    /// persistence module): an absurd `n` from a corrupt snapshot becomes
    /// `None` instead of an allocation-failure abort.
    pub(crate) fn try_with_vertices(n: usize) -> Option<Self> {
        let mut out: Vec<Vec<(VertexId, EdgeId)>> = Vec::new();
        out.try_reserve_exact(n).ok()?;
        out.resize_with(n, Vec::new);
        let mut inn: Vec<Vec<(VertexId, EdgeId)>> = Vec::new();
        inn.try_reserve_exact(n).ok()?;
        inn.resize_with(n, Vec::new);
        Some(TdGraph {
            out,
            inn,
            edges: Vec::new(),
        })
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Inserts a directed edge, validating endpoints, simplicity and FIFO.
    pub fn add_edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        weight: Plf,
    ) -> Result<EdgeId, GraphError> {
        let n = self.num_vertices() as u32;
        if from >= n {
            return Err(GraphError::VertexOutOfRange(from));
        }
        if to >= n {
            return Err(GraphError::VertexOutOfRange(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.find_edge(from, to).is_some() {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        if !weight.is_fifo() {
            return Err(GraphError::NotFifo(from, to));
        }
        let id = self.edges.len() as EdgeId;
        self.edges.push(Edge { from, to, weight });
        self.out[from as usize].push((to, id));
        self.inn[to as usize].push((from, id));
        Ok(id)
    }

    /// Out-neighbours of `v` as `(head, edge)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.out[v as usize]
    }

    /// In-neighbours of `v` as `(tail, edge)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.inn[v as usize]
    }

    /// The edge record for `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e as usize]
    }

    /// The weight function of edge `e`.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> &Plf {
        &self.edges[e as usize].weight
    }

    /// All edges, in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The id of the directed edge `u → v`, if present.
    pub fn find_edge(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.out
            .get(u as usize)?
            .iter()
            .find(|&&(head, _)| head == v)
            .map(|&(_, e)| e)
    }

    /// Replaces the weight function of edge `e` (live-traffic update).
    pub fn set_weight(&mut self, e: EdgeId, weight: Plf) -> Result<(), GraphError> {
        let slot = self
            .edges
            .get_mut(e as usize)
            .ok_or(GraphError::NoSuchEdge(e))?;
        if !weight.is_fifo() {
            return Err(GraphError::NotFifo(slot.from, slot.to));
        }
        slot.weight = weight;
        Ok(())
    }

    /// Combined degree (in + out neighbour count, counting a bidirectional
    /// neighbour once) of `v` — the quantity the min-degree elimination
    /// heuristic orders by.
    pub fn undirected_degree(&self, v: VertexId) -> usize {
        self.undirected_neighbors_iter(v).count()
    }

    /// Undirected neighbour set of `v` (sorted, deduplicated).
    pub fn undirected_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut nbrs: Vec<VertexId> = self.undirected_neighbors_iter(v).collect();
        nbrs.sort_unstable();
        nbrs
    }

    /// Allocation-free iterator over `v`'s undirected neighbours: every
    /// out-neighbour, then every in-neighbour that is not also an
    /// out-neighbour (each neighbour yielded exactly once, in no particular
    /// order). The dedup check scans `out(v)`, which is O(1) amortised on
    /// road networks (degrees are tiny constants) and avoids the per-call
    /// `Vec` + sort of [`TdGraph::undirected_neighbors`].
    #[inline]
    pub fn undirected_neighbors_iter(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let out = &self.out[v as usize];
        out.iter().map(|&(u, _)| u).chain(
            self.inn[v as usize]
                .iter()
                .map(|&(u, _)| u)
                .filter(move |&u| !out.iter().any(|&(w, _)| w == u)),
        )
    }

    /// True iff the underlying undirected graph is connected (empty and
    /// single-vertex graphs count as connected).
    pub fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.out[v as usize]
                .iter()
                .chain(self.inn[v as usize].iter())
            {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Total heap bytes of all weight functions — the graph's share of index
    /// memory accounting.
    pub fn weight_bytes(&self) -> usize {
        self.edges.iter().map(|e| e.weight.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    fn triangle() -> TdGraph {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 2, Plf::constant(2.0)).unwrap();
        g.add_edge(2, 0, Plf::constant(3.0)).unwrap();
        g
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = TdGraph::with_vertices(2);
        assert_eq!(
            g.add_edge(0, 5, Plf::constant(1.0)),
            Err(GraphError::VertexOutOfRange(5))
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = TdGraph::with_vertices(2);
        assert_eq!(
            g.add_edge(1, 1, Plf::constant(1.0)),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = TdGraph::with_vertices(2);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        assert_eq!(
            g.add_edge(0, 1, Plf::constant(2.0)),
            Err(GraphError::DuplicateEdge(0, 1))
        );
        // Reverse direction is a different edge and is fine.
        assert!(g.add_edge(1, 0, Plf::constant(2.0)).is_ok());
    }

    #[test]
    fn rejects_non_fifo_weight() {
        let mut g = TdGraph::with_vertices(2);
        let bad = plf(&[(0.0, 100.0), (10.0, 1.0)]); // slope < -1
        assert_eq!(g.add_edge(0, 1, bad), Err(GraphError::NotFifo(0, 1)));
    }

    #[test]
    fn adjacency_is_symmetric_between_directions() {
        let g = triangle();
        assert_eq!(g.out_edges(0), &[(1, 0)]);
        assert_eq!(g.in_edges(1), &[(0, 0)]);
        assert_eq!(g.find_edge(0, 1), Some(0));
        assert_eq!(g.find_edge(1, 0), None);
    }

    #[test]
    fn set_weight_updates_in_place() {
        let mut g = triangle();
        let e = g.find_edge(0, 1).unwrap();
        g.set_weight(e, Plf::constant(9.0)).unwrap();
        assert_eq!(g.weight(e).eval(0.0), 9.0);
        assert_eq!(
            g.set_weight(99, Plf::constant(1.0)),
            Err(GraphError::NoSuchEdge(99))
        );
        let bad = plf(&[(0.0, 100.0), (10.0, 1.0)]);
        assert_eq!(g.set_weight(e, bad), Err(GraphError::NotFifo(0, 1)));
    }

    #[test]
    fn undirected_degree_counts_each_neighbor_once() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 0, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 2, Plf::constant(1.0)).unwrap();
        assert_eq!(g.undirected_degree(1), 2);
        assert_eq!(g.undirected_neighbors(1), vec![0, 2]);
    }

    #[test]
    fn connectivity() {
        assert!(triangle().is_connected());
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        assert!(!g.is_connected());
        assert!(TdGraph::with_vertices(0).is_connected());
        assert!(TdGraph::with_vertices(1).is_connected());
    }
}
