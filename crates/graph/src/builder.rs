//! Incremental graph construction.

use crate::graph::{GraphError, TdGraph, VertexId};
use td_plf::Plf;

/// Builds a [`TdGraph`] edge by edge, merging parallel edges by pointwise
/// minimum instead of rejecting them (real datasets contain a few).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: TdGraph,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            graph: TdGraph::with_vertices(n),
        }
    }

    /// Adds a directed edge; a parallel edge is merged via `minimum`.
    pub fn edge(
        &mut self,
        from: VertexId,
        to: VertexId,
        weight: Plf,
    ) -> Result<&mut Self, GraphError> {
        match self.graph.find_edge(from, to) {
            Some(e) => {
                let merged = self.graph.weight(e).minimum(&weight);
                self.graph.set_weight(e, merged)?;
            }
            None => {
                self.graph.add_edge(from, to, weight)?;
            }
        }
        Ok(self)
    }

    /// Adds a symmetric pair `u ↔ v` with the same weight function, the
    /// common case for road segments (cf. Fig. 1: `w_{u,v}(t) = w_{v,u}(t)`).
    pub fn bidirectional(
        &mut self,
        u: VertexId,
        v: VertexId,
        weight: Plf,
    ) -> Result<&mut Self, GraphError> {
        self.edge(u, v, weight.clone())?;
        self.edge(v, u, weight)?;
        Ok(self)
    }

    /// Finishes construction.
    pub fn build(self) -> TdGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_parallel_edges_by_minimum() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1, Plf::constant(5.0)).unwrap();
        b.edge(0, 1, Plf::constant(3.0)).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0).eval(0.0), 3.0);
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = GraphBuilder::new(2);
        b.bidirectional(0, 1, Plf::constant(4.0)).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.find_edge(0, 1).is_some());
        assert!(g.find_edge(1, 0).is_some());
    }

    #[test]
    fn propagates_errors() {
        let mut b = GraphBuilder::new(2);
        assert!(b.edge(0, 9, Plf::constant(1.0)).is_err());
    }
}
