//! Snapshot persistence ([`td_store::Persist`]) for [`TdGraph`],
//! [`CsrGraph`] and [`FrozenGraph`].
//!
//! A [`TdGraph`] is stored as its edge list in edge-id order (`from`/`to`
//! arrays plus the weight functions as a PLF list); reading replays
//! [`TdGraph::add_edge`], which revalidates endpoints, simplicity and FIFO
//! and rebuilds the adjacency lists in exactly the original order (adjacency
//! order is insertion order), so the loaded graph is indistinguishable from
//! the saved one.
//!
//! A [`CsrGraph`] is stored as its six flat arrays verbatim; reading
//! validates offset monotonicity, id ranges, and that forward and reverse
//! directions describe the same edge set before reassembling — a corrupt
//! file yields a typed error, never an out-of-bounds query later.

use crate::csr::{CsrGraph, FrozenGraph};
use crate::graph::TdGraph;
use std::io::{Read, Write};
use td_plf::persist::{read_plf_list, write_plf_list};
use td_plf::PlfArena;
use td_store::section::{check_offsets, read_u32s, read_u64, tag4, write_u32s, write_u64};
use td_store::{Persist, StoreError};

const TAG_G_VERTS: u32 = tag4(*b"Gnum");
const TAG_G_FROM: u32 = tag4(*b"Gfrm");
const TAG_G_TO: u32 = tag4(*b"Gto ");

const TAG_C_FIRST_OUT: u32 = tag4(*b"Cfo ");
const TAG_C_HEAD: u32 = tag4(*b"Chd ");
const TAG_C_OUT_EDGE: u32 = tag4(*b"Coe ");
const TAG_C_FIRST_IN: u32 = tag4(*b"Cfi ");
const TAG_C_TAIL: u32 = tag4(*b"Ctl ");
const TAG_C_IN_EDGE: u32 = tag4(*b"Cie ");

impl Persist for TdGraph {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        write_u64(w, TAG_G_VERTS, self.num_vertices() as u64)?;
        let from: Vec<u32> = self.edges().iter().map(|e| e.from).collect();
        let to: Vec<u32> = self.edges().iter().map(|e| e.to).collect();
        write_u32s(w, TAG_G_FROM, &from)?;
        write_u32s(w, TAG_G_TO, &to)?;
        write_plf_list(w, self.edges().iter().map(|e| Some(&e.weight)))
    }

    fn read_from<R: Read>(r: &mut R) -> Result<TdGraph, StoreError> {
        let n = read_u64(r, TAG_G_VERTS)?;
        if n > u32::MAX as u64 {
            return Err(StoreError::invalid("vertex count exceeds u32 range"));
        }
        // Read (stream-bounded) edge data before allocating adjacency, and
        // allocate fallibly: a crafted vertex count in a CRC-valid file
        // must yield a typed error, not an allocation-failure abort.
        let from = read_u32s(r, TAG_G_FROM)?;
        let to = read_u32s(r, TAG_G_TO)?;
        let weights = read_plf_list(r)?;
        if from.len() != to.len() || from.len() != weights.len() {
            return Err(StoreError::invalid("edge arrays disagree in length"));
        }
        let mut g = TdGraph::try_with_vertices(n as usize)
            .ok_or_else(|| StoreError::invalid(format!("vertex count {n} is unallocatable")))?;
        for ((u, v), w) in from.into_iter().zip(to).zip(weights) {
            let w = w.ok_or_else(|| StoreError::invalid("edge without a weight function"))?;
            g.add_edge(u, v, w)
                .map_err(|e| StoreError::invalid(format!("invalid edge: {e}")))?;
        }
        Ok(g)
    }
}

/// Validates one CSR direction: `[0]`-rooted non-decreasing offsets covering
/// the flat arrays, endpoint ids `< n`, edge ids `< m`.
fn check_direction(
    what: &str,
    first: &[u32],
    verts: &[u32],
    edges: &[u32],
    n: usize,
    m: usize,
) -> Result<(), StoreError> {
    if first.len() != n + 1 || verts.len() != m || edges.len() != m {
        return Err(StoreError::invalid(format!("{what}: bad offset array")));
    }
    check_offsets(first, m, what)?;
    if verts.iter().any(|&v| v as usize >= n) {
        return Err(StoreError::invalid(format!(
            "{what}: vertex id out of range"
        )));
    }
    if edges.iter().any(|&e| e as usize >= m) {
        return Err(StoreError::invalid(format!("{what}: edge id out of range")));
    }
    Ok(())
}

impl Persist for CsrGraph {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let (first_out, head, out_edge, first_in, tail, in_edge) = self.raw_parts();
        write_u32s(w, TAG_C_FIRST_OUT, first_out)?;
        write_u32s(w, TAG_C_HEAD, head)?;
        write_u32s(w, TAG_C_OUT_EDGE, out_edge)?;
        write_u32s(w, TAG_C_FIRST_IN, first_in)?;
        write_u32s(w, TAG_C_TAIL, tail)?;
        write_u32s(w, TAG_C_IN_EDGE, in_edge)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<CsrGraph, StoreError> {
        let first_out = read_u32s(r, TAG_C_FIRST_OUT)?;
        let head = read_u32s(r, TAG_C_HEAD)?;
        let out_edge = read_u32s(r, TAG_C_OUT_EDGE)?;
        let first_in = read_u32s(r, TAG_C_FIRST_IN)?;
        let tail = read_u32s(r, TAG_C_TAIL)?;
        let in_edge = read_u32s(r, TAG_C_IN_EDGE)?;

        if first_out.is_empty() || first_out.len() != first_in.len() {
            return Err(StoreError::invalid("CSR offset arrays disagree in length"));
        }
        let n = first_out.len() - 1;
        let m = head.len();
        check_direction("out direction", &first_out, &head, &out_edge, n, m)?;
        check_direction("in direction", &first_in, &tail, &in_edge, n, m)?;

        // The two directions must describe the same edge set: edge `e`
        // appears exactly once per direction, and the in-direction's
        // (tail, head) must match the out-direction's.
        let mut endpoints: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); m];
        let mut seen = vec![false; m];
        for v in 0..n {
            for i in first_out[v] as usize..first_out[v + 1] as usize {
                let e = out_edge[i] as usize;
                if seen[e] {
                    return Err(StoreError::invalid("edge id repeated in out direction"));
                }
                seen[e] = true;
                endpoints[e] = (v as u32, head[i]);
            }
        }
        let mut seen_in = vec![false; m];
        for v in 0..n {
            for i in first_in[v] as usize..first_in[v + 1] as usize {
                let e = in_edge[i] as usize;
                if seen_in[e] {
                    return Err(StoreError::invalid("edge id repeated in in direction"));
                }
                seen_in[e] = true;
                if endpoints[e] != (tail[i], v as u32) {
                    return Err(StoreError::invalid(
                        "in/out directions disagree on an edge's endpoints",
                    ));
                }
            }
        }

        Ok(CsrGraph::from_raw_parts(
            first_out, head, out_edge, first_in, tail, in_edge,
        ))
    }
}

impl Persist for FrozenGraph {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        self.csr.write_into(w)?;
        self.weights.write_into(w)
        // `out_min` is derived from (csr, weights) and recomputed on read.
    }

    fn read_from<R: Read>(r: &mut R) -> Result<FrozenGraph, StoreError> {
        let csr = CsrGraph::read_from(r)?;
        let weights = PlfArena::read_from(r)?;
        if weights.len() != csr.num_edges() {
            return Err(StoreError::invalid(format!(
                "weight arena holds {} functions for {} edges",
                weights.len(),
                csr.num_edges()
            )));
        }
        Ok(FrozenGraph::from_parts(csr, weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    fn sample() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 2, Plf::from_pairs(&[(0.0, 2.0), (10.0, 4.0)]).unwrap())
            .unwrap();
        g.add_edge(0, 2, Plf::constant(5.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        g
    }

    fn roundtrip<T: Persist>(v: &T) -> T {
        let mut buf = Vec::new();
        v.write_into(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = T::read_from(&mut r).unwrap();
        assert!(r.is_empty());
        back
    }

    #[test]
    fn graph_round_trips_adjacency_exactly() {
        let g = sample();
        let back = roundtrip(&g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(back.out_edges(v), g.out_edges(v));
            assert_eq!(back.in_edges(v), g.in_edges(v));
        }
        for e in 0..g.num_edges() as u32 {
            assert_eq!(back.weight(e), g.weight(e));
        }
    }

    #[test]
    fn csr_round_trips_exactly() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let back = roundtrip(&csr);
        for v in 0..csr.num_vertices() as u32 {
            assert_eq!(
                back.out_edges(v).collect::<Vec<_>>(),
                csr.out_edges(v).collect::<Vec<_>>()
            );
            assert_eq!(
                back.in_edges(v).collect::<Vec<_>>(),
                csr.in_edges(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn frozen_graph_round_trips_with_recomputed_bounds() {
        let g = sample();
        let fg = g.freeze();
        let back = roundtrip(&fg);
        for e in 0..g.num_edges() as u32 {
            assert_eq!(back.min_cost(e).to_bits(), fg.min_cost(e).to_bits());
            for t in [-1.0, 0.0, 5.0, 20.0] {
                assert_eq!(
                    back.weight(e).eval(t).to_bits(),
                    fg.weight(e).eval(t).to_bits()
                );
            }
        }
        for v in 0..fg.num_vertices() as u32 {
            let (h1, e1, m1) = fg.out_slices_with_min(v);
            let (h2, e2, m2) = back.out_slices_with_min(v);
            assert_eq!(h1, h2);
            assert_eq!(e1, e2);
            assert_eq!(m1, m2);
        }
    }

    #[test]
    fn inconsistent_directions_are_rejected() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        let mut buf = Vec::new();
        csr.write_into(&mut buf).unwrap();
        // Forge a stream whose in-direction tail array names the wrong
        // vertex: rebuild sections by hand with valid CRCs.
        let (first_out, head, out_edge, first_in, tail, in_edge) = csr.raw_parts();
        let mut bad_tail = tail.to_vec();
        bad_tail[0] = bad_tail[0].wrapping_add(1) % 4;
        let mut forged = Vec::new();
        write_u32s(&mut forged, TAG_C_FIRST_OUT, first_out).unwrap();
        write_u32s(&mut forged, TAG_C_HEAD, head).unwrap();
        write_u32s(&mut forged, TAG_C_OUT_EDGE, out_edge).unwrap();
        write_u32s(&mut forged, TAG_C_FIRST_IN, first_in).unwrap();
        write_u32s(&mut forged, TAG_C_TAIL, &bad_tail).unwrap();
        write_u32s(&mut forged, TAG_C_IN_EDGE, in_edge).unwrap();
        assert!(matches!(
            CsrGraph::read_from(&mut forged.as_slice()),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn duplicate_edges_in_stream_are_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        g.write_into(&mut buf).unwrap();
        // A graph stream that repeats an edge must be rejected by add_edge.
        let mut forged = Vec::new();
        write_u64(&mut forged, TAG_G_VERTS, 2).unwrap();
        write_u32s(&mut forged, TAG_G_FROM, &[0, 0]).unwrap();
        write_u32s(&mut forged, TAG_G_TO, &[1, 1]).unwrap();
        let w = Plf::constant(1.0);
        write_plf_list(&mut forged, [Some(&w), Some(&w)].into_iter()).unwrap();
        assert!(matches!(
            TdGraph::read_from(&mut forged.as_slice()),
            Err(StoreError::Invalid(_))
        ));
    }
}
