//! [`CsrGraph`] and [`FrozenGraph`]: the frozen, cache-friendly query-time
//! representation of a [`TdGraph`].
//!
//! [`TdGraph`] stores adjacency as `Vec<Vec<(VertexId, EdgeId)>>` — right for
//! incremental construction and live-traffic weight updates, wrong for the
//! query hot loops, where every neighbour scan chases a per-vertex heap
//! pointer. [`CsrGraph`] is the standard compressed-sparse-row alternative:
//! one `first_out` offset array plus flat `head`/`edge` arrays (and the same
//! for the reverse direction), so a vertex's out-edges are one contiguous
//! slice and sequential scans prefetch perfectly.
//!
//! [`FrozenGraph`] pairs the CSR topology with a [`PlfArena`] holding every
//! edge's weight function in edge-id order: function `e` of the arena is the
//! weight of edge `e`, with precomputed `min_cost`/`max_cost` bounds the
//! search loops use for pruning. Freeze once after the graph stops changing;
//! rebuild after `set_weight` batches (the build is a single linear copy).

use crate::graph::{EdgeId, TdGraph, VertexId};
use td_plf::{PlfArena, PlfSlice};

/// Compressed-sparse-row adjacency (forward and reverse) over a [`TdGraph`].
#[derive(Clone, Debug)]
pub struct CsrGraph {
    /// `first_out[v]..first_out[v+1]` delimits `v`'s out-edges (len `n+1`).
    first_out: Vec<u32>,
    /// Head vertex of each out-edge, grouped by tail.
    head: Vec<VertexId>,
    /// Edge id of each out-edge (index into the graph's edge array).
    out_edge: Vec<EdgeId>,
    /// `first_in[v]..first_in[v+1]` delimits `v`'s in-edges (len `n+1`).
    first_in: Vec<u32>,
    /// Tail vertex of each in-edge, grouped by head.
    tail: Vec<VertexId>,
    /// Edge id of each in-edge.
    in_edge: Vec<EdgeId>,
}

impl Default for CsrGraph {
    fn default() -> Self {
        // Not derived: the offset arrays must start as `[0]`, not empty, for
        // the invariant `num_vertices() == first_out.len() - 1` to hold on
        // an empty graph.
        CsrGraph {
            first_out: vec![0],
            head: Vec::new(),
            out_edge: Vec::new(),
            first_in: vec![0],
            tail: Vec::new(),
            in_edge: Vec::new(),
        }
    }
}

impl CsrGraph {
    /// Builds both directions from `g` in `O(n + m)`.
    pub fn build(g: &TdGraph) -> CsrGraph {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut first_out = Vec::with_capacity(n + 1);
        let mut head = Vec::with_capacity(m);
        let mut out_edge = Vec::with_capacity(m);
        first_out.push(0);
        for v in 0..n as u32 {
            for &(u, e) in g.out_edges(v) {
                head.push(u);
                out_edge.push(e);
            }
            first_out.push(head.len() as u32);
        }
        let mut first_in = Vec::with_capacity(n + 1);
        let mut tail = Vec::with_capacity(m);
        let mut in_edge = Vec::with_capacity(m);
        first_in.push(0);
        for v in 0..n as u32 {
            for &(u, e) in g.in_edges(v) {
                tail.push(u);
                in_edge.push(e);
            }
            first_in.push(tail.len() as u32);
        }
        CsrGraph {
            first_out,
            head,
            out_edge,
            first_in,
            tail,
            in_edge,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.first_out.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.head.len()
    }

    /// `v`'s out-neighbours as parallel `(heads, edge ids)` slices.
    #[inline]
    pub fn out_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.first_out[v as usize] as usize;
        let hi = self.first_out[v as usize + 1] as usize;
        (&self.head[lo..hi], &self.out_edge[lo..hi])
    }

    /// `v`'s in-neighbours as parallel `(tails, edge ids)` slices.
    #[inline]
    pub fn in_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.first_in[v as usize] as usize;
        let hi = self.first_in[v as usize + 1] as usize;
        (&self.tail[lo..hi], &self.in_edge[lo..hi])
    }

    /// Iterator over `v`'s out-edges as `(head, edge)` pairs.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (heads, edges) = self.out_slices(v);
        heads.iter().copied().zip(edges.iter().copied())
    }

    /// Iterator over `v`'s in-edges as `(tail, edge)` pairs.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (tails, edges) = self.in_slices(v);
        tails.iter().copied().zip(edges.iter().copied())
    }

    /// The raw CSR arrays `(first_out, head, out_edge, first_in, tail,
    /// in_edge)` — the serialization surface of the persistence module.
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(
        &self,
    ) -> (
        &[u32],
        &[VertexId],
        &[EdgeId],
        &[u32],
        &[VertexId],
        &[EdgeId],
    ) {
        (
            &self.first_out,
            &self.head,
            &self.out_edge,
            &self.first_in,
            &self.tail,
            &self.in_edge,
        )
    }

    /// Reassembles a CSR graph from raw arrays. The persistence module
    /// validates every invariant before calling this.
    pub(crate) fn from_raw_parts(
        first_out: Vec<u32>,
        head: Vec<VertexId>,
        out_edge: Vec<EdgeId>,
        first_in: Vec<u32>,
        tail: Vec<VertexId>,
        in_edge: Vec<EdgeId>,
    ) -> CsrGraph {
        CsrGraph {
            first_out,
            head,
            out_edge,
            first_in,
            tail,
            in_edge,
        }
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        (self.first_out.capacity() + self.first_in.capacity()) * std::mem::size_of::<u32>()
            + (self.head.capacity() + self.tail.capacity()) * std::mem::size_of::<VertexId>()
            + (self.out_edge.capacity() + self.in_edge.capacity()) * std::mem::size_of::<EdgeId>()
    }
}

/// The frozen query representation: CSR topology + contiguous weight arena.
///
/// Arena function `e` is the weight of edge `e`, so [`FrozenGraph::weight`]
/// and the bound accessors index directly by [`EdgeId`].
#[derive(Clone, Debug, Default)]
pub struct FrozenGraph {
    /// CSR adjacency, both directions.
    pub csr: CsrGraph,
    /// All edge weight functions, in edge-id order.
    pub weights: PlfArena,
    /// `min_cost` of each *out-slot* (parallel to the CSR `head` array), so
    /// the relaxation prune reads the bound from the same stream it walks —
    /// no arena touch for pruned edges.
    out_min: Vec<f64>,
}

impl FrozenGraph {
    /// Freezes `g`: builds the CSR arrays and copies every weight function
    /// into the arena.
    pub fn freeze(g: &TdGraph) -> FrozenGraph {
        let csr = CsrGraph::build(g);
        let total: usize = g.edges().iter().map(|e| e.weight.len()).sum();
        let mut weights = PlfArena::with_capacity(g.num_edges(), total);
        for e in g.edges() {
            weights.push(&e.weight);
        }
        let out_min = csr.out_edge.iter().map(|&e| weights.min_cost(e)).collect();
        FrozenGraph {
            csr,
            weights,
            out_min,
        }
    }

    /// `v`'s out-neighbours as parallel `(heads, edge ids, min costs)`
    /// slices — the scalar relaxation's working set.
    #[inline]
    pub fn out_slices_with_min(&self, v: VertexId) -> (&[VertexId], &[EdgeId], &[f64]) {
        let lo = self.csr.first_out[v as usize] as usize;
        let hi = self.csr.first_out[v as usize + 1] as usize;
        (
            &self.csr.head[lo..hi],
            &self.csr.out_edge[lo..hi],
            &self.out_min[lo..hi],
        )
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// The weight function of edge `e` as a borrowed slice.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> PlfSlice<'_> {
        self.weights.slice(e)
    }

    /// Admissible lower bound on `w_e(t)` for every `t`.
    #[inline]
    pub fn min_cost(&self, e: EdgeId) -> f64 {
        self.weights.min_cost(e)
    }

    /// Upper bound on `w_e(t)` for every `t`.
    #[inline]
    pub fn max_cost(&self, e: EdgeId) -> f64 {
        self.weights.max_cost(e)
    }

    /// Reassembles the frozen view from its persisted parts, recomputing the
    /// interleaved per-out-slot min bounds (a deterministic linear pass over
    /// the persisted arena). The persistence module has already validated
    /// that arena function ids cover every edge id.
    pub(crate) fn from_parts(csr: CsrGraph, weights: PlfArena) -> FrozenGraph {
        let out_min = csr.out_edge.iter().map(|&e| weights.min_cost(e)).collect();
        FrozenGraph {
            csr,
            weights,
            out_min,
        }
    }

    /// Heap footprint in bytes (topology + weight arena + bound array).
    pub fn heap_bytes(&self) -> usize {
        self.csr.heap_bytes()
            + self.weights.heap_bytes()
            + self.out_min.capacity() * std::mem::size_of::<f64>()
    }
}

impl TdGraph {
    /// Freezes this graph into the CSR/arena query representation.
    pub fn freeze(&self) -> FrozenGraph {
        FrozenGraph::freeze(self)
    }
}

// Compile-time pin: frozen CSR views are shared read-only across query
// threads. A future `Rc`/`Cell` field fails this line instead of a test.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<CsrGraph>();
    shared_across_threads::<FrozenGraph>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    fn sample() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 2, Plf::from_pairs(&[(0.0, 2.0), (10.0, 4.0)]).unwrap())
            .unwrap();
        g.add_edge(0, 2, Plf::constant(5.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        g
    }

    #[test]
    fn csr_matches_adjacency_lists() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            let want: Vec<_> = g.out_edges(v).to_vec();
            let got: Vec<_> = csr.out_edges(v).collect();
            assert_eq!(want, got, "out({v})");
            let want: Vec<_> = g.in_edges(v).to_vec();
            let got: Vec<_> = csr.in_edges(v).collect();
            assert_eq!(want, got, "in({v})");
        }
    }

    #[test]
    fn frozen_weights_match_by_edge_id() {
        let g = sample();
        let fg = g.freeze();
        for e in 0..g.num_edges() as u32 {
            let w = g.weight(e);
            for t in [-1.0, 0.0, 5.0, 10.0, 20.0] {
                assert_eq!(fg.weight(e).eval(t), w.eval(t), "e={e} t={t}");
            }
            assert_eq!(fg.min_cost(e), w.min_value());
            assert_eq!(fg.max_cost(e), w.max_value());
        }
    }

    #[test]
    fn empty_vertex_has_empty_slices() {
        let g = sample();
        let csr = CsrGraph::build(&g);
        assert!(csr.out_slices(3).0.is_empty());
        assert!(csr.in_slices(0).0.is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let fg = sample().freeze();
        assert!(fg.heap_bytes() > 0);
        assert_eq!(fg.num_vertices(), 4);
        assert_eq!(fg.num_edges(), 4);
    }
}
