#![forbid(unsafe_code)]
//! # td-graph — time-dependent directed road networks
//!
//! Implements Def. 1 of the paper: a directed graph `G(V, E, W)` whose every
//! edge `e_{u,v}` carries a piecewise-linear travel-cost function
//! `w_{u,v}(t)` ([`td_plf::Plf`]).
//!
//! The crate provides:
//! * [`TdGraph`] — adjacency-list storage with both out- and in-edges (the
//!   reduction operator and reverse searches need predecessors);
//! * [`CsrGraph`] / [`FrozenGraph`] — the frozen query-time view: flat
//!   compressed-sparse-row adjacency plus a contiguous weight-function arena
//!   with per-edge min/max cost bounds (build once, query forever);
//! * [`GraphBuilder`] — incremental construction with validation;
//! * [`Path`] — a vertex sequence with cost evaluation against the graph,
//!   used to verify recovered shortest paths;
//! * [`io`] — a DIMACS-flavoured text format (plus a loader for static DIMACS
//!   `.gr` files, lifting constant costs to PLFs) so real road networks drop
//!   in where the synthetic ones are used.

pub mod builder;
pub mod csr;
pub mod graph;
pub mod io;
pub mod path;
pub mod persist;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, FrozenGraph};
pub use graph::{Edge, EdgeId, GraphError, TdGraph, VertexId};
pub use path::Path;
pub use stats::GraphStats;
