//! Text serialization of time-dependent graphs.
//!
//! Two formats:
//!
//! * **TD format** (ours, round-trips PLFs exactly):
//!   ```text
//!   c free-form comments
//!   p td <num_vertices> <num_edges>
//!   a <from> <to> <k> <t_1> <c_1> … <t_k> <c_k>
//!   ```
//!   with 0-based vertex ids.
//!
//! * **DIMACS shortest-path format** (`p sp n m` + `a u v w`, 1-based), read
//!   by [`read_dimacs_static`] with each constant weight lifted to a constant
//!   PLF — this is how the real CAL/SF/COL/FLA/W-USA networks the paper uses
//!   can be plugged in (their TD profiles are then synthesised by `td-gen`).

use crate::graph::{GraphError, TdGraph};
use crate::GraphBuilder;
use std::io::{BufRead, Write};
use td_plf::{Plf, Pt};

/// Errors from parsing graph files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line (1-based line number, message).
    Parse(usize, String),
    /// Structurally invalid graph content.
    Graph(GraphError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            IoError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<GraphError> for IoError {
    fn from(e: GraphError) -> Self {
        IoError::Graph(e)
    }
}

/// Writes `g` in TD format.
pub fn write_td(g: &TdGraph, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "c time-dependent road network (td-road)")?;
    writeln!(w, "p td {} {}", g.num_vertices(), g.num_edges())?;
    for e in g.edges() {
        write!(w, "a {} {} {}", e.from, e.to, e.weight.len())?;
        for p in e.weight.points() {
            write!(w, " {} {}", p.t, p.v)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a TD-format graph.
pub fn read_td(r: impl BufRead) -> Result<TdGraph, IoError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared_edges = 0usize;
    let mut seen_edges = 0usize;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("p") => {
                let kind = tok.next().unwrap_or("");
                if kind != "td" {
                    return Err(IoError::Parse(
                        lineno,
                        format!("expected 'p td', got 'p {kind}'"),
                    ));
                }
                let n: usize = parse_tok(&mut tok, lineno, "num_vertices")?;
                declared_edges = parse_tok(&mut tok, lineno, "num_edges")?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| IoError::Parse(lineno, "edge before problem line".into()))?;
                let from: u32 = parse_tok(&mut tok, lineno, "from")?;
                let to: u32 = parse_tok(&mut tok, lineno, "to")?;
                let k: usize = parse_tok(&mut tok, lineno, "k")?;
                let mut pts = Vec::with_capacity(k);
                for _ in 0..k {
                    let t: f64 = parse_tok(&mut tok, lineno, "t")?;
                    let v: f64 = parse_tok(&mut tok, lineno, "c")?;
                    pts.push(Pt::new(t, v));
                }
                let plf = Plf::new(pts)
                    .map_err(|e| IoError::Parse(lineno, format!("bad weight function: {e}")))?;
                b.edge(from, to, plf)?;
                seen_edges += 1;
            }
            Some(other) => {
                return Err(IoError::Parse(lineno, format!("unknown record '{other}'")));
            }
            None => unreachable!("empty lines filtered"),
        }
    }
    let g = builder
        .ok_or_else(|| IoError::Parse(0, "missing problem line".into()))?
        .build();
    if seen_edges != declared_edges {
        return Err(IoError::Parse(
            0,
            format!("problem line declared {declared_edges} edges, found {seen_edges}"),
        ));
    }
    Ok(g)
}

/// Reads a static DIMACS `.gr` file (`p sp n m`, 1-based `a u v w` arcs),
/// lifting every constant weight to a constant PLF. Parallel arcs are merged
/// by minimum.
pub fn read_dimacs_static(r: impl BufRead) -> Result<TdGraph, IoError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("p") => {
                let _sp = tok.next();
                let n: usize = parse_tok(&mut tok, lineno, "n")?;
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| IoError::Parse(lineno, "arc before problem line".into()))?;
                let u: u32 = parse_tok(&mut tok, lineno, "u")?;
                let v: u32 = parse_tok(&mut tok, lineno, "v")?;
                let w: f64 = parse_tok(&mut tok, lineno, "w")?;
                if u == 0 || v == 0 {
                    return Err(IoError::Parse(lineno, "DIMACS ids are 1-based".into()));
                }
                if u != v {
                    b.edge(u - 1, v - 1, Plf::constant(w))?;
                }
            }
            _ => {} // other record types ignored
        }
    }
    Ok(builder
        .ok_or_else(|| IoError::Parse(0, "missing problem line".into()))?
        .build())
}

fn parse_tok<'a, T: std::str::FromStr>(
    tok: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, IoError> {
    tok.next()
        .ok_or_else(|| IoError::Parse(lineno, format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| IoError::Parse(lineno, format!("invalid {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample() -> TdGraph {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::from_pairs(&[(0.0, 10.0), (60.0, 15.0)]).unwrap())
            .unwrap();
        g.add_edge(1, 2, Plf::constant(5.0)).unwrap();
        g
    }

    #[test]
    fn td_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_td(&g, &mut buf).unwrap();
        let g2 = read_td(BufReader::new(&buf[..])).unwrap();
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.num_edges(), 2);
        let e = g2.find_edge(0, 1).unwrap();
        assert!(g2.weight(e).approx_eq(g.weight(0), 1e-12));
    }

    #[test]
    fn td_rejects_wrong_edge_count() {
        let text = "p td 2 5\na 0 1 1 0 3\n";
        assert!(read_td(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn td_rejects_garbage() {
        assert!(read_td(BufReader::new("x 1 2\n".as_bytes())).is_err());
        assert!(read_td(BufReader::new("a 0 1 1 0 3\n".as_bytes())).is_err());
        assert!(read_td(BufReader::new("p td 2 1\na 0 1 2 5 3 5 4\n".as_bytes())).is_err());
    }

    #[test]
    fn dimacs_static_parses_and_merges() {
        let text = "c comment\np sp 3 4\na 1 2 10\na 2 3 5\na 1 2 7\na 2 2 1\n";
        let g = read_dimacs_static(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2); // parallel merged, self loop dropped
        let e = g.find_edge(0, 1).unwrap();
        assert_eq!(g.weight(e).eval(0.0), 7.0);
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let text = "p sp 2 1\na 0 1 3\n";
        assert!(read_dimacs_static(BufReader::new(text.as_bytes())).is_err());
    }
}
