//! Graph statistics for the dataset tables (Table 2).

use crate::graph::TdGraph;

/// Summary statistics of a time-dependent graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub vertices: usize,
    /// Number of directed edges `m`.
    pub edges: usize,
    /// Average interpolation points per edge — the paper's parameter `c`.
    pub avg_points: f64,
    /// Maximum interpolation points on any edge.
    pub max_points: usize,
    /// Mean undirected degree.
    pub avg_degree: f64,
    /// Heap bytes of all weight functions.
    pub weight_bytes: usize,
}

impl GraphStats {
    /// Computes statistics of `g`.
    pub fn of(g: &TdGraph) -> Self {
        let m = g.num_edges();
        let total_points: usize = g.edges().iter().map(|e| e.weight.len()).sum();
        let max_points = g.edges().iter().map(|e| e.weight.len()).max().unwrap_or(0);
        let deg_sum: usize = (0..g.num_vertices() as u32)
            .map(|v| g.undirected_degree(v))
            .sum();
        GraphStats {
            vertices: g.num_vertices(),
            edges: m,
            avg_points: if m == 0 {
                0.0
            } else {
                total_points as f64 / m as f64
            },
            max_points,
            avg_degree: if g.num_vertices() == 0 {
                0.0
            } else {
                deg_sum as f64 / g.num_vertices() as f64
            },
            weight_bytes: g.weight_bytes(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} c̄={:.2} deḡ={:.2} weights={:.1}MB",
            self.vertices,
            self.edges,
            self.avg_points,
            self.avg_degree,
            self.weight_bytes as f64 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    #[test]
    fn stats_of_small_graph() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(
            0,
            1,
            Plf::from_pairs(&[(0.0, 1.0), (10.0, 2.0), (20.0, 1.0)]).unwrap(),
        )
        .unwrap();
        g.add_edge(1, 2, Plf::constant(5.0)).unwrap();
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.max_points, 3);
        assert!((s.avg_points - 2.0).abs() < 1e-12);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&TdGraph::with_vertices(0));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_points, 0.0);
    }
}
