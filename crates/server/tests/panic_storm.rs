//! The sustained panic-storm soak: a hostile index panics on a
//! deterministic pseudo-random 1% of queries across thousands of batches,
//! with periodic lock poisoning thrown in. The executor and every
//! serving-path mutex must recover each time, and every non-panicking slot
//! must be bit-identical to a clean run of the same query stream.

use std::sync::Arc;
use std::time::Duration;

use td_api::{AStarChIndex, BoundedAnswer, QueryError};
use td_graph::TdGraph;
use td_plf::Plf;
use td_server::{
    splitmix64, FaultPlan, HostileIndex, Rejected, ServeError, ServerConfig, TdServer,
    INJECTED_PANIC,
};

fn grid(side: u32) -> TdGraph {
    let n = side * side;
    let mut g = TdGraph::with_vertices(n as usize);
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                g.add_edge(v, v + 1, Plf::constant(10.0 + ((v * 7) % 13) as f64))
                    .unwrap();
                g.add_edge(v + 1, v, Plf::constant(10.0 + ((v * 11) % 17) as f64))
                    .unwrap();
            }
            if r + 1 < side {
                g.add_edge(v, v + side, Plf::constant(10.0 + ((v * 3) % 19) as f64))
                    .unwrap();
                g.add_edge(v + side, v, Plf::constant(10.0 + ((v * 5) % 23) as f64))
                    .unwrap();
            }
        }
    }
    g
}

#[test]
fn sustained_panic_storm_recovers_and_stays_bit_identical() {
    let _quiet = td_server::silence_contained_panics();
    const SEED: u64 = 0x5701_2024;
    const BATCHES: usize = 2_000;
    const BURST: usize = 16;
    let side = 5u32;
    let n = (side * side) as u64;

    // Persistent panics: the afflicted 1% fail their bounded retry too, so
    // the client sees the typed `Panicked` reply — the storm never heals.
    let plan = FaultPlan {
        seed: SEED,
        panic_per_million: 10_000,
        transient_panics: false,
        ..FaultPlan::none()
    };
    // An oracle copy of the hostile wrapper predicts exactly which slots
    // panic (the decision is a pure function of (seed, s, d, t)).
    let oracle = HostileIndex::new(AStarChIndex::new(grid(side)), &plan);

    let cfg = ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_micros(50),
        ..ServerConfig::default()
    };
    let clean = TdServer::serve(Arc::new(AStarChIndex::new(grid(side))), cfg);
    let hostile = TdServer::serve(
        Arc::new(HostileIndex::new(AStarChIndex::new(grid(side)), &plan)),
        cfg,
    );

    let mut x = SEED;
    let mut faulted = 0u64;
    let mut clean_slots = 0u64;
    for batch in 0..BATCHES {
        // Poison the serving-path mutexes mid-storm, repeatedly: every
        // later admission and dispatch must recover.
        if batch % 97 == 96 {
            hostile.inject_lock_poison();
        }
        let mut queries = Vec::with_capacity(BURST);
        let mut expected = Vec::with_capacity(BURST);
        let mut replies = Vec::with_capacity(BURST);
        for _ in 0..BURST {
            x = splitmix64(x);
            let s = (x % n) as u32;
            let d = ((x >> 13) % n) as u32;
            let t = ((x >> 29) % 97) as f64;
            queries.push((s, d, t));
            expected.push(clean.submit(s, d, t, None).expect("clean admission"));
            replies.push(hostile.submit(s, d, t, None).expect("hostile admission"));
        }
        for (((s, d, t), clean_h), hostile_h) in queries.into_iter().zip(expected).zip(replies) {
            let clean_reply = clean_h.wait();
            let hostile_reply = hostile_h.wait();
            if oracle.would_fault(s, d, t) {
                faulted += 1;
                match hostile_reply {
                    Err(ServeError::Query(QueryError::Panicked(msg))) => {
                        assert!(
                            msg.contains(INJECTED_PANIC),
                            "unexpected panic on ({s},{d},{t}): {msg}"
                        );
                    }
                    other => panic!("faulted slot ({s},{d},{t}) replied {other:?}"),
                }
            } else {
                clean_slots += 1;
                // Bit-identical: the same Exact answer, compared through
                // f64 bits so -0.0/NaN drift would be caught too.
                match (&clean_reply, &hostile_reply) {
                    (Ok(BoundedAnswer::Exact(a)), Ok(BoundedAnswer::Exact(b))) => {
                        assert_eq!(
                            a.map(f64::to_bits),
                            b.map(f64::to_bits),
                            "slot ({s},{d},{t}) diverged: {clean_reply:?} vs {hostile_reply:?}"
                        );
                    }
                    _ => panic!(
                        "slot ({s},{d},{t}) not exact on both: {clean_reply:?} vs {hostile_reply:?}"
                    ),
                }
            }
        }
    }
    assert!(faulted > 0, "the storm never fired — rate or stream bug");
    assert!(clean_slots > 0);

    let stats = hostile.shutdown();
    // Every admitted request replied exactly once, through ~2k batches of
    // storm, poison, and retries.
    assert_eq!(stats.admitted, (BATCHES * BURST) as u64);
    assert_eq!(stats.replied, stats.admitted);
    assert_eq!(stats.duplicates, 0);
    assert_eq!(
        stats.exact + stats.approximate + stats.failed,
        stats.replied
    );
    // Persistent panics burn their single bounded retry before the typed
    // reply: retries tracked the faulted slots.
    assert!(
        stats.retries >= faulted,
        "retries {} < faulted {faulted}",
        stats.retries
    );
    assert_eq!(stats.failed, faulted);

    let clean_stats = clean.shutdown();
    assert_eq!(clean_stats.failed, 0);
    assert_eq!(clean_stats.retries, 0);
    assert_eq!(clean_stats.duplicates, 0);
}

#[test]
fn shutdown_refuses_new_work_but_drains_admitted() {
    let server = TdServer::serve(
        Arc::new(AStarChIndex::new(grid(3))),
        ServerConfig::default(),
    );
    let mut handles = Vec::new();
    for i in 0..32u32 {
        handles.push(server.submit(i % 9, (i + 3) % 9, 0.0, None).unwrap());
    }
    let stats = server.shutdown();
    assert_eq!(stats.replied, stats.admitted);
    for h in handles {
        assert!(h.try_reply().is_some(), "admitted request lost its reply");
    }
}

#[test]
fn expired_deadline_is_refused_typed_at_admission() {
    let server = TdServer::serve(
        Arc::new(AStarChIndex::new(grid(3))),
        ServerConfig::default(),
    );
    let past = std::time::Instant::now() - Duration::from_millis(5);
    match server.submit(0, 8, 0.0, Some(past)) {
        Err(Rejected::DeadlineExpired) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.admitted, 0);
}
