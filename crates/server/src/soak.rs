//! The time-boxed fault-injection soak harness.
//!
//! [`run_soak`] wraps a real index in a [`HostileIndex`], stands up a
//! [`TdServer`] in front of it, and drives the whole [`FaultPlan`] at once:
//! client bursts (some with storm deadlines), slow consumers, periodic lock
//! poisoning, and live-update storms that include invalid batches. The
//! [`SoakReport`] carries everything the robustness claims need:
//!
//! * **exactly-once** — every admitted request got one terminal reply, no
//!   duplicates, kinds sum to replies;
//! * **no deadlocks** — all client threads finished inside the time box
//!   (`hung` stays false);
//! * **bounded tail** — the accepted-request p99, to compare against a
//!   fault-free baseline run of the same harness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use td_api::{IncrementalIndex, LiveIndex, RoutingIndex};
use td_graph::VertexId;
use td_plf::Plf;

use crate::config::ServerConfig;
use crate::fault::{splitmix64, FaultPlan, HostileIndex};
use crate::server::{ServerStats, TdServer};

/// Soak shape: how much load, for how long, under which [`FaultPlan`].
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Load-generation time box.
    pub duration: Duration,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests per client burst (clients submit a burst, then collect all
    /// its replies).
    pub burst: usize,
    /// Client deadline outside storm windows.
    pub client_deadline: Duration,
    /// The faults to inject.
    pub plan: FaultPlan,
    /// Seed for client traffic (independent of the plan's fault seed).
    pub seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            duration: Duration::from_millis(1500),
            clients: 4,
            burst: 32,
            client_deadline: Duration::from_millis(250),
            plan: FaultPlan::none(),
            seed: 0x736f_616b, // "soak"
        }
    }
}

/// What a soak run observed. All counter fields come from the server's own
/// accounting; `hung` and the client-side fields come from the harness.
#[derive(Clone, Copy, Debug)]
pub struct SoakReport {
    /// Final server counters.
    pub stats: ServerStats,
    /// Typed rejections observed by clients (submit returned `Err`).
    pub rejected_observed: u64,
    /// p99 of the time a *rejected* submit took, nanoseconds — the "typed
    /// rejection in O(µs)" claim.
    pub reject_p99_nanos: u64,
    /// p99 admission→reply latency of accepted requests, nanoseconds.
    pub p99_nanos: u64,
    /// True when any client thread failed to finish inside the grace
    /// window, or shutdown wedged — i.e. a deadlock or a lost reply.
    pub hung: bool,
}

impl SoakReport {
    /// The exactly-once invariant: no hang, no duplicate replies, every
    /// admitted request replied, and the reply kinds account for all of
    /// them.
    pub fn exactly_once(&self) -> bool {
        !self.hung
            && self.stats.duplicates == 0
            && self.stats.replied == self.stats.admitted
            && self.stats.exact + self.stats.approximate + self.stats.failed == self.stats.replied
    }
}

/// How long after the time box the harness waits for threads before
/// declaring the run hung. Generous: a 1-core CI box draining a full queue
/// of uncapped queries needs real time, and a false "hang" is worse than a
/// slow pass.
const GRACE: Duration = Duration::from_secs(30);

/// How long each client waits on one reply before declaring a hang. An
/// admitted request's reply can only be missing if the dispatcher died.
const REPLY_PATIENCE: Duration = Duration::from_secs(10);

/// Runs the full soak against a live (incrementally updatable) index: the
/// update-storm lane is exercised end to end through `LiveIndex::try_apply`.
pub fn run_soak<I>(index: I, server_cfg: ServerConfig, cfg: &SoakConfig) -> SoakReport
where
    I: IncrementalIndex + Clone + 'static,
{
    let (num_vertices, edges, non_edge) = graph_shape(&index);
    let hostile = HostileIndex::new(index, &cfg.plan);
    let server = TdServer::serve_live(Arc::new(LiveIndex::new(hostile)), server_cfg);
    drive(server, num_vertices, edges, non_edge, cfg)
}

/// Runs the soak against a fixed index (no update lane; update storms, if
/// planned, exercise the typed `LaneUnavailable` shed path instead). This is
/// the entry `tdx serve` uses for snapshot-loaded `Box<dyn RoutingIndex>`
/// backends.
pub fn run_soak_fixed<I>(index: I, server_cfg: ServerConfig, cfg: &SoakConfig) -> SoakReport
where
    I: RoutingIndex + 'static,
{
    let (num_vertices, edges, non_edge) = graph_shape(&index);
    let hostile = HostileIndex::new(index, &cfg.plan);
    let server = TdServer::serve(Arc::new(hostile), server_cfg);
    drive(server, num_vertices, edges, non_edge, cfg)
}

/// Real edge endpoints (for valid update batches) and one absent pair (for
/// invalid ones that must roll back).
type GraphShape = (
    usize,
    Vec<(VertexId, VertexId)>,
    Option<(VertexId, VertexId)>,
);

fn graph_shape<I: RoutingIndex>(index: &I) -> GraphShape {
    let g = index.graph();
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId)> = g.edges().iter().map(|e| (e.from, e.to)).collect();
    let non_edge = (0..n as VertexId)
        .flat_map(|u| (0..n as VertexId).map(move |v| (u, v)))
        .find(|&(u, v)| u != v && !edges.contains(&(u, v)));
    (n, edges, non_edge)
}

fn storm_window(elapsed: Duration) -> bool {
    // A 150 ms deadline storm every 450 ms of the run (phase 1, so even the
    // shortest soak crosses at least one storm and one calm window).
    (elapsed.as_millis() / 150) % 3 == 1
}

fn drive<I: RoutingIndex + 'static>(
    server: TdServer<I>,
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    non_edge: Option<(VertexId, VertexId)>,
    cfg: &SoakConfig,
) -> SoakReport {
    // Injected panics are the workload here, not news.
    let _quiet = crate::fault::silence_contained_panics();
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let hung = Arc::new(AtomicBool::new(false));
    let reject_lat = Arc::new(td_obs::Histogram::new());
    let rejected_observed = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let start = Instant::now();
    let n = num_vertices.max(1) as u64;
    let plan = cfg.plan;

    let mut clients = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let hung = Arc::clone(&hung);
        let reject_lat = Arc::clone(&reject_lat);
        let rejected_observed = Arc::clone(&rejected_observed);
        let cfg = *cfg;
        clients.push(std::thread::spawn(move || {
            let mut x = splitmix64(cfg.seed ^ (c as u64).wrapping_mul(0x9e37_79b9));
            let slow = plan.slow_consumers && c == 0;
            loop {
                let elapsed = start.elapsed();
                if elapsed >= cfg.duration || stop.load(Ordering::Relaxed) {
                    return;
                }
                let storm = plan.deadline_storm && storm_window(elapsed);
                let mut handles = Vec::with_capacity(cfg.burst);
                for _ in 0..cfg.burst {
                    x = splitmix64(x);
                    let s = (x % n) as VertexId;
                    let d = ((x >> 17) % n) as VertexId;
                    let t = ((x >> 34) % 97) as f64;
                    let now = Instant::now();
                    let deadline = if storm {
                        // Half the storm's deadlines are already expired at
                        // submission; the rest are near-impossible.
                        if x & 1 == 0 {
                            now.checked_sub(Duration::from_millis(1))
                        } else {
                            Some(now + Duration::from_micros(200))
                        }
                    } else {
                        Some(now + cfg.client_deadline)
                    };
                    let t0 = Instant::now();
                    match server.submit(s, d, t, deadline) {
                        Ok(h) => handles.push(h),
                        Err(_) => {
                            rejected_observed.fetch_add(1, Ordering::Relaxed);
                            reject_lat
                                .observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                        }
                    }
                }
                if slow {
                    // A stalled consumer: replies pile up in their slots;
                    // the dispatcher must not care.
                    std::thread::sleep(Duration::from_millis(10));
                }
                for h in handles {
                    if h.wait_timeout(REPLY_PATIENCE).is_none() {
                        hung.store(true, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            }
        }));
    }

    let mut aux = Vec::new();
    if plan.update_storm && !edges.is_empty() {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let seed = cfg.seed;
        let duration = cfg.duration;
        aux.push(std::thread::spawn(move || {
            let mut x = splitmix64(seed ^ 0xab5e_77e0);
            while start.elapsed() < duration && !stop.load(Ordering::Relaxed) {
                for k in 0..8u32 {
                    x = splitmix64(x);
                    let batch = if k % 4 == 3 {
                        match non_edge {
                            // An invalid batch: must roll back, and must
                            // not take the lane down.
                            Some((u, v)) => vec![(u, v, Plf::constant(30.0))],
                            None => continue,
                        }
                    } else {
                        let (u, v) = edges[(x % edges.len() as u64) as usize];
                        vec![(u, v, Plf::constant(30.0 + (x % 90) as f64))]
                    };
                    // Typed sheds (full/stuck lane) are expected under storm.
                    let _ = server.submit_update(batch);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }));
    }
    if plan.poison_locks {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        let duration = cfg.duration;
        aux.push(std::thread::spawn(move || {
            while start.elapsed() < duration && !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                server.inject_lock_poison();
            }
        }));
    }

    // Time-boxed join: a client that cannot finish is the deadlock the
    // harness exists to catch — flag it and leak the thread rather than
    // hang the suite.
    let deadline = start + cfg.duration + GRACE;
    for t in clients {
        if !join_until(t, deadline) {
            hung.store(true, Ordering::Relaxed);
            stop.store(true, Ordering::Relaxed);
        }
    }
    for t in aux {
        if !join_until(t, deadline) {
            hung.store(true, Ordering::Relaxed);
        }
    }

    // Clients collected every reply before exiting, so the latency
    // histogram is complete here even though shutdown hasn't run yet.
    let p99_nanos = server.latency_snapshot().quantile(0.99);
    let mut report = SoakReport {
        stats: server.stats(),
        rejected_observed: rejected_observed.load(Ordering::Relaxed),
        reject_p99_nanos: reject_lat.snapshot().quantile(0.99),
        p99_nanos,
        hung: hung.load(Ordering::Relaxed),
    };
    if report.hung {
        // Leaked threads still hold the server Arc; skip shutdown.
        return report;
    }
    let server = match Arc::try_unwrap(server) {
        Ok(s) => s,
        Err(_) => {
            report.hung = true;
            return report;
        }
    };
    // Shutdown itself is time-boxed too: a wedged drain is a hang.
    let out = Arc::new(Mutex::new(None));
    let out2 = Arc::clone(&out);
    let closer = std::thread::spawn(move || {
        let stats = server.shutdown();
        *out2.lock().unwrap_or_else(|p| p.into_inner()) = Some(stats);
    });
    if join_until(closer, Instant::now() + GRACE) {
        if let Some(stats) = *out.lock().unwrap_or_else(|p| p.into_inner()) {
            report.stats = stats;
        }
    } else {
        report.hung = true;
    }
    report
}

/// Polls a join handle until `deadline`; true = joined.
fn join_until(handle: std::thread::JoinHandle<()>, deadline: Instant) -> bool {
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // A client that panicked never collected its replies: treat as hung.
    handle.join().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_api::AStarChIndex;
    use td_graph::TdGraph;

    fn grid(side: u32) -> TdGraph {
        let n = side * side;
        let mut g = TdGraph::with_vertices(n as usize);
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    g.add_edge(v, v + 1, Plf::constant(10.0 + ((v * 7) % 13) as f64))
                        .unwrap();
                    g.add_edge(v + 1, v, Plf::constant(10.0 + ((v * 11) % 17) as f64))
                        .unwrap();
                }
                if r + 1 < side {
                    g.add_edge(v, v + side, Plf::constant(10.0 + ((v * 3) % 19) as f64))
                        .unwrap();
                    g.add_edge(v + side, v, Plf::constant(10.0 + ((v * 5) % 23) as f64))
                        .unwrap();
                }
            }
        }
        g
    }

    #[test]
    fn clean_soak_is_exactly_once() {
        let cfg = SoakConfig {
            duration: Duration::from_millis(300),
            clients: 2,
            burst: 8,
            ..SoakConfig::default()
        };
        let report = run_soak(AStarChIndex::new(grid(4)), ServerConfig::default(), &cfg);
        assert!(report.exactly_once(), "clean soak violated: {report:?}");
        assert!(report.stats.admitted > 0, "no load generated");
        assert_eq!(report.stats.retries, 0);
    }

    #[test]
    fn full_fault_plan_soak_holds_the_invariants() {
        let cfg = SoakConfig {
            duration: Duration::from_millis(600),
            clients: 3,
            burst: 8,
            plan: FaultPlan::full(0xdead_beef),
            ..SoakConfig::default()
        };
        let report = run_soak(AStarChIndex::new(grid(4)), ServerConfig::default(), &cfg);
        assert!(report.exactly_once(), "faulted soak violated: {report:?}");
        assert!(report.stats.admitted > 0, "no load generated");
        // The deadline storm produced typed rejections and they were fast.
        assert!(report.rejected_observed > 0, "storm produced no rejections");
    }

    #[test]
    fn fixed_soak_sheds_updates_typed() {
        let mut plan = FaultPlan::none();
        plan.update_storm = true;
        let cfg = SoakConfig {
            duration: Duration::from_millis(200),
            clients: 1,
            burst: 4,
            plan,
            ..SoakConfig::default()
        };
        let report = run_soak_fixed(AStarChIndex::new(grid(3)), ServerConfig::default(), &cfg);
        assert!(report.exactly_once(), "fixed soak violated: {report:?}");
        // No lane on a fixed server: every storm batch shed typed.
        assert_eq!(report.stats.updates_applied, 0);
        assert!(report.stats.updates_shed > 0);
    }
}
