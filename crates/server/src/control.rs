// td-lint: reader-path
// (control plane: pure decision functions — no locks, no channels, no
// allocation; the dispatcher and admission path call these inline)

//! The overload control plane, as data-in/data-out functions.
//!
//! Admission decisions and overload-state transitions are pure: they read a
//! few integers (queue depth, window p99) and return a verdict. All the
//! policy — watermarks, hysteresis, the p99 multiple — lives here where it
//! is unit-testable without threads, while the mechanics (locks, metrics,
//! the actual shedding) stay in the server.
//!
//! The state machine has three rungs, degrading in the same spirit as the
//! query ladder (exact → approximate → typed refusal):
//!
//! * **Normal** — full settle budgets, everything admitted.
//! * **Degraded** — approximate-first: dispatched queries get a tight
//!   settle cap, trading exactness for bounded latency while the backlog
//!   drains. Entered on the degrade watermark or a p99 blow-up.
//! * **Shedding** — new work is refused with [`Rejected::Overloaded`] so
//!   already-admitted requests keep their latency. Entered on the shed
//!   watermark; left through Degraded, never straight to Normal.
//!
//! Watermarks use hysteresis (`recover_below` sits well under
//! `degrade_above`) so the controller cannot flap on a queue hovering at
//! one boundary.

use std::time::Instant;

use td_dijkstra::QueryBudget;

use crate::request::Rejected;

/// The overload state machine's rung. Stored as a `u8` in an atomic by the
/// server; the discriminants are the exported gauge values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum OverloadMode {
    /// Full budgets, everything admitted.
    Normal = 0,
    /// Approximate-first: tight settle caps on dispatched queries.
    Degraded = 1,
    /// New work refused with [`Rejected::Overloaded`].
    Shedding = 2,
}

impl OverloadMode {
    /// Decodes the atomic representation (unknown values read as Normal).
    // td-lint: hot
    #[inline]
    pub fn from_u8(v: u8) -> OverloadMode {
        match v {
            1 => OverloadMode::Degraded,
            2 => OverloadMode::Shedding,
            _ => OverloadMode::Normal,
        }
    }

    /// The atomic / gauge encoding.
    #[inline]
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

/// Watermarks and windows of the overload controller.
#[derive(Clone, Copy, Debug)]
pub struct OverloadPolicy {
    /// Queue fill fraction at which Normal degrades (default 0.5).
    pub degrade_above: f64,
    /// Queue fill fraction at which the server starts shedding (0.85).
    pub shed_above: f64,
    /// Fill fraction the queue must fall to before stepping one rung back
    /// toward Normal — the hysteresis band (0.25).
    pub recover_below: f64,
    /// Recent-window p99 above `baseline × this` also degrades (8.0).
    pub p99_multiple: f64,
    /// Minimum observations before a window's p99 is trusted (64).
    pub min_window: u64,
    /// Noise floor for the latency baseline, nanoseconds (200 µs): a
    /// baseline below this is clamped up so microsecond jitter on tiny
    /// graphs cannot trip the p99 rule.
    pub baseline_floor_nanos: u64,
}

impl Default for OverloadPolicy {
    fn default() -> OverloadPolicy {
        OverloadPolicy {
            degrade_above: 0.5,
            shed_above: 0.85,
            recover_below: 0.25,
            p99_multiple: 8.0,
            min_window: 64,
            baseline_floor_nanos: 200_000,
        }
    }
}

/// One controller observation window: recent accepted-request p99 (0 when
/// the window held fewer than `min_window` samples) and the calibrated
/// fault-free baseline (0 until calibrated).
#[derive(Clone, Copy, Debug, Default)]
pub struct Window {
    /// Recent p99, nanoseconds; 0 = not enough samples this window.
    pub p99_nanos: u64,
    /// Baseline p99, nanoseconds; 0 = not yet calibrated.
    pub baseline_nanos: u64,
}

/// The admission verdict, decided in O(µs) before the request touches the
/// queue: shutdown and expired deadlines are always typed refusals;
/// shedding mode refuses everything else. Queue capacity is enforced by the
/// bounded queue itself (the push is the only race-free check).
// td-lint: hot
#[inline]
pub fn admission_decision(
    shutting_down: bool,
    deadline: Option<Instant>,
    now: Instant,
    mode: OverloadMode,
) -> Option<Rejected> {
    if shutting_down {
        return Some(Rejected::ShuttingDown);
    }
    if let Some(d) = deadline {
        if now >= d {
            return Some(Rejected::DeadlineExpired);
        }
    }
    if matches!(mode, OverloadMode::Shedding) {
        return Some(Rejected::Overloaded);
    }
    None
}

/// One transition of the overload state machine, evaluated by the
/// dispatcher after every batch.
// td-lint: hot
pub fn next_mode(
    mode: OverloadMode,
    depth: usize,
    capacity: usize,
    window: Window,
    policy: &OverloadPolicy,
) -> OverloadMode {
    let cap = capacity.max(1) as f64;
    let fill = depth as f64 / cap;
    let p99_hot = window.baseline_nanos > 0
        && window.p99_nanos > 0
        && (window.p99_nanos as f64) > (window.baseline_nanos.max(1) as f64) * policy.p99_multiple;
    if fill >= policy.shed_above {
        return OverloadMode::Shedding;
    }
    match mode {
        OverloadMode::Normal => {
            if fill >= policy.degrade_above || p99_hot {
                OverloadMode::Degraded
            } else {
                OverloadMode::Normal
            }
        }
        OverloadMode::Degraded => {
            if fill <= policy.recover_below && !p99_hot {
                OverloadMode::Normal
            } else {
                OverloadMode::Degraded
            }
        }
        // Shedding steps back through Degraded once the backlog drains,
        // never straight to Normal: the rung below re-examines the window
        // before full budgets return.
        OverloadMode::Shedding => {
            if fill <= policy.recover_below {
                OverloadMode::Degraded
            } else {
                OverloadMode::Shedding
            }
        }
    }
}

/// The settle cap dispatched queries run under in `mode`.
// td-lint: hot
#[inline]
pub fn settle_cap(mode: OverloadMode, normal: u64, degraded: u64) -> u64 {
    match mode {
        OverloadMode::Normal => normal,
        // Shedding applies the degraded cap too: the backlog being drained
        // is exactly the work that must finish fast.
        OverloadMode::Degraded | OverloadMode::Shedding => degraded,
    }
}

/// The per-slot budget for one dispatched request: the mode's settle cap,
/// tightened (never loosened) by the request's own client deadline.
// td-lint: hot
#[inline]
pub fn slot_budget(
    mode: OverloadMode,
    normal: u64,
    degraded: u64,
    deadline: Option<Instant>,
) -> QueryBudget {
    QueryBudget::settles(settle_cap(mode, normal, degraded)).tightened_to(deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const POLICY: OverloadPolicy = OverloadPolicy {
        degrade_above: 0.5,
        shed_above: 0.85,
        recover_below: 0.25,
        p99_multiple: 8.0,
        min_window: 64,
        baseline_floor_nanos: 200_000,
    };

    fn quiet() -> Window {
        Window {
            p99_nanos: 1_000_000,
            baseline_nanos: 1_000_000,
        }
    }

    #[test]
    fn admission_orders_its_refusals() {
        let now = Instant::now();
        let past = now - Duration::from_millis(1);
        let future = now + Duration::from_secs(1);
        // Shutdown wins over everything.
        assert_eq!(
            admission_decision(true, Some(past), now, OverloadMode::Normal),
            Some(Rejected::ShuttingDown)
        );
        // An expired deadline is typed even while shedding.
        assert_eq!(
            admission_decision(false, Some(past), now, OverloadMode::Shedding),
            Some(Rejected::DeadlineExpired)
        );
        assert_eq!(
            admission_decision(false, Some(future), now, OverloadMode::Shedding),
            Some(Rejected::Overloaded)
        );
        assert_eq!(
            admission_decision(false, Some(future), now, OverloadMode::Normal),
            None
        );
        assert_eq!(
            admission_decision(false, None, now, OverloadMode::Degraded),
            None
        );
    }

    #[test]
    fn watermarks_walk_the_state_machine_with_hysteresis() {
        let m = OverloadMode::Normal;
        // Below the degrade watermark nothing happens.
        assert_eq!(
            next_mode(m, 49, 100, quiet(), &POLICY),
            OverloadMode::Normal
        );
        let m = next_mode(m, 50, 100, quiet(), &POLICY);
        assert_eq!(m, OverloadMode::Degraded);
        // Inside the hysteresis band the rung holds.
        assert_eq!(
            next_mode(m, 40, 100, quiet(), &POLICY),
            OverloadMode::Degraded
        );
        assert_eq!(
            next_mode(m, 26, 100, quiet(), &POLICY),
            OverloadMode::Degraded
        );
        // Draining below recover_below steps back to Normal.
        assert_eq!(
            next_mode(m, 25, 100, quiet(), &POLICY),
            OverloadMode::Normal
        );
        // The shed watermark fires from any rung.
        let m = next_mode(OverloadMode::Normal, 85, 100, quiet(), &POLICY);
        assert_eq!(m, OverloadMode::Shedding);
        assert_eq!(
            next_mode(m, 84, 100, quiet(), &POLICY),
            OverloadMode::Shedding
        );
        // Shedding exits through Degraded, never straight to Normal.
        let m = next_mode(m, 10, 100, quiet(), &POLICY);
        assert_eq!(m, OverloadMode::Degraded);
        assert_eq!(
            next_mode(m, 10, 100, quiet(), &POLICY),
            OverloadMode::Normal
        );
    }

    #[test]
    fn p99_blowup_degrades_without_queue_pressure() {
        let hot = Window {
            p99_nanos: 9_000_000,
            baseline_nanos: 1_000_000,
        };
        assert_eq!(
            next_mode(OverloadMode::Normal, 1, 100, hot, &POLICY),
            OverloadMode::Degraded
        );
        // And holds Degraded until the window cools.
        assert_eq!(
            next_mode(OverloadMode::Degraded, 1, 100, hot, &POLICY),
            OverloadMode::Degraded
        );
        assert_eq!(
            next_mode(OverloadMode::Degraded, 1, 100, quiet(), &POLICY),
            OverloadMode::Normal
        );
        // An uncalibrated baseline (0) never trips the rule.
        let uncal = Window {
            p99_nanos: 9_000_000,
            baseline_nanos: 0,
        };
        assert_eq!(
            next_mode(OverloadMode::Normal, 1, 100, uncal, &POLICY),
            OverloadMode::Normal
        );
    }

    #[test]
    fn budgets_follow_the_mode_and_the_deadline() {
        assert_eq!(settle_cap(OverloadMode::Normal, u64::MAX, 1000), u64::MAX);
        assert_eq!(settle_cap(OverloadMode::Degraded, u64::MAX, 1000), 1000);
        assert_eq!(settle_cap(OverloadMode::Shedding, u64::MAX, 1000), 1000);
        let d = Instant::now() + Duration::from_millis(5);
        let b = slot_budget(OverloadMode::Degraded, u64::MAX, 1000, Some(d));
        assert_eq!(b.max_settles(), 1000);
        assert_eq!(b.deadline(), Some(d));
        let b = slot_budget(OverloadMode::Normal, u64::MAX, 1000, None);
        assert_eq!(b.max_settles(), u64::MAX);
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn mode_round_trips_through_u8() {
        for m in [
            OverloadMode::Normal,
            OverloadMode::Degraded,
            OverloadMode::Shedding,
        ] {
            assert_eq!(OverloadMode::from_u8(m.as_u8()), m);
        }
        assert_eq!(OverloadMode::from_u8(7), OverloadMode::Normal);
    }
}
