//! The bounded MPMC admission queue.
//!
//! Producers (client threads calling `submit`) push without ever blocking:
//! a full queue hands the request straight back so admission can refuse it
//! with a typed [`crate::Rejected::QueueFull`] — depth is capped by
//! construction, so overload can never become unbounded memory growth or
//! silent latency collapse. The consumer (the dispatcher) blocks on a
//! condvar and drains in coalesced batches.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::request::Pending;
use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};

struct State {
    items: VecDeque<Pending>,
    closed: bool,
}

pub(crate) struct AdmissionQueue {
    state: Mutex<State>,
    not_empty: Condvar,
    capacity: usize,
    /// Lock-free mirror of the queue depth for the controller, the gauge,
    /// and `QueueFull` payloads. Advisory (updated after the fact); the
    /// capacity check itself runs under the lock and is exact.
    depth: AtomicUsize,
}

/// Outcome of the consumer's blocking pop.
pub(crate) enum Popped {
    Item(Pending),
    /// Closed *and* drained: the dispatcher can retire.
    Closed,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advisory current depth (exact between mutations).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Admits `p` at the tail. On a full (or closed) queue the request is
    /// handed back untouched so the caller can produce a typed rejection —
    /// producers never block and never grow the queue past its cap.
    pub(crate) fn push_back(&self, p: Pending) -> Result<(), Pending> {
        let mut state = lock_recover(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(p);
        }
        state.items.push_back(p);
        self.depth.store(state.items.len(), Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Re-enqueues an already-admitted request at the *head* (the panic
    /// retry path). Deliberately ignores the capacity cap: the request
    /// holds an admission slot already, and dropping it would break the
    /// exactly-once reply invariant. No-op capacity excursions are bounded
    /// by the batch size.
    pub(crate) fn push_front(&self, p: Pending) {
        let mut state = lock_recover(&self.state);
        state.items.push_front(p);
        self.depth.store(state.items.len(), Ordering::Relaxed);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Blocks until an item is available (or the queue is closed *and*
    /// empty). First call of a coalesced batch.
    pub(crate) fn pop_wait(&self) -> Popped {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(p) = state.items.pop_front() {
                self.depth.store(state.items.len(), Ordering::Relaxed);
                return Popped::Item(p);
            }
            if state.closed {
                return Popped::Closed;
            }
            state = wait_recover(&self.not_empty, state);
        }
    }

    /// Pops, waiting at most until `deadline` — the coalescing fill: after
    /// the batch's first request, the dispatcher tops the batch up until
    /// either it is full or the coalesce window closes. `None` on window
    /// close *or* queue closure (the items already popped still get served).
    pub(crate) fn pop_until(&self, deadline: Instant) -> Option<Pending> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(p) = state.items.pop_front() {
                self.depth.store(state.items.len(), Ordering::Relaxed);
                return Some(p);
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = wait_timeout_recover(&self.not_empty, state, deadline - now);
        }
    }

    /// Closes admission and wakes the consumer. Items already queued are
    /// still drained by `pop_wait` before it reports `Closed`.
    pub(crate) fn close(&self) {
        let mut state = lock_recover(&self.state);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Chaos hook: poisons the queue mutex by panicking (contained) while
    /// holding the guard. The queue state is untouched — the next operation
    /// must recover and keep serving.
    pub(crate) fn poison(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.state.lock();
            panic!("injected lock poison");
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReplySlot;
    use std::sync::Arc;
    use std::time::Duration;

    fn pending(i: u32) -> Pending {
        Pending {
            query: (i, i, 0.0),
            deadline: None,
            submitted: Instant::now(),
            attempts: 0,
            slot: Arc::new(ReplySlot::new()),
        }
    }

    #[test]
    fn capacity_is_a_hard_cap_and_fifo_holds() {
        let q = AdmissionQueue::new(2);
        assert!(q.push_back(pending(0)).is_ok());
        assert!(q.push_back(pending(1)).is_ok());
        assert_eq!(q.depth(), 2);
        // The third admission bounces with the request handed back.
        let bounced = q.push_back(pending(2)).unwrap_err();
        assert_eq!(bounced.query.0, 2);
        // Retry push_front bypasses the cap (admitted work is never dropped)
        // and lands at the head.
        q.push_front(pending(9));
        assert_eq!(q.depth(), 3);
        match q.pop_wait() {
            Popped::Item(p) => assert_eq!(p.query.0, 9),
            Popped::Closed => panic!("queue is open"),
        }
        match q.pop_wait() {
            Popped::Item(p) => assert_eq!(p.query.0, 0),
            Popped::Closed => panic!("queue is open"),
        }
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = AdmissionQueue::new(4);
        assert!(q.push_back(pending(0)).is_ok());
        q.close();
        // Closed queues refuse new work...
        assert!(q.push_back(pending(1)).is_err());
        // ...but still hand out what was admitted.
        assert!(matches!(q.pop_wait(), Popped::Item(_)));
        assert!(matches!(q.pop_wait(), Popped::Closed));
        assert!(q
            .pop_until(Instant::now() + Duration::from_millis(1))
            .is_none());
    }

    #[test]
    fn pop_until_times_out_empty() {
        let q = AdmissionQueue::new(4);
        let start = Instant::now();
        assert!(q.pop_until(start + Duration::from_millis(10)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn poisoned_queue_keeps_serving() {
        let q = AdmissionQueue::new(4);
        assert!(q.push_back(pending(7)).is_ok());
        q.poison();
        assert!(q.state.is_poisoned());
        // Every operation recovers: push, pop, close.
        assert!(q.push_back(pending(8)).is_ok());
        match q.pop_wait() {
            Popped::Item(p) => assert_eq!(p.query.0, 7),
            Popped::Closed => panic!("queue is open"),
        }
        q.close();
        assert!(matches!(q.pop_wait(), Popped::Item(_)));
        assert!(matches!(q.pop_wait(), Popped::Closed));
    }
}
