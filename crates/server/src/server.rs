//! [`TdServer`]: the threaded serving core.
//!
//! ```text
//!  clients ──submit()──▶ admission ──▶ bounded queue ──▶ coalescer ──▶
//!    ParallelExecutor::query_batch_bounded_each ──▶ reply slots
//!                         │                             ▲
//!                         └── typed Rejected (O(µs))    └── 1 panic retry
//! ```
//!
//! One dispatcher thread drains the admission queue into coalesced batches
//! (size- or window-triggered), builds per-slot budgets from the overload
//! mode and each request's own deadline, and runs them on a pooled
//! [`ParallelExecutor`]. After every batch the overload controller re-reads
//! queue depth and the recent latency window and walks the
//! Normal → Degraded → Shedding state machine. An optional updater thread
//! applies live traffic refreshes through [`LiveIndex::try_apply`] with
//! rollback-and-retry under a watchdog — an update storm sheds *updates*,
//! never queries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use td_api::{
    BoundedAnswer, CostQuery, IncrementalIndex, LiveIndex, ParallelExecutor, QueryError,
    RoutingIndex,
};
use td_dijkstra::QueryBudget;
use td_graph::VertexId;
use td_obs::HistSnapshot;
use td_plf::Plf;

use crate::config::ServerConfig;
use crate::control::{self, OverloadMode, Window};
use crate::queue::{AdmissionQueue, Popped};
use crate::request::{Pending, Rejected, ReplySlot, RequestHandle, ServeError, ServeResult};
use crate::update::{UpdateLane, UpdateRejected};

/// Where the dispatcher gets its index snapshots.
enum Source<I> {
    /// A fixed immutable index: epoch is always 0.
    Fixed(Arc<I>),
    /// A live double-buffered index: snapshots follow the epoch.
    Live(Arc<LiveIndex<I>>),
}

impl<I> Source<I> {
    fn snapshot_with_epoch(&self) -> (u64, Arc<I>) {
        match self {
            Source::Fixed(index) => (0, Arc::clone(index)),
            Source::Live(live) => live.snapshot_with_epoch(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Source::Fixed(_) => 0,
            Source::Live(live) => live.epoch(),
        }
    }
}

/// Monotonic serving counters, snapshot as [`ServerStats`].
#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    replied: AtomicU64,
    duplicates: AtomicU64,
    exact: AtomicU64,
    approximate: AtomicU64,
    failed: AtomicU64,
    shed_expired: AtomicU64,
    retries: AtomicU64,
    batches: AtomicU64,
}

/// A point-in-time snapshot of a server's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission with a typed [`Rejected`].
    pub rejected: u64,
    /// Terminal replies delivered (first fulfillment per request).
    pub replied: u64,
    /// Attempted second replies to one request — always 0 unless the
    /// exactly-once invariant broke.
    pub duplicates: u64,
    /// Replies that were [`BoundedAnswer::Exact`].
    pub exact: u64,
    /// Replies that were flagged [`BoundedAnswer::Approximate`] intervals.
    pub approximate: u64,
    /// Replies that were typed errors ([`ServeError`]).
    pub failed: u64,
    /// Admitted requests shed before dispatch on an expired deadline
    /// (their typed reply is included in `failed`).
    pub shed_expired: u64,
    /// Panicked slots granted their single bounded retry.
    pub retries: u64,
    /// Executor batches dispatched.
    pub batches: u64,
    /// Live-update batches applied.
    pub updates_applied: u64,
    /// Live-update batches retried after a rollback.
    pub update_retries: u64,
    /// Live-update batches shed (full lane, stuck lane, terminal failure).
    pub updates_shed: u64,
}

/// Pre-resolved rejection counter handles, so admission's metric export is
/// one sharded atomic add — never a registry lock.
struct RejectCounters {
    queue_full: Arc<td_obs::Counter>,
    overloaded: Arc<td_obs::Counter>,
    deadline: Arc<td_obs::Counter>,
    shutdown: Arc<td_obs::Counter>,
}

impl RejectCounters {
    fn new() -> RejectCounters {
        let m = td_obs::metrics();
        RejectCounters {
            queue_full: m.server_rejected("queue_full"),
            overloaded: m.server_rejected("overloaded"),
            deadline: m.server_rejected("deadline_expired"),
            shutdown: m.server_rejected("shutdown"),
        }
    }

    fn of(&self, r: &Rejected) -> &td_obs::Counter {
        match r {
            Rejected::QueueFull { .. } => &self.queue_full,
            Rejected::Overloaded => &self.overloaded,
            Rejected::DeadlineExpired => &self.deadline,
            Rejected::ShuttingDown => &self.shutdown,
        }
    }
}

/// State shared by clients, the dispatcher, and the updater.
struct Shared<I> {
    cfg: ServerConfig,
    source: Source<I>,
    queue: AdmissionQueue,
    update: UpdateLane,
    has_update_lane: bool,
    shutdown: AtomicBool,
    /// Current [`OverloadMode`] (its `as_u8`), read lock-free at admission.
    mode: AtomicU8,
    started: Instant,
    /// Private admission→reply latency histogram: powers the overload
    /// controller's recent-p99 window and per-server soak reports without
    /// mixing servers through the global catalog.
    latency: td_obs::Histogram,
    counters: Counters,
    rejects: RejectCounters,
}

impl<I: RoutingIndex> Shared<I> {
    /// Delivers `result` as the request's terminal reply, keeping the
    /// exactly-once accounting and latency export.
    fn fulfill(&self, p: Pending, result: ServeResult) {
        let kind = match &result {
            Ok(BoundedAnswer::Exact(_)) => &self.counters.exact,
            Ok(BoundedAnswer::Approximate { .. }) => &self.counters.approximate,
            Err(_) => &self.counters.failed,
        };
        if p.slot.fulfill(result) {
            self.counters.replied.fetch_add(1, Ordering::Relaxed);
            kind.fetch_add(1, Ordering::Relaxed);
            let nanos = p.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.latency.observe(nanos);
            if td_obs::ENABLED {
                td_obs::metrics().server_request_seconds.observe(nanos);
            }
        } else {
            self.counters.duplicates.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_reject(&self, r: &Rejected) {
        self.counters.rejected.fetch_add(1, Ordering::Relaxed);
        if td_obs::ENABLED {
            self.rejects.of(r).inc();
        }
    }
}

/// The overload-safe serving front-end over any [`RoutingIndex`].
///
/// See the crate docs for the pipeline. Construction spawns the dispatcher
/// (and, for [`TdServer::serve_live`], the updater); [`TdServer::shutdown`]
/// — or dropping the server — closes admission, drains the queue (every
/// admitted request still gets its exactly-one reply), and joins the
/// threads.
pub struct TdServer<I: RoutingIndex + 'static> {
    shared: Arc<Shared<I>>,
    dispatcher: Option<JoinHandle<()>>,
    updater: Option<JoinHandle<()>>,
}

impl<I: RoutingIndex + 'static> TdServer<I> {
    /// Serves a fixed immutable index.
    pub fn serve(index: Arc<I>, cfg: ServerConfig) -> TdServer<I> {
        TdServer::start(Source::Fixed(index), cfg, false)
    }

    fn start(source: Source<I>, cfg: ServerConfig, live: bool) -> TdServer<I> {
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            update: UpdateLane::new(cfg.update_queue_capacity),
            has_update_lane: live,
            shutdown: AtomicBool::new(false),
            mode: AtomicU8::new(OverloadMode::Normal.as_u8()),
            started: Instant::now(),
            latency: td_obs::Histogram::new(),
            counters: Counters::default(),
            rejects: RejectCounters::new(),
            cfg,
            source,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("td-server-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawn dispatcher")
        };
        TdServer {
            shared,
            dispatcher: Some(dispatcher),
            updater: None,
        }
    }

    /// Submits one travel-cost query with an optional client deadline.
    ///
    /// Admission is O(µs): a typed [`Rejected`] (shutdown, expired
    /// deadline, shedding mode, full queue) comes back before the request
    /// touches a queue slot or a worker. An accepted request is guaranteed
    /// exactly one terminal reply on the returned handle.
    pub fn submit(
        &self,
        s: VertexId,
        d: VertexId,
        t: f64,
        deadline: Option<Instant>,
    ) -> Result<RequestHandle, Rejected> {
        self.submit_query((s, d, t), deadline)
    }

    /// [`TdServer::submit`] taking the query as a [`CostQuery`] tuple.
    pub fn submit_query(
        &self,
        query: CostQuery,
        deadline: Option<Instant>,
    ) -> Result<RequestHandle, Rejected> {
        let shared = &self.shared;
        let now = Instant::now();
        let mode = OverloadMode::from_u8(shared.mode.load(Ordering::Relaxed));
        if let Some(r) = control::admission_decision(
            shared.shutdown.load(Ordering::Relaxed),
            deadline,
            now,
            mode,
        ) {
            shared.record_reject(&r);
            return Err(r);
        }
        let slot = Arc::new(ReplySlot::new());
        let pending = Pending {
            query,
            deadline,
            submitted: now,
            attempts: 0,
            slot: Arc::clone(&slot),
        };
        match shared.queue.push_back(pending) {
            Ok(()) => {
                shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                if td_obs::ENABLED {
                    td_obs::metrics().server_admitted_total.inc();
                }
                Ok(RequestHandle {
                    slot,
                    submitted: now,
                })
            }
            Err(_) => {
                let r = if shared.shutdown.load(Ordering::Relaxed) {
                    Rejected::ShuttingDown
                } else {
                    Rejected::QueueFull {
                        depth: shared.queue.depth(),
                        capacity: shared.queue.capacity(),
                    }
                };
                shared.record_reject(&r);
                Err(r)
            }
        }
    }

    /// Submits one batch of live edge-weight changes to the supervised
    /// update lane. Sheds (typed) when the lane is missing (fixed-index
    /// servers), stuck past the watchdog, full, or shutting down — queries
    /// are never paused by update pressure, whatever the answer here.
    pub fn submit_update(
        &self,
        changes: Vec<(VertexId, VertexId, Plf)>,
    ) -> Result<(), UpdateRejected> {
        if !self.shared.has_update_lane {
            self.shared.update.count_shed();
            return Err(UpdateRejected::LaneUnavailable);
        }
        self.shared.update.submit(changes)
    }

    /// The overload controller's current rung.
    pub fn mode(&self) -> OverloadMode {
        OverloadMode::from_u8(self.shared.mode.load(Ordering::Relaxed))
    }

    /// Current admission-queue depth (advisory).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let u = self.shared.update.stats();
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            replied: c.replied.load(Ordering::Relaxed),
            duplicates: c.duplicates.load(Ordering::Relaxed),
            exact: c.exact.load(Ordering::Relaxed),
            approximate: c.approximate.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            shed_expired: c.shed_expired.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            updates_applied: u.applied,
            update_retries: u.retries,
            updates_shed: u.shed,
        }
    }

    /// The private admission→reply latency histogram (merged snapshot).
    /// Quantiles here are *this* server's accepted-request latency, not the
    /// process-wide catalog family.
    pub fn latency_snapshot(&self) -> HistSnapshot {
        self.shared.latency.snapshot()
    }

    /// Chaos hook: poisons the admission-queue and update-lane mutexes (a
    /// contained panic while holding each guard). The serving path must
    /// recover every one — `td_server_lock_recoveries_total` counts them.
    pub fn inject_lock_poison(&self) {
        self.shared.queue.poison();
        self.shared.update.poison();
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue.close();
        self.shared.update.close();
    }

    /// Stops admission, drains the queue (every already-admitted request
    /// still receives its exactly-one reply), joins the threads, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.updater.take() {
            let _ = h.join();
        }
        self.stats()
    }
}

impl<I: IncrementalIndex + Clone + 'static> TdServer<I> {
    /// Serves a [`LiveIndex`]: queries run on epoch snapshots while the
    /// supervised update lane applies [`TdServer::submit_update`] batches
    /// through [`LiveIndex::try_apply`] with rollback-and-retry.
    pub fn serve_live(live: Arc<LiveIndex<I>>, cfg: ServerConfig) -> TdServer<I> {
        let mut server = TdServer::start(Source::Live(live), cfg, true);
        let shared = Arc::clone(&server.shared);
        let updater = std::thread::Builder::new()
            .name("td-server-update".into())
            .spawn(move || updater_loop(&shared))
            .expect("spawn updater");
        server.updater = Some(updater);
        server
    }
}

impl<I: RoutingIndex + 'static> Drop for TdServer<I> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        if let Some(h) = self.updater.take() {
            let _ = h.join();
        }
    }
}

/// Dispatcher-local controller state: the latency window delta base and the
/// calibrated baseline.
struct Controller {
    prev: HistSnapshot,
    window: Window,
}

impl Controller {
    fn new() -> Controller {
        Controller {
            prev: HistSnapshot::default(),
            window: Window::default(),
        }
    }

    /// Re-evaluates the overload state machine after a batch.
    fn tick<I: RoutingIndex>(&mut self, shared: &Shared<I>) {
        let policy = &shared.cfg.overload;
        let snap = shared.latency.snapshot();
        let delta = snap.diff(&self.prev);
        let mode = OverloadMode::from_u8(shared.mode.load(Ordering::Relaxed));
        if delta.count() >= policy.min_window {
            self.window.p99_nanos = delta.quantile(0.99);
            self.prev = snap;
            // The first full window observed in Normal mode calibrates the
            // baseline (clamped up to the noise floor).
            if self.window.baseline_nanos == 0 && mode == OverloadMode::Normal {
                self.window.baseline_nanos = self.window.p99_nanos.max(policy.baseline_floor_nanos);
            }
        }
        let depth = shared.queue.depth();
        let next = control::next_mode(mode, depth, shared.queue.capacity(), self.window, policy);
        if next != mode {
            shared.mode.store(next.as_u8(), Ordering::Relaxed);
        }
        if td_obs::ENABLED {
            let m = td_obs::metrics();
            m.server_queue_depth
                .set(depth.min(i64::MAX as usize) as i64);
            m.server_overload_state.set(next.as_u8() as i64);
        }
    }
}

/// Drains the queue into one coalesced batch. `false` = closed and drained.
fn next_batch(
    queue: &AdmissionQueue,
    max_batch: usize,
    window: std::time::Duration,
    buf: &mut Vec<Pending>,
) -> bool {
    buf.clear();
    match queue.pop_wait() {
        Popped::Closed => return false,
        Popped::Item(p) => buf.push(p),
    }
    let batch_deadline = Instant::now() + window;
    while buf.len() < max_batch {
        match queue.pop_until(batch_deadline) {
            Some(p) => buf.push(p),
            None => break,
        }
    }
    true
}

/// Serves one coalesced batch: shed expired, budget, execute, retry/reply.
fn serve_batch<I: RoutingIndex>(
    shared: &Shared<I>,
    exec: &mut ParallelExecutor<'_, I>,
    incoming: &mut Vec<Pending>,
    batch: &mut Vec<Pending>,
    queries: &mut Vec<CostQuery>,
    budgets: &mut Vec<QueryBudget>,
) {
    let cfg = &shared.cfg;
    let now = Instant::now();
    let mode = OverloadMode::from_u8(shared.mode.load(Ordering::Relaxed));
    batch.clear();
    queries.clear();
    budgets.clear();
    for p in incoming.drain(..) {
        // Deadline propagation, stage 2: requests that expired while queued
        // are shed with a typed reply before touching a worker.
        if p.deadline.is_some_and(|d| now >= d) {
            shared.counters.shed_expired.fetch_add(1, Ordering::Relaxed);
            if td_obs::ENABLED {
                td_obs::metrics().server_shed_expired_total.inc();
            }
            shared.fulfill(p, Err(ServeError::Shed(Rejected::DeadlineExpired)));
            continue;
        }
        queries.push(p.query);
        // Stage 3: the client deadline rides into the search itself as the
        // budget's wall-clock bound, under the mode's settle cap.
        budgets.push(control::slot_budget(
            mode,
            cfg.normal_settles,
            cfg.degraded_settles,
            p.deadline,
        ));
        batch.push(p);
    }
    if batch.is_empty() {
        return;
    }
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    if td_obs::ENABLED {
        let m = td_obs::metrics();
        m.server_batches_total.inc();
        m.server_batch_size.observe(batch.len() as u64);
    }
    let results = exec.query_batch_bounded_each(queries, budgets);
    for (mut p, result) in batch.drain(..).zip(results) {
        match result {
            // One bounded retry for contained panics only: the request goes
            // back to the queue *head* and rides the next batch (the
            // coalesce window is the backoff). Deterministic failures —
            // InvalidQuery, BudgetExhausted — are never retried.
            Err(QueryError::Panicked(_)) if p.attempts < cfg.panic_retries => {
                p.attempts += 1;
                shared.counters.retries.fetch_add(1, Ordering::Relaxed);
                if td_obs::ENABLED {
                    td_obs::metrics().server_retries_total.inc();
                }
                shared.queue.push_front(p);
            }
            Ok(answer) => shared.fulfill(p, Ok(answer)),
            Err(e) => shared.fulfill(p, Err(ServeError::Query(e))),
        }
    }
}

fn dispatcher_loop<I: RoutingIndex>(shared: &Shared<I>) {
    let mut ctl = Controller::new();
    let mut incoming: Vec<Pending> = Vec::new();
    let mut batch: Vec<Pending> = Vec::new();
    let mut queries: Vec<CostQuery> = Vec::new();
    let mut budgets: Vec<QueryBudget> = Vec::new();
    'epoch: loop {
        // One executor per epoch: scratches stay warm across batches and
        // the whole pool flips to the new snapshot when the epoch moves.
        let (epoch, snap) = shared.source.snapshot_with_epoch();
        let mut exec = ParallelExecutor::new(&*snap, shared.cfg.workers);
        loop {
            if !next_batch(
                &shared.queue,
                shared.cfg.max_batch,
                shared.cfg.coalesce_window,
                &mut incoming,
            ) {
                return; // closed and drained: every admitted request replied
            }
            // The dispatcher itself is contained: a bug here must not strand
            // admitted requests without their reply.
            let r = catch_unwind(AssertUnwindSafe(|| {
                serve_batch(
                    shared,
                    &mut exec,
                    &mut incoming,
                    &mut batch,
                    &mut queries,
                    &mut budgets,
                )
            }));
            if r.is_err() {
                for p in incoming.drain(..).chain(batch.drain(..)) {
                    shared.fulfill(
                        p,
                        Err(ServeError::Query(QueryError::Panicked(
                            "dispatcher fault".to_string(),
                        ))),
                    );
                }
            }
            ctl.tick(shared);
            shared
                .update
                .watchdog_check(shared.started, shared.cfg.update_watchdog);
            if shared.source.epoch() != epoch {
                continue 'epoch;
            }
        }
    }
}

fn updater_loop<I: IncrementalIndex + Clone>(shared: &Shared<I>) {
    let live = match &shared.source {
        Source::Live(live) => Arc::clone(live),
        Source::Fixed(_) => return,
    };
    while let Some(changes) = shared.update.pop_wait() {
        shared.update.begin_apply(shared.started);
        let mut applied = false;
        for attempt in 0..2u32 {
            // `try_apply` already contains panics and rolls the standby
            // back; the outer catch_unwind is belt-and-braces so even an
            // unexpected unwind cannot kill the lane.
            let outcome = catch_unwind(AssertUnwindSafe(|| live.try_apply(&changes)));
            match outcome {
                Ok(Ok(_)) => {
                    applied = true;
                    break;
                }
                Ok(Err(_)) | Err(_) => {
                    if attempt == 0 {
                        shared.update.count_retry();
                    }
                }
            }
        }
        shared.update.end_apply();
        if applied {
            shared.update.count_applied();
        } else {
            shared.update.count_shed();
        }
    }
}

// Compile-time pins: the server (and its shared core) crosses client,
// dispatcher, and updater threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<TdServer<td_api::AStarChIndex>>();
    shared_across_threads::<AdmissionQueue>();
    shared_across_threads::<UpdateLane>();
    shared_across_threads::<ReplySlot>();
    shared_across_threads::<crate::fault::HostileIndex<td_api::AStarChIndex>>();
    shared_across_threads::<crate::fault::FaultPlan>();
    shared_across_threads::<ServerStats>();
};
