//! The supervised live-update lane.
//!
//! Live traffic refreshes ride a *separate* bounded queue drained by a
//! dedicated updater thread, so an update storm contends with queries only
//! through `LiveIndex`'s double buffer — never through the dispatcher. A
//! watchdog (checked by the dispatcher after every batch, so it needs no
//! thread of its own) declares the lane stuck when one apply overruns its
//! budget; a stuck lane sheds *updates* with a typed refusal while query
//! service continues on the last good epoch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use td_graph::VertexId;
use td_plf::Plf;

use crate::sync::{lock_recover, wait_recover};

/// One batch of live edge-weight changes.
pub(crate) type UpdateBatch = Vec<(VertexId, VertexId, Plf)>;

/// Why an update batch was refused at the lane. Queries are never refused
/// for any of these reasons — update pressure sheds updates, not queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateRejected {
    /// The server fronts a fixed index: there is no update lane at all.
    LaneUnavailable,
    /// The watchdog declared an in-flight apply stuck; the lane sheds until
    /// the apply finishes (or forever, if it never does — query service is
    /// unaffected either way).
    LaneStuck,
    /// The bounded update queue is at capacity.
    QueueFull {
        /// Lane depth observed at the refusal.
        depth: usize,
        /// The configured lane capacity.
        capacity: usize,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for UpdateRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateRejected::LaneUnavailable => write!(f, "server has no live update lane"),
            UpdateRejected::LaneStuck => write!(f, "update lane stuck past its watchdog"),
            UpdateRejected::QueueFull { depth, capacity } => {
                write!(f, "update lane full ({depth}/{capacity})")
            }
            UpdateRejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for UpdateRejected {}

struct LaneState {
    batches: VecDeque<UpdateBatch>,
    closed: bool,
}

/// Counter snapshot of the lane (see [`crate::ServerStats`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LaneStats {
    pub applied: u64,
    pub retries: u64,
    pub shed: u64,
}

pub(crate) struct UpdateLane {
    state: Mutex<LaneState>,
    not_empty: Condvar,
    capacity: usize,
    /// True while the updater is inside one `try_apply`.
    in_apply: AtomicBool,
    /// When the in-flight apply began, as millis since server start (valid
    /// only while `in_apply` is set; written before it).
    apply_started_ms: AtomicU64,
    /// Latched by the watchdog; cleared when the wedged apply finishes.
    stuck: AtomicBool,
    applied: AtomicU64,
    retries: AtomicU64,
    shed: AtomicU64,
}

impl UpdateLane {
    pub(crate) fn new(capacity: usize) -> UpdateLane {
        UpdateLane {
            state: Mutex::new(LaneState {
                batches: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            in_apply: AtomicBool::new(false),
            apply_started_ms: AtomicU64::new(0),
            stuck: AtomicBool::new(false),
            applied: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Enqueues one batch, or refuses with a typed reason (stuck lane, full
    /// lane, shutdown). Refused batches are counted as shed.
    pub(crate) fn submit(&self, batch: UpdateBatch) -> Result<(), UpdateRejected> {
        if self.stuck.load(Ordering::Relaxed) {
            self.count_shed();
            return Err(UpdateRejected::LaneStuck);
        }
        let mut state = lock_recover(&self.state);
        if state.closed {
            drop(state);
            self.count_shed();
            return Err(UpdateRejected::ShuttingDown);
        }
        if state.batches.len() >= self.capacity {
            let depth = state.batches.len();
            drop(state);
            self.count_shed();
            return Err(UpdateRejected::QueueFull {
                depth,
                capacity: self.capacity,
            });
        }
        state.batches.push_back(batch);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks for the next batch; `None` once closed *and* drained.
    pub(crate) fn pop_wait(&self) -> Option<UpdateBatch> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(batch) = state.batches.pop_front() {
                return Some(batch);
            }
            if state.closed {
                return None;
            }
            state = wait_recover(&self.not_empty, state);
        }
    }

    pub(crate) fn close(&self) {
        let mut state = lock_recover(&self.state);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
    }

    /// Chaos hook: poisons the lane mutex (contained panic while holding
    /// the guard); every later operation must recover.
    pub(crate) fn poison(&self) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = self.state.lock();
            panic!("injected lock poison");
        }));
    }

    pub(crate) fn begin_apply(&self, started: Instant) {
        let now_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        self.apply_started_ms.store(now_ms, Ordering::Relaxed);
        self.in_apply.store(true, Ordering::Release);
    }

    pub(crate) fn end_apply(&self) {
        self.in_apply.store(false, Ordering::Release);
        self.stuck.store(false, Ordering::Relaxed);
    }

    /// Called by the dispatcher after each batch: latches `stuck` when the
    /// in-flight apply has overrun `limit`. Returns true when newly latched.
    pub(crate) fn watchdog_check(&self, started: Instant, limit: Duration) -> bool {
        if !self.in_apply.load(Ordering::Acquire) {
            return false;
        }
        let began = self.apply_started_ms.load(Ordering::Relaxed);
        let now_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let limit_ms = limit.as_millis().min(u64::MAX as u128) as u64;
        if now_ms.saturating_sub(began) > limit_ms {
            return !self.stuck.swap(true, Ordering::Relaxed);
        }
        false
    }

    pub(crate) fn count_applied(&self) {
        self.applied.fetch_add(1, Ordering::Relaxed);
        if td_obs::ENABLED {
            td_obs::metrics().server_update_applied_total.inc();
        }
    }

    pub(crate) fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        if td_obs::ENABLED {
            td_obs::metrics().server_update_retries_total.inc();
        }
    }

    pub(crate) fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        if td_obs::ENABLED {
            td_obs::metrics().server_update_shed_total.inc();
        }
    }

    pub(crate) fn stats(&self) -> LaneStats {
        LaneStats {
            applied: self.applied.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(i: u32) -> UpdateBatch {
        vec![(i, i + 1, Plf::constant(1.0))]
    }

    #[test]
    fn lane_is_bounded_and_fifo() {
        let lane = UpdateLane::new(2);
        assert!(lane.submit(batch(0)).is_ok());
        assert!(lane.submit(batch(1)).is_ok());
        assert!(matches!(
            lane.submit(batch(2)),
            Err(UpdateRejected::QueueFull {
                depth: 2,
                capacity: 2
            })
        ));
        assert_eq!(lane.stats().shed, 1);
        assert_eq!(lane.pop_wait().unwrap()[0].0, 0);
        lane.close();
        assert!(matches!(
            lane.submit(batch(3)),
            Err(UpdateRejected::ShuttingDown)
        ));
        // Close still drains what was accepted.
        assert_eq!(lane.pop_wait().unwrap()[0].0, 1);
        assert!(lane.pop_wait().is_none());
    }

    #[test]
    fn watchdog_latches_stuck_and_apply_end_clears_it() {
        let lane = UpdateLane::new(4);
        let started = Instant::now() - Duration::from_secs(10);
        // No apply in flight: never stuck.
        assert!(!lane.watchdog_check(started, Duration::from_millis(1)));
        lane.begin_apply(started);
        // Within budget: fine. (The apply "began" 10s into the server's
        // life, i.e. just now.)
        assert!(!lane.watchdog_check(started, Duration::from_secs(60)));
        // Overrun: latches once, reports once.
        std::thread::sleep(Duration::from_millis(5));
        assert!(lane.watchdog_check(started, Duration::from_millis(1)));
        assert!(!lane.watchdog_check(started, Duration::from_millis(1)));
        // A stuck lane sheds typed.
        assert!(matches!(
            lane.submit(batch(0)),
            Err(UpdateRejected::LaneStuck)
        ));
        assert_eq!(lane.stats().shed, 1);
        // The wedged apply finishing clears the latch.
        lane.end_apply();
        assert!(lane.submit(batch(0)).is_ok());
    }

    #[test]
    fn poisoned_lane_recovers() {
        let lane = UpdateLane::new(4);
        lane.poison();
        assert!(lane.submit(batch(0)).is_ok());
        assert_eq!(lane.pop_wait().unwrap()[0].0, 0);
    }
}
