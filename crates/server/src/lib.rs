//! td-server: the overload-safe serving front-end.
//!
//! Everything upstream of this crate computes answers; this crate decides
//! *which* requests get to compute and *how much* they may spend, so that
//! overload degrades service along a typed, observable ladder instead of
//! collapsing it:
//!
//! ```text
//! submit(s, d, t, deadline)
//!    │  admission (O(µs)): shutdown / expired deadline / shedding mode
//!    ▼
//! bounded queue ──▶ coalescer ──▶ per-slot budgets ──▶ ParallelExecutor
//!    │ full ⇒ Rejected::QueueFull       │ deadline rides into the search
//!    ▼                                  ▼
//! typed refusal                 exactly-one terminal reply per admission
//! ```
//!
//! The pieces, each its own module:
//!
//! * [`request`](Rejected) — the request lifecycle: typed rejections,
//!   [`ServeError`], the write-once reply slot behind [`RequestHandle`].
//! * [`queue`](TdServer) — the bounded MPMC admission queue (producers
//!   never block; depth is capped by construction).
//! * [`control`](OverloadMode) — the pure overload control plane: the
//!   Normal → Degraded → Shedding state machine with hysteresis.
//! * [`server`](TdServer) — the dispatcher, the batching coalescer, the
//!   single bounded panic retry, and the supervised live-update lane.
//! * [`fault`](FaultPlan) / [`soak`](run_soak) — deterministic fault
//!   injection and the time-boxed chaos harness that proves the invariants
//!   under the full storm.
//!
//! Locks on the serving path recover from poisoning (see `sync`); every
//! recovery is counted in `td_server_lock_recoveries_total`.

#![forbid(unsafe_code)]

mod config;
mod control;
mod fault;
mod queue;
mod request;
mod server;
mod soak;
mod sync;
mod update;

pub use config::ServerConfig;
pub use control::{
    admission_decision, next_mode, settle_cap, slot_budget, OverloadMode, OverloadPolicy, Window,
};
pub use fault::{
    silence_contained_panics, splitmix64, FaultPlan, HostileIndex, PanicSilence, INJECTED_PANIC,
};
pub use request::{Rejected, RequestHandle, ServeError, ServeResult};
pub use server::{ServerStats, TdServer};
pub use soak::{run_soak, run_soak_fixed, SoakConfig, SoakReport};
pub use update::UpdateRejected;
