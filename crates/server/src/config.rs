//! Server tuning knobs.

use std::time::Duration;

use crate::control::OverloadPolicy;

/// Configuration of a [`crate::TdServer`]. `Default` is sized for tests and
/// small deployments; production fronts tune the queue and batch shape to
/// their traffic.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Executor worker threads (0 = all cores).
    pub workers: usize,
    /// Admission queue capacity — the hard bound on queued requests.
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one executor batch.
    pub max_batch: usize,
    /// How long the coalescer tops up a batch after its first request
    /// before dispatching it anyway (the latency/throughput trade).
    pub coalesce_window: Duration,
    /// Settle cap per query in Normal mode (`u64::MAX` = uncapped).
    pub normal_settles: u64,
    /// Settle cap per query in Degraded/Shedding mode — the
    /// approximate-first budget.
    pub degraded_settles: u64,
    /// Bounded retries for [`td_api::QueryError::Panicked`] slots.
    /// Deterministic failures (`InvalidQuery`, `BudgetExhausted`) are never
    /// retried.
    pub panic_retries: u32,
    /// Overload controller watermarks and windows.
    pub overload: OverloadPolicy,
    /// Pending live-update batches the update lane buffers before shedding.
    pub update_queue_capacity: usize,
    /// How long one `try_apply` may run before the watchdog declares the
    /// update lane stuck and sheds further updates (query service is never
    /// paused either way).
    pub update_watchdog: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 1024,
            max_batch: 64,
            coalesce_window: Duration::from_micros(500),
            normal_settles: u64::MAX,
            degraded_settles: 20_000,
            panic_retries: 1,
            overload: OverloadPolicy::default(),
            update_queue_capacity: 64,
            update_watchdog: Duration::from_secs(2),
        }
    }
}
