//! The request lifecycle: typed admission rejections, terminal replies, and
//! the exactly-once reply slot a client waits on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use td_api::{BoundedAnswer, CostQuery, QueryError};

use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};

/// Why a request was refused at admission. Every variant is produced in
/// O(µs) — a rejected client learns its fate before the request touches a
/// queue slot, a worker, or the index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded admission queue is at capacity. Depth never grows past
    /// the cap — overload becomes this typed refusal, not latency collapse.
    QueueFull {
        /// Queue depth observed at the refusal.
        depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The overload controller is in shedding mode: the server is refusing
    /// new work so already-admitted requests keep their latency.
    Overloaded,
    /// The client's deadline had already passed at submission (or before
    /// dispatch, for the post-admission shed path).
    DeadlineExpired,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl Rejected {
    /// Stable label for the `td_server_rejected_total{reason=…}` family.
    pub fn reason(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::Overloaded => "overloaded",
            Rejected::DeadlineExpired => "deadline_expired",
            Rejected::ShuttingDown => "shutdown",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { depth, capacity } => {
                write!(f, "admission queue full ({depth}/{capacity})")
            }
            Rejected::Overloaded => write!(f, "server is shedding load"),
            Rejected::DeadlineExpired => write!(f, "request deadline already expired"),
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an *admitted* request did not produce an answer.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Shed after admission: the deadline expired while queued, or the
    /// server shut down with the request still in flight.
    Shed(Rejected),
    /// The query itself failed with a typed error — invalid inputs, budget
    /// exhausted on a backend with nothing to degrade to, or a panic that
    /// survived its single bounded retry.
    Query(QueryError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(r) => write!(f, "request shed: {r}"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The terminal reply of an admitted request: an answer from the
/// degradation ladder, or a typed error. Exactly one is delivered per
/// admitted request.
pub type ServeResult = Result<BoundedAnswer, ServeError>;

/// The write-once slot a reply lands in. `fulfill` keeps the *first*
/// terminal reply and reports duplicates instead of overwriting — the
/// exactly-once invariant is enforced structurally, not by convention.
pub(crate) struct ReplySlot {
    state: Mutex<Option<ServeResult>>,
    ready: Condvar,
}

impl ReplySlot {
    pub(crate) fn new() -> ReplySlot {
        ReplySlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Installs the terminal reply. Returns `true` for the first (and only
    /// effective) fulfillment, `false` for a duplicate (the first reply is
    /// kept; the caller counts the violation).
    pub(crate) fn fulfill(&self, reply: ServeResult) -> bool {
        let mut state = lock_recover(&self.state);
        if state.is_some() {
            return false;
        }
        *state = Some(reply);
        drop(state);
        self.ready.notify_all();
        true
    }

    fn get(&self) -> Option<ServeResult> {
        lock_recover(&self.state).clone()
    }

    fn wait(&self) -> ServeResult {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(reply) = state.clone() {
                return reply;
            }
            state = wait_recover(&self.ready, state);
        }
    }

    fn wait_deadline(&self, deadline: Instant) -> Option<ServeResult> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(reply) = state.clone() {
                return Some(reply);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            state = wait_timeout_recover(&self.ready, state, deadline - now);
        }
    }
}

/// The client's side of an admitted request: a handle on the reply slot.
///
/// Dropping the handle is safe — the server still fulfills the slot (the
/// reply is simply never read), so a slow or crashed consumer can never
/// stall the dispatcher or leak the exactly-once accounting.
pub struct RequestHandle {
    pub(crate) slot: Arc<ReplySlot>,
    pub(crate) submitted: Instant,
}

impl std::fmt::Debug for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("replied", &self.slot.get().is_some())
            .field("elapsed", &self.submitted.elapsed())
            .finish()
    }
}

impl RequestHandle {
    /// The terminal reply if it has already arrived (non-blocking).
    pub fn try_reply(&self) -> Option<ServeResult> {
        self.slot.get()
    }

    /// Blocks until the terminal reply arrives. Every admitted request gets
    /// exactly one, so this never blocks past the server's shutdown drain.
    pub fn wait(&self) -> ServeResult {
        self.slot.wait()
    }

    /// Blocks up to `timeout`; `None` means the reply has not arrived yet
    /// (the handle stays valid and can be waited on again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeResult> {
        self.slot.wait_deadline(Instant::now() + timeout)
    }

    /// Time since the request was admitted.
    pub fn elapsed(&self) -> Duration {
        self.submitted.elapsed()
    }
}

/// An admitted request travelling through queue → coalescer → executor.
pub(crate) struct Pending {
    pub query: CostQuery,
    pub deadline: Option<Instant>,
    pub submitted: Instant,
    /// Panic-retry attempts already spent (0 on first dispatch).
    pub attempts: u32,
    pub slot: Arc<ReplySlot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fulfill_is_exactly_once() {
        let slot = Arc::new(ReplySlot::new());
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
        };
        assert!(handle.try_reply().is_none());
        assert!(slot.fulfill(Ok(BoundedAnswer::Exact(Some(1.0)))));
        // The duplicate is reported and the first reply kept.
        assert!(!slot.fulfill(Ok(BoundedAnswer::Exact(Some(2.0)))));
        assert_eq!(handle.wait(), Ok(BoundedAnswer::Exact(Some(1.0))));
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(1)),
            Some(Ok(BoundedAnswer::Exact(Some(1.0))))
        );
    }

    #[test]
    fn wait_timeout_expires_without_a_reply() {
        let slot = Arc::new(ReplySlot::new());
        let handle = RequestHandle {
            slot,
            submitted: Instant::now(),
        };
        assert_eq!(handle.wait_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn wait_crosses_threads() {
        let slot = Arc::new(ReplySlot::new());
        let handle = RequestHandle {
            slot: Arc::clone(&slot),
            submitted: Instant::now(),
        };
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.fulfill(Err(ServeError::Shed(Rejected::ShuttingDown)))
        });
        assert_eq!(handle.wait(), Err(ServeError::Shed(Rejected::ShuttingDown)));
        assert!(t.join().unwrap());
    }

    #[test]
    fn rejection_taxonomy_renders_and_labels() {
        let cases: [(Rejected, &str); 4] = [
            (
                Rejected::QueueFull {
                    depth: 8,
                    capacity: 8,
                },
                "queue_full",
            ),
            (Rejected::Overloaded, "overloaded"),
            (Rejected::DeadlineExpired, "deadline_expired"),
            (Rejected::ShuttingDown, "shutdown"),
        ];
        for (r, label) in cases {
            assert_eq!(r.reason(), label);
            assert!(!r.to_string().is_empty());
        }
    }
}
