//! Fault injection for the serving path, in the style of
//! `td_store::fault`: deterministic, composable, and usable from benches
//! and tests alike.
//!
//! [`FaultPlan`] names the storm to run; [`HostileIndex`] wraps any real
//! index and panics on a seeded pseudo-random fraction of queries, so the
//! containment, retry, and scratch-replacement machinery is exercised under
//! load rather than trusted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use td_api::{
    BoundedAnswer, IncrementalIndex, IndexStats, QueryError, RoutingIndex, SessionScratch,
};
use td_core::UpdateStats;
use td_dijkstra::QueryBudget;
use td_graph::{Path, TdGraph, VertexId};
use td_obs::{QueryTrace, SearchStats};
use td_plf::Plf;

/// The panic message every injected fault carries, so tests can tell
/// injected failures from real bugs.
pub const INJECTED_PANIC: &str = "injected fault: hostile index panic";

/// How many [`PanicSilence`] guards are live (see below).
static SILENCED: AtomicU64 = AtomicU64::new(0);
static SILENCE_HOOK: std::sync::Once = std::sync::Once::new();

/// Scoped suppression of panic-hook output.
///
/// A chaos run *contains* thousands of injected panics by design; letting
/// each one print a backtrace buries real failures in noise. While any
/// guard is live the process's panic hook stays quiet — real bugs still
/// propagate through `catch_unwind` and surface as assertion failures or
/// typed error replies, they just don't narrate. Output returns to normal
/// when the last guard drops.
pub struct PanicSilence(());

impl Drop for PanicSilence {
    fn drop(&mut self) {
        SILENCED.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs (once) a panic hook that defers to the default one only when no
/// [`PanicSilence`] guard is live, and returns a new guard.
pub fn silence_contained_panics() -> PanicSilence {
    SILENCE_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if SILENCED.load(Ordering::Relaxed) == 0 {
                prev(info);
            }
        }));
    });
    SILENCED.fetch_add(1, Ordering::Relaxed);
    PanicSilence(())
}

/// SplitMix64: the workspace's standard cheap deterministic mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Which faults a chaos run injects. All deterministic given `seed`.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for every pseudo-random decision in the plan.
    pub seed: u64,
    /// Worker panic injection rate, per million queries (10_000 = 1%).
    pub panic_per_million: u32,
    /// When true, each afflicted query signature panics only the *first*
    /// time it is dispatched, so the single bounded retry succeeds. When
    /// false, panics are persistent — the retry fails too and the client
    /// gets the typed `Panicked` reply (the bit-identity soak needs this).
    pub transient_panics: bool,
    /// Periodically poison serving-path mutexes mid-run.
    pub poison_locks: bool,
    /// Some clients stall before collecting replies (reply slots must
    /// never backpressure the dispatcher).
    pub slow_consumers: bool,
    /// Bursts of live-update batches, including invalid ones that roll
    /// back, racing the query path.
    pub update_storm: bool,
    /// Windows in which clients submit with near-zero (some already
    /// expired) deadlines.
    pub deadline_storm: bool,
}

impl FaultPlan {
    /// No faults at all — the baseline the chaos runs are compared against.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            panic_per_million: 0,
            transient_panics: true,
            poison_locks: false,
            slow_consumers: false,
            update_storm: false,
            deadline_storm: false,
        }
    }

    /// Everything at once: 1% transient worker panics, poisoned locks,
    /// slow consumers, update storms, deadline storms.
    pub fn full(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            panic_per_million: 10_000,
            transient_panics: true,
            poison_locks: true,
            slow_consumers: true,
            update_storm: true,
            deadline_storm: true,
        }
    }
}

/// Bitmap size (in `u64` words) of the transient-panic filter: 4096 bits.
const FILTER_WORDS: usize = 64;

/// A [`RoutingIndex`] adapter that panics on a deterministic pseudo-random
/// fraction of queries and delegates everything else to the wrapped index.
///
/// The decision depends only on `(seed, s, d, t)`, so a given query either
/// always faults or never does — which is what lets the panic-storm soak
/// assert that *non*-panicking slots stay bit-identical to a clean run. In
/// `transient` mode a 4096-bit filter (shared across clones, so both
/// buffers of a `LiveIndex` agree) remembers signatures that already fired,
/// making the single bounded retry succeed.
pub struct HostileIndex<I> {
    inner: I,
    seed: u64,
    panic_per_million: u32,
    /// `Some` in transient mode: the shared already-fired filter.
    fired: Option<Arc<[AtomicU64; FILTER_WORDS]>>,
}

impl<I: Clone> Clone for HostileIndex<I> {
    fn clone(&self) -> HostileIndex<I> {
        HostileIndex {
            inner: self.inner.clone(),
            seed: self.seed,
            panic_per_million: self.panic_per_million,
            fired: self.fired.clone(),
        }
    }
}

impl<I> HostileIndex<I> {
    /// Wraps `inner` according to `plan` (its `panic_per_million`,
    /// `transient_panics`, and `seed` fields).
    pub fn new(inner: I, plan: &FaultPlan) -> HostileIndex<I> {
        HostileIndex {
            inner,
            seed: plan.seed,
            panic_per_million: plan.panic_per_million,
            fired: plan
                .transient_panics
                .then(|| Arc::new(std::array::from_fn(|_| AtomicU64::new(0)))),
        }
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// True when the plan would fault this query (ignoring the transient
    /// filter) — lets tests predict exactly which slots panic.
    pub fn would_fault(&self, s: VertexId, d: VertexId, t: f64) -> bool {
        self.panic_per_million > 0
            && self.signature(s, d, t) % 1_000_000 < self.panic_per_million as u64
    }

    fn signature(&self, s: VertexId, d: VertexId, t: f64) -> u64 {
        splitmix64(self.seed ^ ((s as u64) << 32) ^ (d as u64) ^ t.to_bits().rotate_left(17))
    }

    fn maybe_panic(&self, s: VertexId, d: VertexId, t: f64) {
        if !self.would_fault(s, d, t) {
            return;
        }
        if let Some(filter) = &self.fired {
            let h = self.signature(s, d, t);
            let bit = (h >> 20) as usize % (FILTER_WORDS * 64);
            let mask = 1u64 << (bit % 64);
            let prev = filter[bit / 64].fetch_or(mask, Ordering::Relaxed);
            if prev & mask != 0 {
                return; // already fired once: the retry succeeds
            }
        }
        panic!("{INJECTED_PANIC}");
    }
}

impl<I: RoutingIndex> RoutingIndex for HostileIndex<I> {
    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
    fn graph(&self) -> &TdGraph {
        self.inner.graph()
    }
    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.maybe_panic(s, d, t);
        self.inner.query_cost(s, d, t)
    }
    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.inner.query_profile(s, d)
    }
    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.inner.query_path(s, d, t)
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn build_stats(&self) -> IndexStats {
        self.inner.build_stats()
    }
    fn new_scratch(&self) -> SessionScratch {
        self.inner.new_scratch()
    }
    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        self.maybe_panic(s, d, t);
        self.inner.query_cost_in(scratch, s, d, t)
    }
    fn query_cost_bounded_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        self.maybe_panic(s, d, t);
        self.inner.query_cost_bounded_in(scratch, s, d, t, budget)
    }
    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        self.inner.take_search_stats(scratch)
    }
    fn query_cost_traced_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> (Option<f64>, QueryTrace) {
        self.maybe_panic(s, d, t);
        self.inner.query_cost_traced_in(scratch, s, d, t)
    }
}

impl<I: IncrementalIndex> IncrementalIndex for HostileIndex<I> {
    fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        self.inner.update_edges(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use td_api::AStarChIndex;

    fn tiny() -> TdGraph {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(10.0)).unwrap();
        g.add_edge(1, 2, Plf::constant(10.0)).unwrap();
        g
    }

    #[test]
    fn faults_are_deterministic_and_rate_bounded() {
        let plan = FaultPlan {
            seed: 42,
            panic_per_million: 10_000,
            transient_panics: false,
            ..FaultPlan::none()
        };
        let h = HostileIndex::new(AStarChIndex::new(tiny()), &plan);
        let mut hits = 0u32;
        for i in 0..100_000u32 {
            let (s, d, t) = (i % 3, (i / 3) % 3, (i % 97) as f64);
            let faulted = h.would_fault(s, d, t);
            // Deterministic: asking twice agrees.
            assert_eq!(faulted, h.would_fault(s, d, t));
            if faulted {
                hits += 1;
                let r = catch_unwind(AssertUnwindSafe(|| h.query_cost(s, d, t)));
                assert!(r.is_err());
                // Persistent mode: fires every time.
                let r = catch_unwind(AssertUnwindSafe(|| h.query_cost(s, d, t)));
                assert!(r.is_err());
            }
        }
        // ~1% of the distinct signatures fault; the modular query pattern
        // only produces a few hundred distinct ones, so just sanity-bound.
        assert!(hits < 20_000, "rate far above 1%: {hits}");
    }

    #[test]
    fn transient_faults_fire_once_then_heal() {
        let plan = FaultPlan {
            seed: 7,
            panic_per_million: 1_000_000, // every query faults
            transient_panics: true,
            ..FaultPlan::none()
        };
        let h = HostileIndex::new(AStarChIndex::new(tiny()), &plan);
        let r = catch_unwind(AssertUnwindSafe(|| h.query_cost(0, 2, 5.0)));
        assert!(r.is_err(), "first dispatch faults");
        // The retry of the same signature succeeds — and agrees with the
        // clean index.
        let healed = h.query_cost(0, 2, 5.0);
        assert_eq!(healed, h.inner().query_cost(0, 2, 5.0));
        // Clones share the filter: the clone does not re-fire either.
        let c = h.clone();
        assert_eq!(c.query_cost(0, 2, 5.0), healed);
    }

    #[test]
    fn plans_compose() {
        assert_eq!(FaultPlan::none().panic_per_million, 0);
        let full = FaultPlan::full(3);
        assert!(full.poison_locks && full.update_storm && full.deadline_storm);
        assert!(full.slow_consumers && full.transient_panics);
        assert_eq!(full.panic_per_million, 10_000);
    }
}
