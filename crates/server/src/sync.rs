//! Poison-recovering lock primitives for the serving path.
//!
//! Every mutex on the serving path protects a value whose mutations are
//! whole-value writes (an `Option` slot, a `VecDeque` of owned requests),
//! so a panic while holding the guard cannot leave torn state behind. A
//! poisoned lock is therefore recovered — counted, never propagated: one
//! crashed thread must not wedge every future request.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn count_recovery() {
    if td_obs::ENABLED {
        td_obs::metrics().server_lock_recoveries_total.inc();
    }
}

/// Locks `m`, recovering (and counting) a poisoned guard.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            count_recovery();
            p.into_inner()
        }
    }
}

/// `Condvar::wait`, recovering (and counting) a poisoned reacquire.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(p) => {
            count_recovery();
            p.into_inner()
        }
    }
}

/// `Condvar::wait_timeout`, recovering (and counting) a poisoned reacquire.
/// The timeout flag is dropped — callers re-check their predicate and the
/// clock, which is required for spurious wakeups anyway.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> MutexGuard<'a, T> {
    match cv.wait_timeout(guard, timeout) {
        Ok((g, _)) => g,
        Err(p) => {
            count_recovery();
            p.into_inner().0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn poisoned_mutex_recovers_with_intact_value() {
        let m = Mutex::new(41);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let mut g = m.lock().unwrap();
            *g = 42;
            panic!("poison while holding the guard");
        }));
        assert!(r.is_err());
        assert!(m.is_poisoned());
        // The whole-value write completed before the panic: recovery sees it.
        assert_eq!(*lock_recover(&m), 42);
        // And the lock keeps working afterwards.
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 43);
    }
}
