#![forbid(unsafe_code)]
//! # td-store — versioned binary snapshot persistence (`.tdx`)
//!
//! The paper's whole point is paying a heavy one-time preprocessing cost
//! (tree-decomposition shortcuts, G-tree border matrices) to make queries
//! fast. This crate makes that preprocessing output a first-class on-disk
//! artifact — as CATCHUp does with its customization output and TCH with its
//! contraction hierarchy — so a built index is **saved once and loaded in
//! milliseconds**, instead of being rebuilt from scratch on every process
//! start, bench run, and CI job.
//!
//! The crate sits at the bottom of the workspace dependency graph and knows
//! nothing about graphs or PLFs. It provides:
//!
//! * the [`Persist`] trait (`write_into`/`read_from` over [`std::io::Write`]
//!   / [`std::io::Read`]) that every state-owning type in the workspace
//!   implements;
//! * the `.tdx` container: a fixed [`format`] header (magic, format version,
//!   endianness marker, backend tag) followed by a stream of typed,
//!   CRC32-checksummed [`section`]s and a terminating end marker;
//! * typed [`StoreError`]s — corrupt, truncated or mismatched input is
//!   **rejected, never panicked on**, and no `unsafe` byte reinterpretation
//!   is performed anywhere (payloads are decoded with explicit little-endian
//!   `from_le_bytes` conversions);
//! * a semantics-free section walker ([`section::walk_sections`]) powering
//!   the `tdx inspect` / `tdx verify` CLI;
//! * deterministic I/O [`fault`] shims ([`FaultyWriter`] / [`FaultyReader`])
//!   that fail at byte *N* or serve short reads/writes, powering the
//!   crash-consistency kill-point sweeps in td-api.
//!
//! The full byte-level layout, checksum rules and versioning policy are
//! specified in `crates/store/FORMAT.md`.

pub mod crc;
pub mod error;
pub mod fault;
pub mod format;
pub mod section;

pub use error::StoreError;
pub use fault::{FaultyReader, FaultyWriter};
pub use format::{BackendTag, Header, FORMAT_VERSION, MAGIC};

use std::io::{Read, Write};

/// Types that serialize themselves into the `.tdx` section stream.
///
/// `write_into(w)` followed by `read_from(r)` over the same bytes must
/// reconstruct a value that answers every query **bit-identically** to the
/// original. Implementations are *compositional*: a container writes its
/// components by calling their `write_into` in a fixed order, and reads them
/// back in the same order — the section tags double as a structural check.
///
/// Implementations must never panic on malformed input: every length,
/// offset and id read from the stream is validated before use, and failures
/// surface as typed [`StoreError`]s.
pub trait Persist: Sized {
    /// Serializes `self` as a sequence of sections.
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError>;

    /// Reconstructs a value from the section stream, validating structure
    /// and checksums.
    fn read_from<R: Read>(r: &mut R) -> Result<Self, StoreError>;
}

/// Writes a complete `.tdx` snapshot stream — header (with `backend`'s
/// tag), the value's body sections, end marker — into `w`. This is the one
/// place the container framing is assembled; every backend's snapshot
/// writer routes through it. A crashed or interrupted write is caught on
/// load by the missing end marker or a checksum mismatch.
pub fn write_snapshot<T: Persist, W: Write>(
    value: &T,
    backend: BackendTag,
    w: &mut W,
) -> Result<(), StoreError> {
    format::write_header(w, backend)?;
    value.write_into(w)?;
    section::write_end(w)
}
