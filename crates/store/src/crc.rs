//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Implemented locally because the container has no crates.io access; the
//! polynomial and byte order match the ubiquitous `crc32fast`/zlib checksum,
//! so section checksums can be verified with standard external tooling.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables, computed at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k][b]` advances byte `b` through
/// `k` further zero bytes, letting [`Crc32::update`] consume 8 input bytes
/// per iteration (~5× the throughput of the byte-wise loop — snapshots are
/// checksummed twice per round trip, so this is on the load path's critical
/// section).
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Incremental CRC-32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum.
    #[inline]
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum (slicing-by-8).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ s;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            s = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            s = (s >> 8) ^ TABLES[0][((s ^ b as u32) & 0xFF) as usize];
        }
        self.state = s;
    }

    /// The finished checksum value.
    #[inline]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }
}
