//! The fixed `.tdx` file header: magic, format version, endianness marker
//! and backend tag. See `crates/store/FORMAT.md` for the byte-level spec.

use crate::error::StoreError;
use std::io::{Read, Write};

/// The 8-byte magic opening every `.tdx` snapshot.
pub const MAGIC: [u8; 8] = *b"TDXSNAP1";

/// Current format version. Bump on any incompatible layout change; readers
/// reject versions they do not understand with
/// [`StoreError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

/// Endianness marker value. Every multi-byte integer in the format is
/// little-endian by definition; this marker, written as LE, additionally
/// detects files mangled by byte-order-changing transports.
pub const ENDIAN_MARKER: u32 = 0x0A0B_0C0D;

/// Which index family a snapshot holds. Numeric values are part of the
/// on-disk format and must never be reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum BackendTag {
    /// TD-tree without shortcuts.
    TdBasic = 1,
    /// TD-tree with greedily selected shortcuts.
    TdAppro = 2,
    /// TD-tree with DP-selected shortcuts.
    TdDp = 3,
    /// TD-H2H full 2-hop label.
    TdH2h = 4,
    /// TD-G-tree border matrices.
    TdGtree = 5,
    /// TD-Dijkstra (graph + frozen CSR view only).
    Dijkstra = 6,
    /// TD-A\* with lazy CH potentials (graph + contraction order).
    AStarCh = 7,
}

impl BackendTag {
    /// Decodes a tag from its on-disk value.
    pub fn from_u32(v: u32) -> Result<BackendTag, StoreError> {
        match v {
            1 => Ok(BackendTag::TdBasic),
            2 => Ok(BackendTag::TdAppro),
            3 => Ok(BackendTag::TdDp),
            4 => Ok(BackendTag::TdH2h),
            5 => Ok(BackendTag::TdGtree),
            6 => Ok(BackendTag::Dijkstra),
            7 => Ok(BackendTag::AStarCh),
            other => Err(StoreError::UnknownBackend(other)),
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BackendTag::TdBasic => "TD-basic",
            BackendTag::TdAppro => "TD-appro",
            BackendTag::TdDp => "TD-dp",
            BackendTag::TdH2h => "TD-H2H",
            BackendTag::TdGtree => "TD-G-tree",
            BackendTag::Dijkstra => "TD-Dijkstra",
            BackendTag::AStarCh => "TD-A*-CH",
        }
    }
}

impl std::fmt::Display for BackendTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The decoded file header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version of the file (always a supported one after decoding).
    pub version: u32,
    /// Which backend the body holds.
    pub backend: BackendTag,
}

/// Writes the 24-byte header.
pub fn write_header<W: Write>(w: &mut W, backend: BackendTag) -> Result<(), StoreError> {
    w.write_all(&MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&ENDIAN_MARKER.to_le_bytes())?;
    w.write_all(&(backend as u32).to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?; // reserved
    Ok(())
}

/// Reads and validates the 24-byte header.
pub fn read_header<R: Read>(r: &mut R) -> Result<Header, StoreError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    r.read_exact(&mut word)?;
    if u32::from_le_bytes(word) != ENDIAN_MARKER {
        return Err(StoreError::BadEndianness);
    }
    r.read_exact(&mut word)?;
    let backend = BackendTag::from_u32(u32::from_le_bytes(word))?;
    r.read_exact(&mut word)?; // reserved, ignored
    Ok(Header { version, backend })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let mut buf = Vec::new();
        write_header(&mut buf, BackendTag::TdGtree).unwrap();
        assert_eq!(buf.len(), 24);
        let h = read_header(&mut buf.as_slice()).unwrap();
        assert_eq!(h.backend, BackendTag::TdGtree);
        assert_eq!(h.version, FORMAT_VERSION);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_header(&mut buf, BackendTag::TdBasic).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_header(&mut buf, BackendTag::TdBasic).unwrap();
        buf[8] = 99;
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(StoreError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn unknown_backend_is_rejected() {
        let mut buf = Vec::new();
        write_header(&mut buf, BackendTag::TdBasic).unwrap();
        buf[16] = 0xEE;
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(StoreError::UnknownBackend(_))
        ));
    }

    #[test]
    fn truncated_header_is_truncated() {
        let mut buf = Vec::new();
        write_header(&mut buf, BackendTag::TdBasic).unwrap();
        buf.truncate(10);
        assert!(matches!(
            read_header(&mut buf.as_slice()),
            Err(StoreError::Truncated)
        ));
    }
}
