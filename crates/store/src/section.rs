//! The typed, checksummed section stream making up a `.tdx` body.
//!
//! Each section is `tag (u32) | elem type (u8) | 3 reserved bytes |
//! count (u64) | payload (count × elem bytes, LE) | crc32 (u32 of payload)`.
//! Writers emit sections in a fixed, type-defined order; readers demand the
//! same order, so a reordered or spliced file fails fast with
//! [`StoreError::UnexpectedSection`] instead of misinterpreting data.
//!
//! Payloads are decoded with explicit `from_le_bytes` conversions — no
//! `unsafe` reinterpretation of untrusted bytes — and read in bounded chunks
//! so a corrupt (huge) count hits end-of-stream instead of attempting a
//! matching allocation.

use crate::crc::Crc32;
use crate::error::StoreError;
use std::io::{Read, Write};

/// Element type codes (part of the on-disk format).
pub mod elem {
    /// End marker / no payload.
    pub const END: u8 = 0;
    /// Raw bytes.
    pub const U8: u8 = 1;
    /// Little-endian `u32`.
    pub const U32: u8 = 2;
    /// Little-endian `u64`.
    pub const U64: u8 = 3;
    /// Little-endian IEEE-754 binary64.
    pub const F64: u8 = 4;
}

/// Builds a section tag from 4 ASCII bytes.
pub const fn tag4(b: [u8; 4]) -> u32 {
    u32::from_le_bytes(b)
}

/// The tag of the end-of-body marker section.
pub const END_TAG: u32 = tag4(*b"TEND");

/// Maximum bytes read per chunk while streaming a payload in. Bounds the
/// allocation a corrupt count can trigger before end-of-stream is noticed.
const CHUNK: usize = 1 << 20;

fn elem_size(type_code: u8) -> usize {
    match type_code {
        elem::U8 => 1,
        elem::U32 => 4,
        elem::U64 => 8,
        elem::F64 => 8,
        _ => 0,
    }
}

fn write_section_header<W: Write>(
    w: &mut W,
    tag: u32,
    type_code: u8,
    count: u64,
) -> Result<(), StoreError> {
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(&[type_code, 0, 0, 0])?;
    w.write_all(&count.to_le_bytes())?;
    Ok(())
}

fn write_payload<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), StoreError> {
    w.write_all(payload)?;
    let mut crc = Crc32::new();
    crc.update(payload);
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(())
}

/// Streams a typed payload through a bounded encode buffer (sections reach
/// hundreds of megabytes; materialising a full byte copy would double peak
/// memory during a save), updating the checksum incrementally.
fn write_elems<W: Write, T: Copy, const N: usize>(
    w: &mut W,
    data: &[T],
    encode: impl Fn(T) -> [u8; N],
) -> Result<(), StoreError> {
    let mut crc = Crc32::new();
    let mut buf = [0u8; 8192];
    for chunk in data.chunks(buf.len() / N) {
        let mut at = 0;
        for &v in chunk {
            buf[at..at + N].copy_from_slice(&encode(v));
            at += N;
        }
        w.write_all(&buf[..at])?;
        crc.update(&buf[..at]);
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(())
}

/// Streams a typed payload from an iterator whose length is known upfront
/// (the section header carries the count, so it must be exact — a mismatch
/// is a writer-side bug and is reported instead of emitting a lying file).
fn write_elem_iter<W: Write, T, const N: usize>(
    w: &mut W,
    count: u64,
    iter: impl Iterator<Item = T>,
    encode: impl Fn(T) -> [u8; N],
) -> Result<(), StoreError> {
    let mut crc = Crc32::new();
    let mut buf = [0u8; 8192];
    let mut at = 0usize;
    let mut written = 0u64;
    for v in iter {
        buf[at..at + N].copy_from_slice(&encode(v));
        at += N;
        written += 1;
        if at + N > buf.len() {
            w.write_all(&buf[..at])?;
            crc.update(&buf[..at]);
            at = 0;
        }
    }
    w.write_all(&buf[..at])?;
    crc.update(&buf[..at]);
    if written != count {
        return Err(StoreError::invalid(format!(
            "section iterator yielded {written} elements, header promised {count}"
        )));
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    Ok(())
}

/// Streams a `u32` section from an iterator of known length.
pub fn write_u32_iter<W: Write>(
    w: &mut W,
    tag: u32,
    count: u64,
    iter: impl Iterator<Item = u32>,
) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::U32, count)?;
    write_elem_iter(w, count, iter, u32::to_le_bytes)
}

/// Streams an `f64` section from an iterator of known length (exact bit
/// patterns).
pub fn write_f64_iter<W: Write>(
    w: &mut W,
    tag: u32,
    count: u64,
    iter: impl Iterator<Item = f64>,
) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::F64, count)?;
    write_elem_iter(w, count, iter, f64::to_le_bytes)
}

/// Writes a section of raw bytes.
pub fn write_bytes<W: Write>(w: &mut W, tag: u32, data: &[u8]) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::U8, data.len() as u64)?;
    write_payload(w, data)
}

/// Writes a section of `u32`s.
pub fn write_u32s<W: Write>(w: &mut W, tag: u32, data: &[u32]) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::U32, data.len() as u64)?;
    write_elems(w, data, u32::to_le_bytes)
}

/// Writes a section of `u64`s.
pub fn write_u64s<W: Write>(w: &mut W, tag: u32, data: &[u64]) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::U64, data.len() as u64)?;
    write_elems(w, data, u64::to_le_bytes)
}

/// Writes a section of `f64`s (exact bit patterns, including any NaNs).
pub fn write_f64s<W: Write>(w: &mut W, tag: u32, data: &[f64]) -> Result<(), StoreError> {
    write_section_header(w, tag, elem::F64, data.len() as u64)?;
    write_elems(w, data, f64::to_le_bytes)
}

/// Writes a single-`u64` section.
pub fn write_u64<W: Write>(w: &mut W, tag: u32, v: u64) -> Result<(), StoreError> {
    write_u64s(w, tag, &[v])
}

/// Writes the end-of-body marker.
pub fn write_end<W: Write>(w: &mut W) -> Result<(), StoreError> {
    write_section_header(w, END_TAG, elem::END, 0)?;
    write_payload(w, &[])
}

/// Validates a CSR-style offset array against the flat array it indexes:
/// non-empty, `[0]`-rooted, non-decreasing, covering exactly `flat_len`
/// elements. Every persisted CSR structure's reader uses this one check,
/// so offset-validation fixes land in a single place.
pub fn check_offsets(first: &[u32], flat_len: usize, what: &str) -> Result<(), StoreError> {
    if first.first() != Some(&0)
        || first.windows(2).any(|w| w[0] > w[1])
        || first.last().map(|&x| x as usize) != Some(flat_len)
    {
        return Err(StoreError::invalid(format!("{what}: offsets inconsistent")));
    }
    Ok(())
}

/// A decoded section header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SectionHeader {
    /// 4-ASCII-byte tag.
    pub tag: u32,
    /// Element type code (see [`elem`]).
    pub type_code: u8,
    /// Element count.
    pub count: u64,
}

fn read_section_header<R: Read>(r: &mut R) -> Result<SectionHeader, StoreError> {
    let mut buf = [0u8; 16];
    r.read_exact(&mut buf)?;
    Ok(SectionHeader {
        tag: u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]),
        type_code: buf[4],
        count: u64::from_le_bytes([
            buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
        ]),
    })
}

/// Reads a payload of `len` bytes in bounded chunks, then its CRC, and
/// verifies the checksum.
fn read_payload<R: Read>(r: &mut R, tag: u32, len: u64) -> Result<Vec<u8>, StoreError> {
    let mut payload = Vec::new();
    let mut remaining = len;
    let mut crc = Crc32::new();
    while remaining > 0 {
        let take = remaining.min(CHUNK as u64) as usize;
        let start = payload.len();
        payload.resize(start + take, 0);
        r.read_exact(&mut payload[start..])?;
        crc.update(&payload[start..]);
        remaining -= take as u64;
    }
    let mut stored = [0u8; 4];
    r.read_exact(&mut stored)?;
    if u32::from_le_bytes(stored) != crc.finish() {
        return Err(StoreError::ChecksumMismatch { tag });
    }
    Ok(payload)
}

fn expect_section<R: Read>(
    r: &mut R,
    expected_tag: u32,
    expected_type: u8,
) -> Result<Vec<u8>, StoreError> {
    let h = read_section_header(r)?;
    if h.tag != expected_tag {
        return Err(StoreError::UnexpectedSection {
            expected: expected_tag,
            found: h.tag,
        });
    }
    if h.type_code != expected_type {
        return Err(StoreError::WrongSectionType {
            tag: h.tag,
            expected: expected_type,
            found: h.type_code,
        });
    }
    let len = h
        .count
        .checked_mul(elem_size(expected_type) as u64)
        .ok_or(StoreError::Truncated)?;
    read_payload(r, h.tag, len)
}

/// Reads a raw-bytes section with the given tag.
pub fn read_bytes<R: Read>(r: &mut R, tag: u32) -> Result<Vec<u8>, StoreError> {
    expect_section(r, tag, elem::U8)
}

/// Reads a section of the given element type but returns the **raw
/// little-endian payload** (CRC-verified, length a multiple of the element
/// size) instead of materialising a typed vector. Decode-heavy readers use
/// this to convert elements straight into their final structures, skipping
/// one full intermediate pass over large payloads.
pub fn read_raw<R: Read>(r: &mut R, tag: u32, type_code: u8) -> Result<Vec<u8>, StoreError> {
    expect_section(r, tag, type_code)
}

/// Reads a `u32` section with the given tag.
pub fn read_u32s<R: Read>(r: &mut R, tag: u32) -> Result<Vec<u32>, StoreError> {
    let payload = expect_section(r, tag, elem::U32)?;
    Ok(payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Reads a `u64` section with the given tag.
pub fn read_u64s<R: Read>(r: &mut R, tag: u32) -> Result<Vec<u64>, StoreError> {
    let payload = expect_section(r, tag, elem::U64)?;
    Ok(payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Reads an `f64` section with the given tag (exact bit patterns).
pub fn read_f64s<R: Read>(r: &mut R, tag: u32) -> Result<Vec<f64>, StoreError> {
    let payload = expect_section(r, tag, elem::F64)?;
    Ok(payload
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Reads a single-`u64` section with the given tag.
pub fn read_u64<R: Read>(r: &mut R, tag: u32) -> Result<u64, StoreError> {
    let vs = read_u64s(r, tag)?;
    if vs.len() != 1 {
        return Err(StoreError::invalid(format!(
            "section `{}` holds {} values, expected 1",
            crate::error::tag_name(tag),
            vs.len()
        )));
    }
    Ok(vs[0])
}

/// Reads the end-of-body marker and verifies nothing follows it.
pub fn read_end<R: Read>(r: &mut R) -> Result<(), StoreError> {
    let payload = expect_section(r, END_TAG, elem::END)?;
    debug_assert!(payload.is_empty());
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(()),
        Ok(_) => Err(StoreError::TrailingData),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Summary of one section, as reported by [`walk_sections`].
#[derive(Clone, Copy, Debug)]
pub struct SectionInfo {
    /// The section's tag.
    pub tag: u32,
    /// Element type code.
    pub type_code: u8,
    /// Element count.
    pub count: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// The stored CRC32.
    pub crc: u32,
    /// Wall time spent reading and checksumming this section, in seconds
    /// (the read-side cost `tdx inspect` reports per section).
    pub load_secs: f64,
}

/// Walks a body's sections without interpreting them, verifying each CRC,
/// until the end marker. Returns one [`SectionInfo`] per section (end marker
/// excluded). Powers `tdx inspect` / `tdx verify`.
pub fn walk_sections<R: Read>(r: &mut R) -> Result<Vec<SectionInfo>, StoreError> {
    let mut out = Vec::new();
    loop {
        let timer = td_obs::PhaseTimer::start();
        let h = read_section_header(r)?;
        // Section headers sit outside the payload checksums, so a damaged
        // type code must be rejected here — `elem_size` of an unknown code
        // would otherwise read the section as zero-payload and misalign
        // every subsequent header.
        if !matches!(
            h.type_code,
            elem::END | elem::U8 | elem::U32 | elem::U64 | elem::F64
        ) || (h.type_code == elem::END && h.count != 0)
        {
            return Err(StoreError::invalid(format!(
                "section `{}` has unknown element type {}",
                crate::error::tag_name(h.tag),
                h.type_code
            )));
        }
        let len = h
            .count
            .checked_mul(elem_size(h.type_code) as u64)
            .ok_or(StoreError::Truncated)?;
        let mut remaining = len;
        let mut crc = Crc32::new();
        let mut buf = vec![0u8; CHUNK.min(len.max(1) as usize)];
        while remaining > 0 {
            let take = remaining.min(buf.len() as u64) as usize;
            r.read_exact(&mut buf[..take])?;
            crc.update(&buf[..take]);
            remaining -= take as u64;
        }
        let mut stored = [0u8; 4];
        r.read_exact(&mut stored)?;
        let stored = u32::from_le_bytes(stored);
        if stored != crc.finish() {
            return Err(StoreError::ChecksumMismatch { tag: h.tag });
        }
        if h.tag == END_TAG {
            let mut probe = [0u8; 1];
            return match r.read(&mut probe) {
                Ok(0) => Ok(out),
                Ok(_) => Err(StoreError::TrailingData),
                Err(e) => Err(StoreError::Io(e)),
            };
        }
        out.push(SectionInfo {
            tag: h.tag,
            type_code: h.type_code,
            count: h.count,
            bytes: len,
            crc: stored,
            load_secs: timer.stop().as_secs_f64(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_sections_round_trip() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[1, 2, u32::MAX]).unwrap();
        write_f64s(&mut buf, tag4(*b"BBBB"), &[0.5, -1.25, f64::INFINITY]).unwrap();
        write_u64s(&mut buf, tag4(*b"CCCC"), &[]).unwrap();
        write_bytes(&mut buf, tag4(*b"DDDD"), b"hello").unwrap();
        write_end(&mut buf).unwrap();

        let r = &mut buf.as_slice();
        assert_eq!(read_u32s(r, tag4(*b"AAAA")).unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(
            read_f64s(r, tag4(*b"BBBB")).unwrap(),
            vec![0.5, -1.25, f64::INFINITY]
        );
        assert!(read_u64s(r, tag4(*b"CCCC")).unwrap().is_empty());
        assert_eq!(read_bytes(r, tag4(*b"DDDD")).unwrap(), b"hello");
        read_end(r).unwrap();
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let mut buf = Vec::new();
        write_f64s(&mut buf, tag4(*b"NANS"), &[weird]).unwrap();
        let back = read_f64s(&mut buf.as_slice(), tag4(*b"NANS")).unwrap();
        assert_eq!(back[0].to_bits(), weird.to_bits());
    }

    #[test]
    fn wrong_tag_is_unexpected_section() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[7]).unwrap();
        assert!(matches!(
            read_u32s(&mut buf.as_slice(), tag4(*b"ZZZZ")),
            Err(StoreError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn wrong_type_is_rejected() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[7]).unwrap();
        assert!(matches!(
            read_f64s(&mut buf.as_slice(), tag4(*b"AAAA")),
            Err(StoreError::WrongSectionType { .. })
        ));
    }

    #[test]
    fn bit_flip_is_checksum_mismatch() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[1, 2, 3]).unwrap();
        buf[20] ^= 0x40; // inside the payload
        assert!(matches!(
            read_u32s(&mut buf.as_slice(), tag4(*b"AAAA")),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_truncated_not_panic() {
        let mut full = Vec::new();
        write_f64s(&mut full, tag4(*b"AAAA"), &[1.0, 2.0, 3.0]).unwrap();
        write_end(&mut full).unwrap();
        for cut in 0..full.len() {
            let mut r = &full[..cut];
            match read_f64s(&mut r, tag4(*b"AAAA")) {
                Err(_) => {}
                // The body fit; the truncation must then hit the end marker.
                Ok(_) => assert!(read_end(&mut r).is_err(), "cut={cut} fully succeeded"),
            }
        }
    }

    #[test]
    fn corrupt_count_does_not_allocate_wildly() {
        let mut buf = Vec::new();
        write_u64s(&mut buf, tag4(*b"AAAA"), &[1]).unwrap();
        // Claim ~2^60 elements; the stream ends long before.
        buf[8..16].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            read_u64s(&mut buf.as_slice(), tag4(*b"AAAA")),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn walker_rejects_unknown_element_types() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[1, 2]).unwrap();
        write_end(&mut buf).unwrap();
        buf[4] = 0x77; // damage the type code in the (un-checksummed) header
        assert!(matches!(
            walk_sections(&mut buf.as_slice()),
            Err(StoreError::Invalid(_))
        ));
    }

    #[test]
    fn walker_lists_sections_and_verifies_crc() {
        let mut buf = Vec::new();
        write_u32s(&mut buf, tag4(*b"AAAA"), &[1, 2]).unwrap();
        write_f64s(&mut buf, tag4(*b"BBBB"), &[3.0]).unwrap();
        write_end(&mut buf).unwrap();
        let infos = walk_sections(&mut buf.as_slice()).unwrap();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].count, 2);
        assert_eq!(infos[1].bytes, 8);

        let mut bad = buf.clone();
        bad[20] ^= 1;
        assert!(matches!(
            walk_sections(&mut bad.as_slice()),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(matches!(
            walk_sections(&mut trailing.as_slice()),
            Err(StoreError::TrailingData)
        ));
    }
}
