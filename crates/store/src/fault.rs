//! Deterministic I/O fault injection for crash-consistency tests.
//!
//! Real crashes — power cuts, OOM kills, full disks — truncate or tear a
//! write at an arbitrary byte. [`FaultyWriter`] and [`FaultyReader`]
//! reproduce that deterministically: they pass bytes through to an inner
//! stream until a configured byte offset, then fail with a recognisable
//! [`std::io::Error`], and can additionally cap every call to a maximum
//! chunk so code paths that mishandle short reads/writes get exercised.
//! The kill-point sweep over `save_index` (see the td-api crash-consistency
//! tests) drives snapshot writes through these shims to prove that every
//! fault byte leaves a loadable previous-generation `.tdx` behind.

use std::io::{Error, Read, Write};

/// The message every injected fault carries, so tests can tell injected
/// failures from real ones.
pub const INJECTED_FAULT: &str = "injected I/O fault";

fn injected(at: u64) -> Error {
    Error::other(format!("{INJECTED_FAULT} at byte {at}"))
}

/// True when `err` was produced by one of this module's shims.
pub fn is_injected(err: &Error) -> bool {
    err.to_string().contains(INJECTED_FAULT)
}

/// A [`Write`] adapter that fails once a configured byte offset is reached,
/// and optionally serves short writes before that.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    written: u64,
    fail_at: Option<u64>,
    max_chunk: Option<usize>,
}

impl<W: Write> FaultyWriter<W> {
    /// A transparent pass-through over `inner` (configure with the builder
    /// methods).
    pub fn new(inner: W) -> FaultyWriter<W> {
        FaultyWriter {
            inner,
            written: 0,
            fail_at: None,
            max_chunk: None,
        }
    }

    /// Fail every write attempted at or beyond byte offset `n` (the first
    /// `n` bytes pass through unharmed — possibly split across calls).
    #[must_use]
    pub fn fail_at_byte(mut self, n: u64) -> FaultyWriter<W> {
        self.fail_at = Some(n);
        self
    }

    /// Accept at most `max` bytes per `write` call (short writes): correct
    /// callers use `write_all` semantics and are unaffected; callers that
    /// ignore the returned count corrupt their stream and fail checksums.
    #[must_use]
    pub fn short_writes(mut self, max: usize) -> FaultyWriter<W> {
        assert!(max > 0, "a zero-byte cap would violate the Write contract");
        self.max_chunk = Some(max);
        self
    }

    /// Bytes successfully accepted so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// The inner writer back (e.g. to inspect a partially-written buffer).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut len = buf.len();
        if let Some(cap) = self.max_chunk {
            len = len.min(cap);
        }
        if let Some(fail_at) = self.fail_at {
            let remaining = fail_at.saturating_sub(self.written);
            if remaining == 0 && !buf.is_empty() {
                return Err(injected(fail_at));
            }
            len = len.min(remaining.try_into().unwrap_or(usize::MAX));
        }
        let n = self.inner.write(&buf[..len])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A [`Read`] adapter that fails once a configured byte offset is reached,
/// and optionally serves short reads before that.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    read: u64,
    fail_at: Option<u64>,
    max_chunk: Option<usize>,
}

impl<R: Read> FaultyReader<R> {
    /// A transparent pass-through over `inner` (configure with the builder
    /// methods).
    pub fn new(inner: R) -> FaultyReader<R> {
        FaultyReader {
            inner,
            read: 0,
            fail_at: None,
            max_chunk: None,
        }
    }

    /// Fail every read attempted at or beyond byte offset `n`.
    #[must_use]
    pub fn fail_at_byte(mut self, n: u64) -> FaultyReader<R> {
        self.fail_at = Some(n);
        self
    }

    /// Serve at most `max` bytes per `read` call (short reads).
    #[must_use]
    pub fn short_reads(mut self, max: usize) -> FaultyReader<R> {
        assert!(max > 0, "a zero-byte cap would look like EOF");
        self.max_chunk = Some(max);
        self
    }

    /// Bytes successfully served so far.
    pub fn bytes_read(&self) -> u64 {
        self.read
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut len = buf.len();
        if let Some(cap) = self.max_chunk {
            len = len.min(cap);
        }
        if let Some(fail_at) = self.fail_at {
            let remaining = fail_at.saturating_sub(self.read);
            if remaining == 0 && !buf.is_empty() {
                return Err(injected(fail_at));
            }
            len = len.min(remaining.try_into().unwrap_or(usize::MAX));
        }
        let n = self.inner.read(&mut buf[..len])?;
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_passes_through_until_the_fault_byte() {
        let mut w = FaultyWriter::new(Vec::new()).fail_at_byte(5);
        assert!(w.write_all(b"abc").is_ok());
        let err = w.write_all(b"defg").unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(w.bytes_written(), 5);
        assert_eq!(w.into_inner(), b"abcde");
    }

    #[test]
    fn short_writes_still_deliver_everything_via_write_all() {
        let mut w = FaultyWriter::new(Vec::new()).short_writes(3);
        w.write_all(b"hello world, this is a longer buffer")
            .unwrap();
        assert_eq!(w.into_inner(), b"hello world, this is a longer buffer");
    }

    #[test]
    fn snapshot_through_short_writes_is_byte_identical() {
        // write_snapshot must tolerate arbitrary write splits.
        struct Blob;
        impl crate::Persist for Blob {
            fn write_into<W: Write>(&self, w: &mut W) -> Result<(), crate::StoreError> {
                crate::section::write_bytes(w, crate::section::tag4(*b"BLOB"), &[7u8; 300])
            }
            fn read_from<R: Read>(_: &mut R) -> Result<Blob, crate::StoreError> {
                Ok(Blob)
            }
        }
        let mut plain = Vec::new();
        crate::write_snapshot(&Blob, crate::BackendTag::Dijkstra, &mut plain).unwrap();
        let mut shim = FaultyWriter::new(Vec::new()).short_writes(2);
        crate::write_snapshot(&Blob, crate::BackendTag::Dijkstra, &mut shim).unwrap();
        assert_eq!(plain, shim.into_inner());
    }

    #[test]
    fn reader_passes_through_until_the_fault_byte() {
        let mut r = FaultyReader::new(&b"abcdefgh"[..]).fail_at_byte(4);
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        let err = r.read_exact(&mut buf).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert_eq!(r.bytes_read(), 4);
    }

    #[test]
    fn short_reads_still_fill_via_read_exact() {
        let data: Vec<u8> = (0..=255).collect();
        let mut r = FaultyReader::new(&data[..]).short_reads(7);
        let mut buf = vec![0u8; 256];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(buf, data);
    }
}
