//! The typed error surface of the snapshot format.

use crate::format::BackendTag;

/// Everything that can go wrong writing or reading a `.tdx` snapshot.
///
/// Corrupt, truncated or mismatched input is always reported through one of
/// these variants — never a panic. The reading side validates the magic, the
/// format version, the backend tag, every section header, every per-section
/// CRC32, and every structural invariant of the reconstructed types.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (other than a clean early EOF, which is
    /// reported as [`StoreError::Truncated`]).
    Io(std::io::Error),
    /// The stream ended before the expected bytes (truncated file).
    Truncated,
    /// The file does not start with the `.tdx` magic.
    BadMagic,
    /// The endianness marker is wrong (foreign or corrupt file).
    BadEndianness,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The header names an unknown backend tag.
    UnknownBackend(u32),
    /// The snapshot holds a different backend than the caller asked for.
    WrongBackend {
        /// The backend the caller expected.
        expected: BackendTag,
        /// The backend recorded in the file.
        found: BackendTag,
    },
    /// A section appeared out of order / with an unexpected tag.
    UnexpectedSection {
        /// The tag the reader expected next (4 ASCII bytes).
        expected: u32,
        /// The tag found in the stream.
        found: u32,
    },
    /// A section's element type code does not match its tag's schema.
    WrongSectionType {
        /// The section's tag.
        tag: u32,
        /// The type code the schema prescribes.
        expected: u8,
        /// The type code found in the stream.
        found: u8,
    },
    /// A section's payload failed its CRC32 check.
    ChecksumMismatch {
        /// The section's tag.
        tag: u32,
    },
    /// The stream continued past the end marker.
    TrailingData,
    /// A structural invariant of the reconstructed value failed
    /// (out-of-range id, non-monotone offsets, invalid PLF, …).
    Invalid(String),
    /// The operation is not supported (e.g. snapshotting a backend that
    /// does not implement persistence).
    Unsupported(&'static str),
}

impl StoreError {
    /// Shorthand for a structural-validation failure.
    pub fn invalid(msg: impl Into<String>) -> StoreError {
        StoreError::Invalid(msg.into())
    }

    /// Stable snake_case name of this variant, used as a metric label (e.g.
    /// on the `.tdx.prev` fallback counter) so operators can see *why* a
    /// generation was skipped, not just that it was.
    pub fn variant_name(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::Truncated => "truncated",
            StoreError::BadMagic => "bad_magic",
            StoreError::BadEndianness => "bad_endianness",
            StoreError::UnsupportedVersion(_) => "unsupported_version",
            StoreError::UnknownBackend(_) => "unknown_backend",
            StoreError::WrongBackend { .. } => "wrong_backend",
            StoreError::UnexpectedSection { .. } => "unexpected_section",
            StoreError::WrongSectionType { .. } => "wrong_section_type",
            StoreError::ChecksumMismatch { .. } => "checksum_mismatch",
            StoreError::TrailingData => "trailing_data",
            StoreError::Invalid(_) => "invalid",
            StoreError::Unsupported(_) => "unsupported",
        }
    }
}

/// Renders a section tag as its 4 ASCII characters (or hex when unprintable).
pub fn tag_name(tag: u32) -> String {
    let b = tag.to_le_bytes();
    if b.iter().all(|c| c.is_ascii_graphic() || *c == b' ') {
        b.iter().map(|&c| c as char).collect()
    } else {
        format!("0x{tag:08x}")
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Truncated => write!(f, "truncated snapshot (unexpected end of stream)"),
            StoreError::BadMagic => write!(f, "not a .tdx snapshot (bad magic)"),
            StoreError::BadEndianness => write!(f, "bad endianness marker"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::UnknownBackend(t) => write!(f, "unknown backend tag {t}"),
            StoreError::WrongBackend { expected, found } => write!(
                f,
                "snapshot holds backend {found} but {expected} was requested"
            ),
            StoreError::UnexpectedSection { expected, found } => write!(
                f,
                "unexpected section `{}` (expected `{}`)",
                tag_name(*found),
                tag_name(*expected)
            ),
            StoreError::WrongSectionType {
                tag,
                expected,
                found,
            } => write!(
                f,
                "section `{}` has element type {found} (expected {expected})",
                tag_name(*tag)
            ),
            StoreError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in section `{}`", tag_name(*tag))
            }
            StoreError::TrailingData => write!(f, "trailing bytes after the end marker"),
            StoreError::Invalid(msg) => write!(f, "invalid snapshot content: {msg}"),
            StoreError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e)
        }
    }
}
