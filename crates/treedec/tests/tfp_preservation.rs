//! The decomposition's defining invariant (Def. 5, TFP): the union of all
//! stored `Ws`/`Wd` weight lists — i.e. the chordal fill-in graph produced by
//! the elimination — must preserve every shortest travel-cost function of the
//! original graph. If this holds, Properties 1–3 give the query algorithms
//! their correctness.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_dijkstra::{profile_search, shortest_path_cost};
use td_gen::random_graph::seeded_graph;
use td_graph::{GraphBuilder, TdGraph};
use td_plf::DAY;
use td_treedec::TreeDecomposition;

/// Builds the fill-in graph from a decomposition: edges `v → u` (`Ws`) and
/// `u → v` (`Wd`) for every tree node `X(v)` and bag member `u`.
fn fill_in_graph(td: &TreeDecomposition, n: usize) -> TdGraph {
    let mut b = GraphBuilder::new(n);
    for node in &td.nodes {
        for (i, &u) in node.bag.iter().enumerate() {
            if let Some(w) = &node.ws[i] {
                b.edge(node.vertex, u, w.clone()).unwrap();
            }
            if let Some(w) = &node.wd[i] {
                b.edge(u, node.vertex, w.clone()).unwrap();
            }
        }
    }
    b.build()
}

#[test]
fn fill_in_graph_preserves_shortest_cost_functions() {
    for seed in 0..6u64 {
        let n = 30;
        let g = seeded_graph(seed, n, 20, 3);
        let td = TreeDecomposition::build(&g);
        let h = fill_in_graph(&td, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..5 {
            let s = rng.gen_range(0..n) as u32;
            let orig = profile_search(&g, s);
            let fill = profile_search(&h, s);
            for d in 0..n as u32 {
                for k in 0..6 {
                    let t = k as f64 * DAY / 6.0 + 17.0;
                    match (orig.cost(d, t), fill.cost(d, t)) {
                        (Some(a), Some(b)) => assert!(
                            (a - b).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: original {a} vs fill-in {b}"
                        ),
                        (None, None) => {}
                        other => {
                            panic!("seed={seed} s={s} d={d}: reachability mismatch {other:?}")
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fill_in_graph_never_undercuts_the_original() {
    // The fill-in graph is built from shortest functions of the reduced
    // graph, so it can never report a cost *below* the true shortest cost.
    for seed in 10..14u64 {
        let n = 25;
        let g = seeded_graph(seed, n, 15, 4);
        let td = TreeDecomposition::build(&g);
        let h = fill_in_graph(&td, n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            if let Some(b) = shortest_path_cost(&h, s, d, t) {
                let a = shortest_path_cost(&g, s, d, t).expect("fill-in reachable ⇒ original too");
                assert!(b >= a - 1e-6, "fill-in undercuts: {b} < {a}");
            }
        }
    }
}

#[test]
fn stored_functions_match_direct_edges_on_trees() {
    // On a tree (no fill-in), every stored Ws/Wd must equal the original
    // edge weight exactly.
    let mut b = GraphBuilder::new(5);
    let w = |k: f64| td_plf::Plf::from_pairs(&[(0.0, 10.0 * k), (DAY, 12.0 * k)]).unwrap();
    b.bidirectional(0, 1, w(1.0)).unwrap();
    b.bidirectional(1, 2, w(2.0)).unwrap();
    b.bidirectional(1, 3, w(3.0)).unwrap();
    b.bidirectional(3, 4, w(4.0)).unwrap();
    let g = b.build();
    let td = TreeDecomposition::build(&g);
    for node in &td.nodes {
        for (i, &u) in node.bag.iter().enumerate() {
            let e = g.find_edge(node.vertex, u);
            if let Some(e) = e {
                assert!(node.ws[i].as_ref().unwrap().approx_eq(g.weight(e), 1e-9));
            }
            let e = g.find_edge(u, node.vertex);
            if let Some(e) = e {
                assert!(node.wd[i].as_ref().unwrap().approx_eq(g.weight(e), 1e-9));
            }
        }
    }
}

#[test]
fn road_like_networks_have_small_width() {
    use td_gen::{network::RoadNetwork, RoadNetworkConfig};
    let net = RoadNetwork::generate(&RoadNetworkConfig {
        rows: 24,
        cols: 24,
        extra_edge_fraction: 0.15,
        arterial_fraction: 0.02,
        cell_metres: 250.0,
        seed: 3,
    });
    let td = TreeDecomposition::build(&net.graph);
    let st = td.stats();
    // 576 vertices: a road-like partial grid must stay far below the full
    // grid's Θ(√n·…) width.
    assert!(
        st.width <= 24,
        "width {} too large for a road-like graph",
        st.width
    );
    assert!(st.height <= 200, "height {}", st.height);
}
