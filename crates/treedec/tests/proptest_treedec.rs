//! Property tests over the tree decomposition: Def. 3's three properties and
//! the elimination-order structure, on arbitrary random graphs.

use proptest::prelude::*;
use td_gen::random_graph::seeded_graph;
use td_treedec::TreeDecomposition;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn def3_and_order_structure(seed in 0u64..10_000, n in 5usize..40, extra in 0usize..30) {
        let g = seeded_graph(seed, n, extra, 3);
        let td = TreeDecomposition::build(&g);
        prop_assert_eq!(td.len(), n);

        // Def. 3 (2): every edge covered by the earlier endpoint's bag.
        for e in g.edges() {
            let (u, v) = (e.from, e.to);
            let first = if td.order[u as usize] < td.order[v as usize] { u } else { v };
            let other = if first == u { v } else { u };
            prop_assert!(td.node(first).bag.contains(&other));
        }

        // Property 2 (⇒ Def. 3 (3) for elimination trees): bags ⊆ ancestors.
        for v in 0..n as u32 {
            for &u in &td.node(v).bag {
                prop_assert!(td.is_ancestor_of(u, v));
                // Bag members are eliminated later.
                prop_assert!(td.order[u as usize] > td.order[v as usize]);
            }
        }

        // Orders form a permutation; root is eliminated last.
        let mut orders: Vec<u32> = td.order.clone();
        orders.sort_unstable();
        prop_assert!(orders.iter().enumerate().all(|(i, &o)| i as u32 == o));
        prop_assert_eq!(td.order[td.root as usize] as usize, n - 1);
    }

    #[test]
    fn vertex_cut_always_separates(seed in 0u64..1_000) {
        let n = 20;
        let g = seeded_graph(seed, n, 12, 2);
        let td = TreeDecomposition::build(&g);
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s == d {
                    continue;
                }
                let cut = td.vertex_cut(s, d);
                if cut.contains(&s) || cut.contains(&d) {
                    continue; // endpoint in cut: separation is trivial
                }
                // BFS avoiding the cut must not connect s and d.
                let mut blocked = vec![false; n];
                for &c in &cut {
                    blocked[c as usize] = true;
                }
                let mut seen = vec![false; n];
                seen[s as usize] = true;
                let mut stack = vec![s];
                let mut reached = false;
                while let Some(x) = stack.pop() {
                    if x == d {
                        reached = true;
                        break;
                    }
                    for &(y, _) in g.out_edges(x).iter().chain(g.in_edges(x).iter()) {
                        if !seen[y as usize] && !blocked[y as usize] {
                            seen[y as usize] = true;
                            stack.push(y);
                        }
                    }
                }
                prop_assert!(!reached, "cut {:?} fails to separate {} and {}", cut, s, d);
            }
        }
    }

    #[test]
    fn stored_weights_upper_bound_true_costs(seed in 0u64..1_000) {
        // Every stored Ws/Wd function is the cost of some real path, so it
        // can never undercut the true shortest cost function.
        let n = 18;
        let g = seeded_graph(seed, n, 10, 3);
        let td = TreeDecomposition::build(&g);
        for v in 0..n as u32 {
            let prof = td_dijkstra::profile_search(&g, v);
            let node = td.node(v);
            for (i, &u) in node.bag.iter().enumerate() {
                if let (Some(ws), Some(f)) = (&node.ws[i], &prof.dist[u as usize]) {
                    for k in 0..5 {
                        let t = k as f64 * td_plf::DAY / 5.0;
                        prop_assert!(
                            ws.eval(t) >= f.eval(t) - 1e-6,
                            "Ws undercuts shortest: v={} u={} t={}",
                            v, u, t
                        );
                    }
                }
            }
        }
    }
}
