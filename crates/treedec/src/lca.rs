//! O(1) lowest-common-ancestor queries via Euler tour + sparse-table RMQ.
//!
//! Property 1 makes the LCA node's bag the vertex cut between the query
//! endpoints, so every query starts with an LCA lookup; the sparse table
//! makes that constant-time after `O(n log n)` preprocessing.

use crate::tree::TreeNode;
use td_graph::VertexId;

/// Euler-tour sparse-table LCA index.
#[derive(Clone)]
pub struct LcaIndex {
    /// Euler tour of vertices (2n-1 entries).
    euler: Vec<VertexId>,
    /// Depth of each Euler entry.
    depth: Vec<u32>,
    /// First occurrence of each vertex in the tour.
    first: Vec<u32>,
    /// sparse[k][i] = index (into euler) of the min-depth entry in
    /// [i, i + 2^k).
    sparse: Vec<Vec<u32>>,
}

impl LcaIndex {
    /// Builds the index from the tree's parent/children links.
    pub fn build(nodes: &[TreeNode], root: VertexId) -> LcaIndex {
        let n = nodes.len();
        let mut euler: Vec<VertexId> = Vec::with_capacity(2 * n);
        let mut depth: Vec<u32> = Vec::with_capacity(2 * n);
        let mut first: Vec<u32> = vec![u32::MAX; n];

        // Iterative Euler tour.
        enum Step {
            Visit(VertexId),
            Emit(VertexId),
        }
        let mut stack = vec![Step::Visit(root)];
        while let Some(step) = stack.pop() {
            match step {
                Step::Visit(v) => {
                    if first[v as usize] == u32::MAX {
                        first[v as usize] = euler.len() as u32;
                    }
                    euler.push(v);
                    depth.push(nodes[v as usize].depth);
                    for &c in nodes[v as usize].children.iter().rev() {
                        stack.push(Step::Emit(v));
                        stack.push(Step::Visit(c));
                    }
                }
                Step::Emit(v) => {
                    euler.push(v);
                    depth.push(nodes[v as usize].depth);
                }
            }
        }

        // Sparse table over depths.
        let m = euler.len();
        let levels = (usize::BITS - m.leading_zeros()) as usize;
        let mut sparse: Vec<Vec<u32>> = Vec::with_capacity(levels);
        sparse.push((0..m as u32).collect());
        let mut k = 1;
        while (1 << k) <= m {
            let half = 1 << (k - 1);
            let prev = &sparse[k - 1];
            let mut row = Vec::with_capacity(m - (1 << k) + 1);
            for i in 0..=(m - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if depth[a as usize] <= depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            sparse.push(row);
            k += 1;
        }

        LcaIndex {
            euler,
            depth,
            first,
            sparse,
        }
    }

    /// The LCA of `u` and `v`.
    pub fn query(&self, u: VertexId, v: VertexId) -> VertexId {
        if u == v {
            return u;
        }
        let (mut a, mut b) = (self.first[u as usize], self.first[v as usize]);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let len = (b - a + 1) as usize;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let left = self.sparse[k][a as usize];
        let right = self.sparse[k][b as usize + 1 - (1 << k)];
        let idx = if self.depth[left as usize] <= self.depth[right as usize] {
            left
        } else {
            right
        };
        self.euler[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeDecomposition;
    use td_gen::random_graph::seeded_graph;

    /// Slow reference LCA by walking up.
    fn slow_lca(td: &TreeDecomposition, mut u: VertexId, mut v: VertexId) -> VertexId {
        while td.node(u).depth > td.node(v).depth {
            u = td.node(u).parent.unwrap();
        }
        while td.node(v).depth > td.node(u).depth {
            v = td.node(v).parent.unwrap();
        }
        while u != v {
            u = td.node(u).parent.unwrap();
            v = td.node(v).parent.unwrap();
        }
        u
    }

    #[test]
    fn matches_slow_reference_on_random_trees() {
        for seed in 0..5u64 {
            let g = seeded_graph(seed, 50, 30, 3);
            let td = TreeDecomposition::build(&g);
            for u in 0..50u32 {
                for v in 0..50u32 {
                    assert_eq!(td.lca(u, v), slow_lca(&td, u, v), "seed={seed} u={u} v={v}");
                }
            }
        }
    }

    #[test]
    fn lca_of_self_is_self() {
        let g = seeded_graph(1, 20, 10, 3);
        let td = TreeDecomposition::build(&g);
        for v in 0..20u32 {
            assert_eq!(td.lca(v, v), v);
        }
    }

    #[test]
    fn lca_with_ancestor_is_the_ancestor() {
        let g = seeded_graph(2, 30, 20, 3);
        let td = TreeDecomposition::build(&g);
        for v in 0..30u32 {
            for a in td.ancestors_root_first(v) {
                assert_eq!(td.lca(v, a), a);
            }
        }
    }
}
