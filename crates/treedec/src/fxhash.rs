//! A minimal Fx-style hasher for small integer keys.
//!
//! The elimination data structures hash millions of `u32` vertex ids; the
//! standard SipHash is needlessly slow for this (see the Rust Performance
//! Book's Hashing chapter). This is the classic Firefox/rustc multiply-rotate
//! hash, implemented locally to keep the dependency set to the approved list.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (word-at-a-time, non-cryptographic).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_sequential_keys() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "collisions on sequential u32 keys");
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_writes_consistent() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}
