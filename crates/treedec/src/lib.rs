#![forbid(unsafe_code)]
//! # td-treedec — tree decomposition of time-dependent road networks
//!
//! Implements §3 of the paper:
//!
//! * the **reduction operator** `G ⊖ v` (Algo. 1), which eliminates a vertex
//!   while preserving shortest travel-cost functions among its neighbours
//!   (producing a TFP-graph, Def. 5);
//! * **TFP tree decomposition** (Algo. 2): min-degree elimination, one tree
//!   node `X(v)` per vertex storing the weight lists `Ws` (`v → u`) and `Wd`
//!   (`u → v`) for every bag member `u ∈ X(v)\{v}`;
//! * the tree skeleton with parent/children links, depths, subtree sizes,
//!   treewidth/treeheight (Def. 4) and O(1) **LCA** via Euler tour + sparse
//!   table (needed by Property 1's vertex-cut argument).
//!
//! The decomposition is the substrate shared by `td-core` (the paper's index)
//! and `td-h2h` (the TD-H2H baseline).

pub mod elimination;
pub mod fxhash;
pub mod lca;
pub mod persist;
pub mod tree;

pub use elimination::{EliminationGraph, ReductionStats};
pub use lca::LcaIndex;
pub use tree::{TreeDecomposition, TreeNode, TreeStats};
