//! TFP tree decomposition (Algo. 2) and the tree skeleton.

use crate::elimination::{EliminationGraph, ReductionStats, SupportMap};
use crate::lca::LcaIndex;
use td_graph::{TdGraph, VertexId};
use td_plf::Plf;

/// One tree node `X(v)` of the decomposition.
///
/// `bag` is `X(v)\{v}` sorted by elimination order (ascending), so `bag\[0\]`
/// is the parent vertex (Algo. 2 line 12) and, by Property 2, every bag
/// member is an ancestor of `X(v)`.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// The vertex this node corresponds to.
    pub vertex: VertexId,
    /// `X(v)\{v}` sorted by elimination order (parent first).
    pub bag: Vec<VertexId>,
    /// `X(v).Ws`: weight function `v → bag[i]` (`None` when the reduced graph
    /// had no such directed edge).
    pub ws: Vec<Option<Plf>>,
    /// `X(v).Wd`: weight function `bag[i] → v`.
    pub wd: Vec<Option<Plf>>,
    /// Parent tree node's vertex (`None` for the root).
    pub parent: Option<VertexId>,
    /// Children tree nodes' vertices.
    pub children: Vec<VertexId>,
    /// Depth from the root (root = 0); the paper's `height(X(v))` = depth+1.
    pub depth: u32,
    /// Vertices in the subtree rooted here (including this node).
    pub subtree_size: u32,
}

/// Summary statistics of a decomposition (Table 2's `h(T_G)`, `w(T_G)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeStats {
    /// Treewidth `w(T_G)` = max |X(v)| − 1.
    pub width: usize,
    /// Treeheight `h(T_G)` = max height (depth+1).
    pub height: usize,
    /// Mean depth over all nodes.
    pub avg_depth: f64,
    /// Total interpolation points stored in all `Ws`/`Wd` lists.
    pub stored_points: usize,
    /// Heap bytes of all stored weight functions.
    pub bytes: usize,
    /// Elimination counters.
    pub reduction: ReductionStats,
}

/// A travel-function-preserved tree decomposition `T_G` (Algo. 2).
#[derive(Clone)]
pub struct TreeDecomposition {
    /// Tree nodes indexed by vertex id (one-to-one correspondence, §3.1).
    pub nodes: Vec<TreeNode>,
    /// Elimination order `π`: `order[v]` = step at which `v` was eliminated.
    pub order: Vec<u32>,
    /// The root node's vertex (eliminated last).
    pub root: VertexId,
    /// Optional support lists for incremental updates.
    pub supports: Option<SupportMap>,
    lca: LcaIndex,
    reduction: ReductionStats,
}

impl TreeDecomposition {
    /// Runs Algo. 2 on `g`: min-degree elimination with the reduction
    /// operator, then assembles the tree. `g` should be connected (isolated
    /// components are attached below the root so LCA stays total; queries
    /// across components correctly return "unreachable").
    pub fn build(g: &TdGraph) -> TreeDecomposition {
        Self::build_opts(g, false)
    }

    /// [`TreeDecomposition::build`] with optional support tracking for
    /// incremental updates (`td-core::update`).
    pub fn build_opts(g: &TdGraph, track_supports: bool) -> TreeDecomposition {
        let n = g.num_vertices();
        assert!(n > 0, "cannot decompose an empty graph");
        let mut eg = EliminationGraph::with_supports(g, track_supports);
        let mut order = vec![0u32; n];
        let mut nodes: Vec<Option<TreeNode>> = (0..n).map(|_| None).collect();

        for step in 0..n as u32 {
            let v = eg.pop_min_degree().expect("one pop per vertex");
            let (bag, ws, wd) = eg.eliminate(v);
            order[v as usize] = step;
            nodes[v as usize] = Some(TreeNode {
                vertex: v,
                bag,
                ws,
                wd,
                parent: None,
                children: Vec::new(),
                depth: 0,
                subtree_size: 1,
            });
        }
        let reduction = eg.stats;

        let mut nodes: Vec<TreeNode> = nodes.into_iter().map(|n| n.expect("all built")).collect();

        // Sort each bag (and its weight lists) by elimination order; bag[0]
        // becomes the parent (Algo. 2 lines 10-13).
        for node in &mut nodes {
            let mut idx: Vec<usize> = (0..node.bag.len()).collect();
            idx.sort_by_key(|&i| order[node.bag[i] as usize]);
            node.bag = idx.iter().map(|&i| node.bag[i]).collect();
            node.ws = idx.iter().map(|&i| node.ws[i].clone()).collect();
            node.wd = idx.iter().map(|&i| node.wd[i].clone()).collect();
        }

        // Root = vertex eliminated last.
        let root = (0..n as u32)
            .max_by_key(|&v| order[v as usize])
            .expect("non-empty");

        // Parents and children.
        for v in 0..n as u32 {
            let parent = if v == root {
                None
            } else if nodes[v as usize].bag.is_empty() {
                // Disconnected component's local root: hang under the global
                // root with no weight entries (unreachable in queries).
                Some(root)
            } else {
                Some(nodes[v as usize].bag[0])
            };
            nodes[v as usize].parent = parent;
            if let Some(p) = parent {
                let child = v;
                nodes[p as usize].children.push(child);
            }
        }

        // Depths + subtree sizes via preorder/postorder over the tree.
        let mut preorder = Vec::with_capacity(n);
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            preorder.push(v);
            let children = nodes[v as usize].children.clone();
            let d = nodes[v as usize].depth;
            for c in children {
                nodes[c as usize].depth = d + 1;
                stack.push(c);
            }
        }
        debug_assert_eq!(preorder.len(), n, "tree must span all vertices");
        for &v in preorder.iter().rev() {
            let size = nodes[v as usize].subtree_size;
            if let Some(p) = nodes[v as usize].parent {
                nodes[p as usize].subtree_size += size;
            }
            let _ = size;
        }

        let supports = eg.supports.take();
        let lca = LcaIndex::build(&nodes, root);
        TreeDecomposition {
            nodes,
            order,
            root,
            supports,
            lca,
            reduction,
        }
    }

    /// Reassembles a decomposition from persisted parts, rebuilding the LCA
    /// index (deterministic from the tree skeleton). The persistence module
    /// validates the skeleton before calling this.
    pub(crate) fn from_parts(
        nodes: Vec<TreeNode>,
        order: Vec<u32>,
        root: VertexId,
        supports: Option<SupportMap>,
        reduction: ReductionStats,
    ) -> TreeDecomposition {
        let lca = LcaIndex::build(&nodes, root);
        TreeDecomposition {
            nodes,
            order,
            root,
            supports,
            lca,
            reduction,
        }
    }

    /// The elimination counters recorded during construction.
    pub(crate) fn reduction_stats(&self) -> ReductionStats {
        self.reduction
    }

    /// Position of `u` inside `X(v)`'s bag, if present.
    pub fn bag_position(&self, v: VertexId, u: VertexId) -> Option<usize> {
        self.nodes[v as usize].bag.iter().position(|&x| x == u)
    }

    /// Number of tree nodes (= vertices).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the decomposition is empty (never: `build` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node `X(v)`.
    #[inline]
    pub fn node(&self, v: VertexId) -> &TreeNode {
        &self.nodes[v as usize]
    }

    /// The paper's `height(X(v))` (= depth + 1, root has height 1).
    #[inline]
    pub fn height_of(&self, v: VertexId) -> u32 {
        self.nodes[v as usize].depth + 1
    }

    /// Lowest common ancestor of `X(u)` and `X(v)` (Property 1: its bag ∪
    /// vertex is a vertex cut separating `u` and `v`).
    #[inline]
    pub fn lca(&self, u: VertexId, v: VertexId) -> VertexId {
        self.lca.query(u, v)
    }

    /// The vertex cut separating `s` and `d` (Property 1): the LCA node's
    /// `{vertex} ∪ bag`.
    pub fn vertex_cut(&self, s: VertexId, d: VertexId) -> Vec<VertexId> {
        let mut cut = Vec::new();
        self.vertex_cut_into(s, d, &mut cut);
        cut
    }

    /// Allocation-free [`TreeDecomposition::vertex_cut`]: fills `out` (after
    /// clearing it) and returns the LCA vertex.
    pub fn vertex_cut_into(&self, s: VertexId, d: VertexId, out: &mut Vec<VertexId>) -> VertexId {
        let x = self.lca(s, d);
        let node = self.node(x);
        out.clear();
        out.reserve(node.bag.len() + 1);
        out.push(x);
        out.extend_from_slice(&node.bag);
        x
    }

    /// Ancestor vertices of `X(v)` from the root down to the parent
    /// (Def. 6's list sorted by increasing height).
    pub fn ancestors_root_first(&self, v: VertexId) -> Vec<VertexId> {
        let mut anc = Vec::with_capacity(self.nodes[v as usize].depth as usize);
        self.ancestors_root_first_into(v, &mut anc);
        anc
    }

    /// Allocation-free [`TreeDecomposition::ancestors_root_first`]: fills
    /// `out` (after clearing it).
    pub fn ancestors_root_first_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let mut cur = self.nodes[v as usize].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p as usize].parent;
        }
        out.reverse();
    }

    /// Iterator over `v`'s ancestors walking *up* (parent first).
    pub fn walk_up(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        std::iter::successors(self.nodes[v as usize].parent, move |&p| {
            self.nodes[p as usize].parent
        })
    }

    /// True iff `a` is an ancestor of `v` (or equal).
    pub fn is_ancestor_of(&self, a: VertexId, v: VertexId) -> bool {
        self.lca(a, v) == a
    }

    /// Decomposition statistics (Def. 4).
    pub fn stats(&self) -> TreeStats {
        let width = self.nodes.iter().map(|n| n.bag.len()).max().unwrap_or(0);
        let height = self.nodes.iter().map(|n| n.depth + 1).max().unwrap_or(0) as usize;
        let avg_depth =
            self.nodes.iter().map(|n| n.depth as f64).sum::<f64>() / self.nodes.len() as f64;
        let mut stored_points = 0usize;
        let mut bytes = 0usize;
        for n in &self.nodes {
            for f in n.ws.iter().chain(n.wd.iter()).flatten() {
                stored_points += f.len();
                bytes += f.heap_bytes();
            }
        }
        TreeStats {
            width,
            height,
            avg_depth,
            stored_points,
            bytes,
            reduction: self.reduction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_gen::random_graph::seeded_graph;
    use td_graph::GraphBuilder;

    fn small_road() -> TdGraph {
        // A 3x3 grid, symmetric constant weights.
        let mut b = GraphBuilder::new(9);
        let at = |r: u32, c: u32| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    b.bidirectional(at(r, c), at(r, c + 1), Plf::constant(1.0))
                        .unwrap();
                }
                if r + 1 < 3 {
                    b.bidirectional(at(r, c), at(r + 1, c), Plf::constant(1.0))
                        .unwrap();
                }
            }
        }
        b.build()
    }

    /// Def. 3 property (1): bags cover all vertices. Trivial here since
    /// `v ∈ X(v)`, but we check the bag structure is well formed.
    #[test]
    fn def3_bags_are_well_formed() {
        let g = small_road();
        let td = TreeDecomposition::build(&g);
        assert_eq!(td.len(), 9);
        for v in 0..9u32 {
            let node = td.node(v);
            assert_eq!(node.vertex, v);
            assert!(!node.bag.contains(&v), "bag must exclude its own vertex");
            assert_eq!(node.bag.len(), node.ws.len());
            assert_eq!(node.bag.len(), node.wd.len());
        }
    }

    /// Def. 3 property (2): every original edge appears inside some bag.
    #[test]
    fn def3_every_edge_is_covered_by_a_bag() {
        let g = small_road();
        let td = TreeDecomposition::build(&g);
        for e in g.edges() {
            let (u, v) = (e.from, e.to);
            // The earlier-eliminated endpoint's node contains the other.
            let first = if td.order[u as usize] < td.order[v as usize] {
                u
            } else {
                v
            };
            let other = if first == u { v } else { u };
            assert!(
                td.node(first).bag.contains(&other),
                "edge ({u},{v}) not covered by X({first})"
            );
        }
    }

    /// Def. 3 property (3): nodes containing a vertex form a connected
    /// subtree. For elimination-based decompositions this is equivalent to:
    /// every bag member of X(v) is an ancestor of X(v) (Property 2), which we
    /// check directly.
    #[test]
    fn property2_bag_members_are_ancestors() {
        for seed in 0..4u64 {
            let g = seeded_graph(seed, 40, 25, 3);
            let td = TreeDecomposition::build(&g);
            for v in 0..40u32 {
                for &u in &td.node(v).bag {
                    assert!(
                        td.is_ancestor_of(u, v),
                        "seed={seed}: bag member {u} is not an ancestor of {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn parent_is_lowest_order_bag_member() {
        let g = small_road();
        let td = TreeDecomposition::build(&g);
        for v in 0..9u32 {
            if v == td.root {
                assert!(td.node(v).parent.is_none());
            } else {
                let node = td.node(v);
                let min_order_member = *node
                    .bag
                    .iter()
                    .min_by_key(|&&u| td.order[u as usize])
                    .unwrap();
                assert_eq!(node.parent, Some(min_order_member));
                // Parent was eliminated after v.
                assert!(td.order[min_order_member as usize] > td.order[v as usize]);
            }
        }
    }

    #[test]
    fn depths_and_subtree_sizes_are_consistent() {
        let g = seeded_graph(9, 60, 40, 3);
        let td = TreeDecomposition::build(&g);
        let root = td.root;
        assert_eq!(td.node(root).depth, 0);
        assert_eq!(td.node(root).subtree_size as usize, td.len());
        let mut child_sum = vec![0u32; td.len()];
        for v in 0..td.len() as u32 {
            if let Some(p) = td.node(v).parent {
                assert_eq!(td.node(v).depth, td.node(p).depth + 1);
                child_sum[p as usize] += td.node(v).subtree_size;
            }
        }
        for v in 0..td.len() as u32 {
            assert_eq!(td.node(v).subtree_size, child_sum[v as usize] + 1);
        }
    }

    #[test]
    fn vertex_cut_separates_in_the_original_graph() {
        // Property 1: removing the LCA cut disconnects s from d.
        let g = small_road();
        let td = TreeDecomposition::build(&g);
        for s in 0..9u32 {
            for d in 0..9u32 {
                if s == d || td.is_ancestor_of(s, d) || td.is_ancestor_of(d, s) {
                    continue;
                }
                let cut = td.vertex_cut(s, d);
                if cut.contains(&s) || cut.contains(&d) {
                    continue;
                }
                // BFS in g avoiding the cut.
                let mut seen = [false; 9];
                for &c in &cut {
                    seen[c as usize] = true;
                }
                let mut stack = vec![s];
                seen[s as usize] = true;
                let mut reached = false;
                while let Some(x) = stack.pop() {
                    if x == d {
                        reached = true;
                        break;
                    }
                    for &(y, _) in g.out_edges(x) {
                        if !seen[y as usize] {
                            seen[y as usize] = true;
                            stack.push(y);
                        }
                    }
                }
                assert!(!reached, "cut {cut:?} fails to separate {s} and {d}");
            }
        }
    }

    #[test]
    fn stats_report_plausible_width_and_height() {
        let g = small_road();
        let td = TreeDecomposition::build(&g);
        let st = td.stats();
        // A 3x3 grid has treewidth 3.
        assert!(st.width >= 2 && st.width <= 4, "width={}", st.width);
        assert!(
            st.height >= st.width,
            "height={} width={}",
            st.height,
            st.width
        );
        assert!(st.stored_points > 0);
        assert_eq!(st.reduction.max_bag, st.width + 1);
    }

    #[test]
    fn ancestors_root_first_matches_walk_up() {
        let g = seeded_graph(5, 30, 20, 3);
        let td = TreeDecomposition::build(&g);
        for v in 0..30u32 {
            let mut up: Vec<VertexId> = td.walk_up(v).collect();
            up.reverse();
            assert_eq!(td.ancestors_root_first(v), up);
        }
    }

    #[test]
    fn disconnected_graph_attaches_component_roots() {
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        g.add_edge(1, 0, Plf::constant(1.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(1.0)).unwrap();
        g.add_edge(3, 2, Plf::constant(1.0)).unwrap();
        let td = TreeDecomposition::build(&g);
        // Every node reaches the root by parent links.
        for v in 0..4u32 {
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = td.node(cur).parent {
                cur = p;
                steps += 1;
                assert!(steps <= 4);
            }
            assert_eq!(cur, td.root);
        }
    }
}
