//! Snapshot persistence ([`td_store::Persist`]) for [`TreeDecomposition`].
//!
//! The decomposition is the expensive build product of Algo. 2 — loading it
//! must not re-run elimination. Persisted verbatim: the tree skeleton
//! (parent/depth/subtree arrays, bags CSR-flattened in elimination-sorted
//! order), the `Ws`/`Wd` weight lists, the elimination order, the optional
//! support lists (sorted by key for deterministic bytes), and the reduction
//! counters. Rebuilt on load (cheap, deterministic): `children` lists from
//! the parent array and the Euler-tour LCA index.
//!
//! Reading validates the skeleton before reassembly — parent/depth
//! consistency (which implies acyclicity), elimination order being a
//! permutation, bag members in range and sorted by elimination order with
//! `bag[0]` = parent — so a corrupt file cannot smuggle in a malformed tree
//! that would panic later inside a query.

use crate::elimination::{ReductionStats, SupportMap};
use crate::tree::{TreeDecomposition, TreeNode};
use std::io::{Read, Write};
use td_graph::VertexId;
use td_plf::persist::{read_plf_list, write_plf_list};
use td_store::section::{
    check_offsets, read_u32s, read_u64, read_u64s, tag4, write_u32s, write_u64, write_u64s,
};
use td_store::{Persist, StoreError};

const TAG_ROOT: u32 = tag4(*b"Troo");
const TAG_ORDER: u32 = tag4(*b"Tord");
const TAG_PARENT: u32 = tag4(*b"Tpar");
const TAG_DEPTH: u32 = tag4(*b"Tdep");
const TAG_SUBTREE: u32 = tag4(*b"Tsub");
const TAG_BAG_FIRST: u32 = tag4(*b"Tbf ");
const TAG_BAG: u32 = tag4(*b"Tbag");
const TAG_SUP_FLAG: u32 = tag4(*b"Tsup");
const TAG_SUP_A: u32 = tag4(*b"Tska");
const TAG_SUP_B: u32 = tag4(*b"Tskb");
const TAG_SUP_FIRST: u32 = tag4(*b"Tsvf");
const TAG_SUP_VALS: u32 = tag4(*b"Tsvv");
const TAG_REDUCTION: u32 = tag4(*b"Trds");

/// Sentinel for "no parent" in the persisted parent array.
const NO_PARENT: u32 = u32::MAX;

impl Persist for TreeDecomposition {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let n = self.len();
        write_u64(w, TAG_ROOT, self.root as u64)?;
        write_u32s(w, TAG_ORDER, &self.order)?;
        let parent: Vec<u32> = self
            .nodes
            .iter()
            .map(|nd| nd.parent.unwrap_or(NO_PARENT))
            .collect();
        write_u32s(w, TAG_PARENT, &parent)?;
        let depth: Vec<u32> = self.nodes.iter().map(|nd| nd.depth).collect();
        write_u32s(w, TAG_DEPTH, &depth)?;
        let subtree: Vec<u32> = self.nodes.iter().map(|nd| nd.subtree_size).collect();
        write_u32s(w, TAG_SUBTREE, &subtree)?;

        let mut bag_first = Vec::with_capacity(n + 1);
        let mut bag = Vec::new();
        bag_first.push(0u32);
        for nd in &self.nodes {
            bag.extend_from_slice(&nd.bag);
            bag_first.push(bag.len() as u32);
        }
        write_u32s(w, TAG_BAG_FIRST, &bag_first)?;
        write_u32s(w, TAG_BAG, &bag)?;

        write_plf_list(
            w,
            self.nodes
                .iter()
                .flat_map(|nd| nd.ws.iter().map(|f| f.as_ref())),
        )?;
        write_plf_list(
            w,
            self.nodes
                .iter()
                .flat_map(|nd| nd.wd.iter().map(|f| f.as_ref())),
        )?;

        match &self.supports {
            None => write_u64(w, TAG_SUP_FLAG, 0)?,
            Some(map) => {
                write_u64(w, TAG_SUP_FLAG, 1)?;
                // Sorted by key for deterministic bytes (hash maps iterate
                // in arbitrary order).
                let mut keys: Vec<(VertexId, VertexId)> = map.keys().copied().collect();
                keys.sort_unstable();
                let a: Vec<u32> = keys.iter().map(|k| k.0).collect();
                let b: Vec<u32> = keys.iter().map(|k| k.1).collect();
                let mut first = Vec::with_capacity(keys.len() + 1);
                let mut vals = Vec::new();
                first.push(0u32);
                for k in &keys {
                    vals.extend_from_slice(&map[k]);
                    first.push(vals.len() as u32);
                }
                write_u32s(w, TAG_SUP_A, &a)?;
                write_u32s(w, TAG_SUP_B, &b)?;
                write_u32s(w, TAG_SUP_FIRST, &first)?;
                write_u32s(w, TAG_SUP_VALS, &vals)?;
            }
        }

        let rs = self.reduction_stats();
        write_u64s(
            w,
            TAG_REDUCTION,
            &[rs.fill_edges as u64, rs.compounds as u64, rs.max_bag as u64],
        )
    }

    fn read_from<R: Read>(r: &mut R) -> Result<TreeDecomposition, StoreError> {
        let root = read_u64(r, TAG_ROOT)?;
        let order = read_u32s(r, TAG_ORDER)?;
        let parent = read_u32s(r, TAG_PARENT)?;
        let depth = read_u32s(r, TAG_DEPTH)?;
        let subtree = read_u32s(r, TAG_SUBTREE)?;
        let bag_first = read_u32s(r, TAG_BAG_FIRST)?;
        let bag = read_u32s(r, TAG_BAG)?;
        let ws = read_plf_list(r)?;
        let wd = read_plf_list(r)?;

        let n = order.len();
        if n == 0 {
            return Err(StoreError::invalid("empty tree decomposition"));
        }
        if root >= n as u64 {
            return Err(StoreError::invalid("root out of range"));
        }
        let root = root as VertexId;
        if parent.len() != n || depth.len() != n || subtree.len() != n {
            return Err(StoreError::invalid("tree arrays disagree in length"));
        }
        // Elimination order must be a permutation of 0..n.
        let mut seen = vec![false; n];
        for &o in &order {
            if o as usize >= n || std::mem::replace(&mut seen[o as usize], true) {
                return Err(StoreError::invalid(
                    "elimination order is not a permutation",
                ));
            }
        }
        // Bags: CSR offsets + members in range.
        if bag_first.len() != n + 1 {
            return Err(StoreError::invalid("bag offsets are inconsistent"));
        }
        check_offsets(&bag_first, bag.len(), "bags")?;
        if bag.iter().any(|&u| u as usize >= n) {
            return Err(StoreError::invalid("bag member out of range"));
        }
        if ws.len() != bag.len() || wd.len() != bag.len() {
            return Err(StoreError::invalid(
                "weight lists disagree with bag slot count",
            ));
        }
        // Skeleton: root is the unique parentless node; every other node's
        // parent has depth one less (implies acyclicity and a single tree).
        if depth[root as usize] != 0 || parent[root as usize] != NO_PARENT {
            return Err(StoreError::invalid("root must be parentless at depth 0"));
        }
        for v in 0..n {
            if v as u32 == root {
                continue;
            }
            let p = parent[v];
            if p == NO_PARENT || p as usize >= n {
                return Err(StoreError::invalid("non-root node without a valid parent"));
            }
            // checked_add: the parent may appear later in the array, so its
            // depth can be arbitrary garbage here (u32::MAX would overflow
            // a plain `+ 1` into a debug-build panic).
            if depth[p as usize].checked_add(1) != Some(depth[v]) {
                return Err(StoreError::invalid("depth inconsistent with parent"));
            }
            if !(1..=n as u32).contains(&subtree[v]) {
                return Err(StoreError::invalid("subtree size out of range"));
            }
        }

        // Assemble nodes; bags must be sorted by elimination order with
        // bag[0] = parent (the structure every query walk relies on).
        let mut nodes: Vec<TreeNode> = Vec::with_capacity(n);
        let mut ws_iter = ws.into_iter();
        let mut wd_iter = wd.into_iter();
        for v in 0..n {
            let lo = bag_first[v] as usize;
            let hi = bag_first[v + 1] as usize;
            let b = bag[lo..hi].to_vec();
            if b.windows(2)
                .any(|w| order[w[0] as usize] >= order[w[1] as usize])
            {
                return Err(StoreError::invalid("bag not sorted by elimination order"));
            }
            match b.first() {
                Some(&first) if v as u32 != root && parent[v] != first => {
                    return Err(StoreError::invalid("bag[0] does not match the parent"));
                }
                None if v as u32 != root && parent[v] != root => {
                    return Err(StoreError::invalid(
                        "bagless non-root node must hang under the root",
                    ));
                }
                _ => {}
            }
            let count = hi - lo;
            nodes.push(TreeNode {
                vertex: v as VertexId,
                bag: b,
                ws: ws_iter.by_ref().take(count).collect(),
                wd: wd_iter.by_ref().take(count).collect(),
                parent: if v as u32 == root {
                    None
                } else {
                    Some(parent[v])
                },
                children: Vec::new(),
                depth: depth[v],
                subtree_size: subtree[v],
            });
        }
        // Children in ascending vertex order — the order `build` produces.
        for v in 0..n as u32 {
            if v != root {
                let p = parent[v as usize];
                nodes[p as usize].children.push(v);
            }
        }

        let supports = match read_u64(r, TAG_SUP_FLAG)? {
            0 => None,
            1 => {
                let a = read_u32s(r, TAG_SUP_A)?;
                let b = read_u32s(r, TAG_SUP_B)?;
                let first = read_u32s(r, TAG_SUP_FIRST)?;
                let vals = read_u32s(r, TAG_SUP_VALS)?;
                if a.len() != b.len() || first.len() != a.len() + 1 {
                    return Err(StoreError::invalid("support arrays are inconsistent"));
                }
                check_offsets(&first, vals.len(), "supports")?;
                if a.iter().zip(&b).any(|(&x, &y)| x >= y || y as usize >= n)
                    || vals.iter().any(|&m| m as usize >= n)
                {
                    return Err(StoreError::invalid("support entry out of range"));
                }
                let mut map = SupportMap::default();
                for (i, (&x, &y)) in a.iter().zip(&b).enumerate() {
                    let lo = first[i] as usize;
                    let hi = first[i + 1] as usize;
                    map.insert((x, y), vals[lo..hi].to_vec());
                }
                Some(map)
            }
            other => {
                return Err(StoreError::invalid(format!(
                    "support flag must be 0 or 1, got {other}"
                )))
            }
        };

        let rs = read_u64s(r, TAG_REDUCTION)?;
        if rs.len() != 3 {
            return Err(StoreError::invalid("reduction stats must hold 3 counters"));
        }
        let reduction = ReductionStats {
            fill_edges: rs[0] as usize,
            compounds: rs[1] as usize,
            max_bag: rs[2] as usize,
        };

        Ok(TreeDecomposition::from_parts(
            nodes, order, root, supports, reduction,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_gen::random_graph::seeded_graph;

    fn roundtrip(td: &TreeDecomposition) -> TreeDecomposition {
        let mut buf = Vec::new();
        td.write_into(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = TreeDecomposition::read_from(&mut r).unwrap();
        assert!(r.is_empty());
        back
    }

    #[test]
    fn decomposition_round_trips_exactly() {
        for supports in [false, true] {
            let g = seeded_graph(7, 40, 25, 3);
            let td = TreeDecomposition::build_opts(&g, supports);
            let back = roundtrip(&td);
            assert_eq!(back.root, td.root);
            assert_eq!(back.order, td.order);
            assert_eq!(back.len(), td.len());
            for v in 0..td.len() as u32 {
                let (a, b) = (back.node(v), td.node(v));
                assert_eq!(a.bag, b.bag);
                assert_eq!(a.parent, b.parent);
                assert_eq!(a.children, b.children);
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.subtree_size, b.subtree_size);
                assert_eq!(a.ws, b.ws);
                assert_eq!(a.wd, b.wd);
            }
            assert_eq!(back.supports, td.supports);
            assert_eq!(back.stats(), td.stats());
            // The rebuilt LCA answers identically.
            for u in 0..td.len() as u32 {
                for v in (0..td.len() as u32).step_by(7) {
                    assert_eq!(back.lca(u, v), td.lca(u, v));
                }
            }
        }
    }

    #[test]
    fn corrupt_skeleton_is_rejected() {
        let g = seeded_graph(3, 20, 12, 3);
        let td = TreeDecomposition::build(&g);
        let mut buf = Vec::new();
        td.write_into(&mut buf).unwrap();
        // Truncations at every section boundary-ish prefix must error, not
        // panic.
        for cut in (0..buf.len()).step_by(97) {
            assert!(TreeDecomposition::read_from(&mut &buf[..cut]).is_err());
        }
    }
}
