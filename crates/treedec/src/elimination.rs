//! The dynamic reduced graph and the reduction operator `G ⊖ v` (Algo. 1).
//!
//! [`EliminationGraph`] holds the evolving TFP-graph `G'` during Algo. 2:
//! undirected adjacency sets (for min-degree bookkeeping) plus directed weight
//! functions. Eliminating `v` connects every pair of its neighbours with the
//! compound weight through `v` (or the minimum with an existing edge),
//! exactly as Algo. 1 lines 2-8 prescribe, stamping `v` as the witness.

use crate::fxhash::{FxHashMap, FxHashSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use td_graph::{TdGraph, VertexId};
use td_plf::Plf;

/// Counters describing one full elimination run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Fill-in edges inserted (new neighbour pairs).
    pub fill_edges: usize,
    /// `Compound` invocations performed.
    pub compounds: usize,
    /// Maximum bag size observed (= treewidth + 1 once finished).
    pub max_bag: usize,
}

/// Support lists: for each unordered vertex pair `(a, b)` (with `a < b`),
/// the eliminated vertices `m` whose reduction contributed a compound edge
/// between `a` and `b`. Enables exact incremental updates (`td-core::update`):
/// the recorded value of a pair is `min(base edge, contributions through all
/// supports)`, so a changed contribution can be replayed without a rebuild.
pub type SupportMap = FxHashMap<(VertexId, VertexId), Vec<VertexId>>;

/// The dynamic reduced graph `G'`.
pub struct EliminationGraph {
    /// Undirected adjacency among *alive* vertices.
    nbrs: Vec<FxHashSet<VertexId>>,
    /// Directed weights of the reduced graph: `out[u][v] = w'_{u,v}(t)`.
    out: Vec<FxHashMap<VertexId, Plf>>,
    /// Whether each vertex is still alive.
    alive: Vec<bool>,
    /// Lazy min-degree heap of `(degree, vertex)`.
    heap: BinaryHeap<Reverse<(u32, VertexId)>>,
    /// Elimination statistics.
    pub stats: ReductionStats,
    /// Optional support tracking (see [`SupportMap`]).
    pub supports: Option<SupportMap>,
}

impl EliminationGraph {
    /// Initialises the reduced graph from `g`.
    pub fn new(g: &TdGraph) -> Self {
        Self::with_supports(g, false)
    }

    /// Initialises the reduced graph, optionally recording support lists.
    pub fn with_supports(g: &TdGraph, track_supports: bool) -> Self {
        let n = g.num_vertices();
        let mut nbrs: Vec<FxHashSet<VertexId>> = Vec::with_capacity(n);
        for v in 0..n as u32 {
            // The dedup is free here: the iterator yields each undirected
            // neighbour exactly once, so the sets are built without the
            // insert-twice churn of scanning the edge list.
            nbrs.push(g.undirected_neighbors_iter(v).collect());
        }
        let mut out: Vec<FxHashMap<VertexId, Plf>> = vec![FxHashMap::default(); n];
        for e in g.edges() {
            out[e.from as usize].insert(e.to, e.weight.clone());
        }
        let mut heap = BinaryHeap::with_capacity(n);
        for (v, nb) in nbrs.iter().enumerate() {
            heap.push(Reverse((nb.len() as u32, v as VertexId)));
        }
        EliminationGraph {
            nbrs,
            out,
            alive: vec![true; n],
            heap,
            stats: ReductionStats::default(),
            supports: track_supports.then(FxHashMap::default),
        }
    }

    /// Number of vertices (alive or not).
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True when every vertex has been eliminated.
    pub fn is_empty(&self) -> bool {
        self.alive.iter().all(|a| !a)
    }

    /// Current undirected degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.nbrs[v as usize].len()
    }

    /// Directed weight `u → v` in the current reduced graph.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<&Plf> {
        self.out[u as usize].get(&v)
    }

    /// Pops the alive vertex with the smallest degree (lazy heap: stale
    /// entries are skipped).
    pub fn pop_min_degree(&mut self) -> Option<VertexId> {
        while let Some(Reverse((deg, v))) = self.heap.pop() {
            if self.alive[v as usize] && self.nbrs[v as usize].len() as u32 == deg {
                return Some(v);
            }
        }
        None
    }

    /// The reduction operator `G' ⊖ v` (Algo. 1). Returns the bag
    /// `X(v)\{v}` (unsorted) together with the preserved weight lists:
    /// `ws[i]` = `w'_{v, bag[i]}` and `wd[i]` = `w'_{bag[i], v}` (Algo. 2
    /// line 7). `v` must be alive.
    #[allow(clippy::type_complexity)]
    pub fn eliminate(
        &mut self,
        v: VertexId,
    ) -> (Vec<VertexId>, Vec<Option<Plf>>, Vec<Option<Plf>>) {
        debug_assert!(self.alive[v as usize], "vertex {v} already eliminated");
        let bag: Vec<VertexId> = self.nbrs[v as usize].iter().copied().collect();
        self.stats.max_bag = self.stats.max_bag.max(bag.len() + 1);

        // Preserve the weight lists of X(v) before rewiring (Algo. 2 line 7).
        let ws: Vec<Option<Plf>> = bag
            .iter()
            .map(|&u| self.out[v as usize].get(&u).cloned())
            .collect();
        let wd: Vec<Option<Plf>> = bag
            .iter()
            .map(|&u| self.out[u as usize].get(&v).cloned())
            .collect();

        // Algo. 1 lines 2-8: connect every ordered neighbour pair through v.
        // The undirected fill-in adjacency is inserted for *every* pair —
        // even when one direction has no weight in a one-way subnetwork —
        // because the elimination clique is what gives the tree decomposition
        // Properties 1–2; weights stay `None` where no path through v exists.
        for (ii, &i) in bag.iter().enumerate() {
            for (jj, &j) in bag.iter().enumerate() {
                if jj <= ii {
                    continue;
                }
                if self.nbrs[i as usize].insert(j) {
                    self.nbrs[j as usize].insert(i);
                    self.stats.fill_edges += 1;
                }
                if let Some(supports) = &mut self.supports {
                    let key = (i.min(j), i.max(j));
                    supports.entry(key).or_default().push(v);
                }
            }
            let w_iv = wd[ii].clone(); // w'_{i,v}
            for (jj, &j) in bag.iter().enumerate() {
                if ii == jj {
                    continue;
                }
                let Some(w_iv) = w_iv.as_ref() else { continue };
                let Some(w_vj) = ws[jj].as_ref() else {
                    continue;
                };
                // Candidate i → j through v, witness v.
                let cand = w_iv.compound(w_vj, v);
                self.stats.compounds += 1;
                match self.out[i as usize].get_mut(&j) {
                    Some(existing) => {
                        *existing = existing.minimum(&cand);
                    }
                    None => {
                        self.out[i as usize].insert(j, cand);
                    }
                }
            }
        }

        // Remove v from the reduced graph.
        self.alive[v as usize] = false;
        for &u in &bag {
            self.nbrs[u as usize].remove(&v);
            self.out[u as usize].remove(&v);
            self.heap
                .push(Reverse((self.nbrs[u as usize].len() as u32, u)));
        }
        self.nbrs[v as usize] = FxHashSet::default();
        self.out[v as usize] = FxHashMap::default();

        (bag, ws, wd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::NO_VIA;

    fn path_graph() -> TdGraph {
        // 0 – 1 – 2 with symmetric constant weights.
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(3.0)).unwrap();
        g.add_edge(1, 0, Plf::constant(3.0)).unwrap();
        g.add_edge(1, 2, Plf::constant(4.0)).unwrap();
        g.add_edge(2, 1, Plf::constant(4.0)).unwrap();
        g
    }

    #[test]
    fn eliminating_a_bridge_vertex_creates_fill_in() {
        let g = path_graph();
        let mut eg = EliminationGraph::new(&g);
        let (bag, ws, wd) = eg.eliminate(1);
        let mut sorted = bag.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2]);
        // Fill-in edge 0 ↔ 2 with compound weight 3 + 4.
        assert_eq!(eg.weight(0, 2).unwrap().eval(0.0), 7.0);
        assert_eq!(eg.weight(2, 0).unwrap().eval(0.0), 7.0);
        assert_eq!(eg.stats.fill_edges, 1);
        // Witness is the eliminated vertex (Algo. 1 stamps the bridge).
        assert_eq!(eg.weight(0, 2).unwrap().eval_with_via(0.0).1, 1);
        // Preserved lists match the original edge weights.
        for (k, &u) in bag.iter().enumerate() {
            let want = if u == 0 { 3.0 } else { 4.0 };
            assert_eq!(ws[k].as_ref().unwrap().eval(0.0), want);
            assert_eq!(wd[k].as_ref().unwrap().eval(0.0), want);
        }
    }

    #[test]
    fn existing_edge_is_min_merged() {
        // Triangle where the direct edge 0→2 (10) loses to the detour via 1 (7).
        let mut g = path_graph();
        g.add_edge(0, 2, Plf::constant(10.0)).unwrap();
        g.add_edge(2, 0, Plf::constant(2.0)).unwrap(); // beats detour
        let mut eg = EliminationGraph::new(&g);
        eg.eliminate(1);
        assert_eq!(eg.weight(0, 2).unwrap().eval(0.0), 7.0);
        assert_eq!(eg.weight(2, 0).unwrap().eval(0.0), 2.0);
        // The direction where the direct edge wins keeps NO_VIA.
        assert_eq!(eg.weight(2, 0).unwrap().eval_with_via(0.0).1, NO_VIA);
        assert_eq!(eg.weight(0, 2).unwrap().eval_with_via(0.0).1, 1);
        assert_eq!(eg.stats.fill_edges, 0);
    }

    #[test]
    fn min_degree_pops_leaves_first() {
        let g = path_graph();
        let mut eg = EliminationGraph::new(&g);
        let first = eg.pop_min_degree().unwrap();
        assert!(
            first == 0 || first == 2,
            "degree-1 endpoints first, got {first}"
        );
    }

    #[test]
    fn degrees_update_after_elimination() {
        let g = path_graph();
        let mut eg = EliminationGraph::new(&g);
        assert_eq!(eg.degree(1), 2);
        eg.eliminate(0);
        assert_eq!(eg.degree(1), 1);
        eg.eliminate(1);
        assert_eq!(eg.degree(2), 0);
        eg.eliminate(2);
        assert!(eg.is_empty());
    }

    #[test]
    fn directed_only_edges_are_respected() {
        // 0→1→2 one-way: eliminating 1 must create only 0→2.
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(3.0)).unwrap();
        g.add_edge(1, 2, Plf::constant(4.0)).unwrap();
        let mut eg = EliminationGraph::new(&g);
        eg.eliminate(1);
        assert!(eg.weight(0, 2).is_some());
        assert!(eg.weight(2, 0).is_none());
    }

    #[test]
    fn time_dependent_fill_in_is_exact() {
        // 0 –w01– 1 –w12– 2; fill-in 0→2 must equal Compound(w01, w12).
        let w01 = Plf::from_pairs(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]).unwrap();
        let w12 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]).unwrap();
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, w01.clone()).unwrap();
        g.add_edge(1, 2, w12.clone()).unwrap();
        let mut eg = EliminationGraph::new(&g);
        eg.eliminate(1);
        let got = eg.weight(0, 2).unwrap();
        let want = w01.compound(&w12, 1);
        assert!(got.approx_eq(&want, 1e-9));
    }
}
