//! The paper's `Compound()` operator (Def. 2).
//!
//! `Compound(f, g)(t) = f(t) + g(t + f(t))`: travel the first leg departing at
//! `t`, then the second leg departing at the arrival time `t + f(t)`.
//!
//! The result is again piecewise linear. Its breakpoints are
//! * every breakpoint of `f`, plus
//! * every departure time `t` at which the arrival function `A(t) = t + f(t)`
//!   crosses a breakpoint of `g` (including on the clamped rays of `f`, where
//!   `A` has slope exactly 1).
//!
//! Between two consecutive such times, `f` is linear and `A(t)` stays inside a
//! single segment of `g`, so the composition is linear — making the operator
//! exact on the representation. Under FIFO (`A` non-decreasing) each breakpoint
//! of `g` contributes at most one pre-image and the result has at most
//! `|f| + |g|` points before simplification; non-FIFO inputs are still handled
//! exactly (segments with decreasing `A` are scanned in reverse).

use crate::approx::EPS_TIME;
use crate::plf::{Plf, Pt, Via};

impl Plf {
    /// `Compound(self, g)` with the bridge vertex `via` stamped on every
    /// segment of the result (Def. 2 records the intermediate vertex).
    ///
    /// Exactness: for every `t ∈ ℝ`,
    /// `result.eval(t) == self.eval(t) + g.eval(t + self.eval(t))`
    /// up to floating-point rounding.
    pub fn compound(&self, g: &Plf, via: Via) -> Plf {
        let mut times = candidate_times(self, g);
        debug_assert!(!times.is_empty());
        // Non-FIFO inputs can emit out-of-order candidates; sort defensively
        // only when needed (the FIFO fast path is already sorted).
        if !times.windows(2).all(|w| w[0] <= w[1]) {
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        }
        let mut pts: Vec<Pt> = Vec::with_capacity(times.len());
        for t in times {
            if let Some(last) = pts.last() {
                if t - last.t <= EPS_TIME {
                    continue;
                }
            }
            let fv = self.eval(t);
            let v = fv + g.eval(t + fv);
            pts.push(Pt::with_via(t, v, via));
        }
        let mut out = Plf::from_raw(pts);
        out.simplify();
        out
    }

    /// Scalar compound: the cost of continuing over `g` after having already
    /// spent `cost_so_far` when departing at `depart`. Returns the total cost
    /// `cost_so_far + g(depart + cost_so_far)`.
    ///
    /// This is the relaxation step of the *travel cost query* (Fig. 8 a/c/e/g):
    /// the same `Compound` but evaluated at a single departure time.
    #[inline]
    pub fn compound_scalar(cost_so_far: f64, depart: f64, g: &Plf) -> f64 {
        cost_so_far + g.eval(depart + cost_so_far)
    }
}

/// Candidate breakpoint times of `Compound(f, g)`: `f`'s breakpoints merged
/// with pre-images of `g`'s breakpoints under `A(t) = t + f(t)`.
fn candidate_times(f: &Plf, g: &Plf) -> Vec<f64> {
    let fp = f.points();
    let gp = g.points();
    let mut times = Vec::with_capacity(fp.len() + gp.len());

    // Left ray of f: A(t) = t + v_first, slope 1, covering (-∞, A(t_first)).
    let a_first = fp[0].t + fp[0].v;
    for s in gp.iter().map(|p| p.t).take_while(|&s| s < a_first) {
        times.push(s - fp[0].v);
    }

    // Interior segments of f.
    for w in fp.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        times.push(p0.t);
        let a0 = p0.t + p0.v;
        let a1 = p1.t + p1.v;
        if a1 > a0 + EPS_TIME {
            // A strictly increasing on this segment: pre-image of each g
            // breakpoint strictly inside (a0, a1).
            let lo = gp.partition_point(|p| p.t <= a0 + EPS_TIME);
            let hi = gp.partition_point(|p| p.t < a1 - EPS_TIME);
            for s in gp[lo..hi].iter().map(|p| p.t) {
                let t = p0.t + (s - a0) * (p1.t - p0.t) / (a1 - a0);
                times.push(t.clamp(p0.t, p1.t));
            }
        } else if a1 < a0 - EPS_TIME {
            // Non-FIFO segment: A decreasing; enumerate in reverse so emitted
            // times still ascend within the segment.
            let lo = gp.partition_point(|p| p.t <= a1 + EPS_TIME);
            let hi = gp.partition_point(|p| p.t < a0 - EPS_TIME);
            for s in gp[lo..hi].iter().rev().map(|p| p.t) {
                let t = p0.t + (s - a0) * (p1.t - p0.t) / (a1 - a0);
                times.push(t.clamp(p0.t, p1.t));
            }
        }
        // Flat arrival (a0 ≈ a1): g∘A constant on the segment, no crossings.
    }
    let last = fp[fp.len() - 1];
    times.push(last.t);

    // Right ray of f: A(t) = t + v_last, slope 1, covering (A(t_last), ∞).
    let a_last = last.t + last.v;
    let lo = gp.partition_point(|p| p.t <= a_last + EPS_TIME);
    for s in gp[lo..].iter().map(|p| p.t) {
        times.push(s - last.v);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plf::NO_VIA;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    /// Brute-force reference: evaluate the mathematical definition.
    fn reference(f: &Plf, g: &Plf, t: f64) -> f64 {
        let fv = f.eval(t);
        fv + g.eval(t + fv)
    }

    fn assert_compound_exact(f: &Plf, g: &Plf) {
        let h = f.compound(g, NO_VIA);
        assert!(h.is_fifo() || !f.is_fifo() || !g.is_fifo());
        // Dense probe over an interval generously covering all breakpoints.
        let lo = f.first().t.min(g.first().t) - 50.0;
        let hi = f.last().t.max(g.last().t) + 50.0;
        let n = 400;
        for i in 0..=n {
            let t = lo + (hi - lo) * i as f64 / n as f64;
            let want = reference(f, g, t);
            let got = h.eval(t);
            assert!(
                (want - got).abs() < 1e-6,
                "compound mismatch at t={t}: want {want}, got {got}\nf={f:?}\ng={g:?}\nh={h:?}"
            );
        }
    }

    #[test]
    fn paper_example_2_2_path_1_4_9() {
        // Fig. 1b: w_{1,4} = {(0,5),(30,15),(60,25)}, w_{4,9} = {(0,5),(60,15)}.
        let w14 = plf(&[(0.0, 5.0), (30.0, 15.0), (60.0, 25.0)]);
        let w49 = plf(&[(0.0, 5.0), (60.0, 15.0)]);
        let h = w14.compound(&w49, 4);
        // Departing v1 at time 0: reach v4 at 5, edge (4,9) costs 5 + 5/6 ≈ 5.833…
        let want0 = 5.0 + w49.eval(5.0);
        assert!((h.eval(0.0) - want0).abs() < 1e-9);
        assert_compound_exact(&w14, &w49);
        // Bridge witness recorded (Def. 2).
        assert!(h.points().iter().all(|p| p.via == 4));
    }

    #[test]
    fn paper_example_2_2_path_1_2_9() {
        let w12 = plf(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]);
        let w29 = plf(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]);
        assert_compound_exact(&w12, &w29);
    }

    #[test]
    fn constant_then_varying() {
        let f = Plf::constant(10.0);
        let g = plf(&[(0.0, 5.0), (30.0, 20.0), (60.0, 5.0)]);
        // h(t) = 10 + g(t + 10): g's shape shifted left by 10.
        let h = f.compound(&g, NO_VIA);
        assert!((h.eval(-10.0) - 15.0).abs() < 1e-9);
        assert!((h.eval(20.0) - 30.0).abs() < 1e-9);
        assert!((h.eval(50.0) - 15.0).abs() < 1e-9);
        assert_compound_exact(&f, &g);
    }

    #[test]
    fn varying_then_constant() {
        let f = plf(&[(0.0, 5.0), (30.0, 15.0)]);
        let g = Plf::constant(7.0);
        let h = f.compound(&g, NO_VIA);
        for t in [-10.0, 0.0, 15.0, 30.0, 100.0] {
            assert!((h.eval(t) - (f.eval(t) + 7.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn both_constant() {
        let h = Plf::constant(3.0).compound(&Plf::constant(4.0), NO_VIA);
        assert_eq!(h.len(), 1);
        assert_eq!(h.eval(123.0), 7.0);
    }

    #[test]
    fn zero_is_left_and_right_unit() {
        let f = plf(&[(0.0, 5.0), (30.0, 15.0), (60.0, 8.0)]);
        let z = Plf::zero();
        assert!(z.compound(&f, NO_VIA).approx_eq(&f, 1e-9));
        assert!(f.compound(&z, NO_VIA).approx_eq(&f, 1e-9));
    }

    #[test]
    fn fifo_slope_minus_one_flat_arrival() {
        // f has slope exactly -1: arrival is flat, every departure in the
        // segment arrives simultaneously.
        let f = plf(&[(0.0, 20.0), (10.0, 10.0), (20.0, 10.0)]);
        assert!(f.is_fifo());
        let g = plf(&[(0.0, 1.0), (15.0, 4.0), (40.0, 2.0)]);
        assert_compound_exact(&f, &g);
    }

    #[test]
    fn non_fifo_input_still_exact() {
        let f = plf(&[(0.0, 50.0), (10.0, 10.0)]); // slope -4 — overtaking
        assert!(!f.is_fifo());
        let g = plf(&[(0.0, 1.0), (20.0, 9.0), (45.0, 3.0)]);
        assert_compound_exact(&f, &g);
    }

    #[test]
    fn associativity_on_fifo_functions() {
        let f = plf(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]);
        let g = plf(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]);
        let h = plf(&[(0.0, 8.0), (40.0, 2.0), (80.0, 12.0)]);
        let left = f.compound(&g, NO_VIA).compound(&h, NO_VIA);
        let right = f.compound(&g.compound(&h, NO_VIA), NO_VIA);
        assert!(
            left.approx_eq(&right, 1e-6),
            "left={left:?}\nright={right:?}"
        );
    }

    #[test]
    fn compound_scalar_matches_function_compound() {
        let f = plf(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]);
        let g = plf(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]);
        let h = f.compound(&g, NO_VIA);
        for t in [0.0, 7.5, 20.0, 33.3, 59.0, 61.0] {
            let scalar = Plf::compound_scalar(f.eval(t), t, &g);
            assert!((h.eval(t) - scalar).abs() < 1e-9);
        }
    }

    #[test]
    fn result_size_is_linear_in_inputs() {
        let f: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 10.0, 5.0 + (i % 7) as f64))
            .collect();
        let g: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64 * 9.0, 3.0 + (i % 5) as f64))
            .collect();
        let f = plf(&f);
        let g = plf(&g);
        let h = f.compound(&g, NO_VIA);
        assert!(h.len() <= f.len() + g.len() + 2, "got {}", h.len());
        assert_compound_exact(&f, &g);
    }
}
