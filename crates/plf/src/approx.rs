//! Epsilon-tolerant floating-point comparisons.
//!
//! All geometry in this crate (segment intersections, collinearity tests,
//! pre-images under arrival functions) runs on `f64`. A single, shared tolerance
//! discipline keeps the operators closed: two breakpoints closer than
//! [`EPS_TIME`] are considered the same instant, and two costs within
//! [`EPS_COST`] are considered equal.

/// Tolerance for comparing time coordinates (seconds).
pub const EPS_TIME: f64 = 1e-7;

/// Tolerance for comparing cost values (seconds of travel time).
pub const EPS_COST: f64 = 1e-7;

/// `a == b` within `eps`.
#[inline]
pub fn feq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// `a < b` by more than `eps`.
#[inline]
pub fn flt(a: f64, b: f64, eps: f64) -> bool {
    a < b - eps
}

/// `a ≤ b` within `eps`.
#[inline]
pub fn fle(a: f64, b: f64, eps: f64) -> bool {
    a <= b + eps
}

/// Linear interpolation of `(x0, y0) – (x1, y1)` at `x`.
///
/// Degenerate segments (`x1 ≈ x0`) return `y0`; callers never create them, but
/// the guard keeps intersection math total.
#[inline]
pub fn lerp(x0: f64, y0: f64, x1: f64, y1: f64, x: f64) -> f64 {
    let dx = x1 - x0;
    if dx.abs() <= f64::EPSILON {
        return y0;
    }
    y0 + (x - x0) * (y1 - y0) / dx
}

/// Value of a clamped PLF on the segment whose breakpoint `(t0, v0)` serves
/// `t` (the largest breakpoint with time ≤ `t`).
///
/// `next` is the following breakpoint, or `None` when `(t0, v0)` is the last
/// one — the **right ray**, which clamps to `v0` per Eq. 1. Every eval entry
/// point (`Plf::eval`, `PlfSlice::eval`, the `_with_via`/`_with_hint`
/// variants, and the batch kernels in [`crate::batch`]) routes its
/// past-last-breakpoint clamp through this one helper, so the extrapolation
/// semantics cannot drift apart between scalar and batched evaluation.
#[inline]
pub fn clamped_segment_value(t0: f64, v0: f64, next: Option<(f64, f64)>, t: f64) -> f64 {
    match next {
        None => v0,
        Some((t1, v1)) => lerp(t0, v0, t1, v1, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feq_within_eps() {
        assert!(feq(1.0, 1.0 + 1e-9, 1e-7));
        assert!(!feq(1.0, 1.1, 1e-7));
    }

    #[test]
    fn flt_is_strict() {
        assert!(flt(1.0, 2.0, 1e-7));
        assert!(!flt(1.0, 1.0 + 1e-9, 1e-7));
        assert!(!flt(2.0, 1.0, 1e-7));
    }

    #[test]
    fn fle_admits_equality() {
        assert!(fle(1.0, 1.0, 1e-7));
        assert!(fle(1.0, 1.0 + 1e-9, 1e-7));
        assert!(fle(1.0 + 1e-9, 1.0, 1e-7));
        assert!(!fle(1.1, 1.0, 1e-7));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(0.0, 0.0, 10.0, 20.0, 0.0), 0.0);
        assert_eq!(lerp(0.0, 0.0, 10.0, 20.0, 10.0), 20.0);
        assert_eq!(lerp(0.0, 0.0, 10.0, 20.0, 5.0), 10.0);
    }

    #[test]
    fn lerp_degenerate_segment() {
        assert_eq!(lerp(3.0, 7.0, 3.0, 9.0, 3.0), 7.0);
    }

    #[test]
    fn lerp_extrapolates_linearly() {
        // Callers clamp before calling; lerp itself is a straight line.
        assert_eq!(lerp(0.0, 0.0, 1.0, 2.0, 2.0), 4.0);
    }
}
