// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Batched PLF evaluation kernels over the SoA [`PlfArena`] layout.
//!
//! Two shapes cover every hot sweep in the suite:
//!
//! * [`eval_times_into`] — **one function, many departure times**: the
//!   customization/profile shape. When the times are sorted ascending the
//!   kernel makes a single hint-chained forward pass over the function's
//!   `times`/`values` arrays: it walks the segment cursor forward exactly as
//!   [`PlfSlice::eval_with_hint`] does (8-step walk, then gallop), finds the
//!   *run* of query times served by the current segment, and interpolates the
//!   whole run with explicit lane-width loops (`[f64; 8]` chunks) that
//!   auto-vectorize. Unsorted inputs fall back to per-element
//!   [`PlfSlice::eval`] — same bits, no sorting requirement, just slower.
//! * [`eval_ids_at`] — **many functions, one departure time**: the settled-
//!   node relaxation shape (all out-edge weights of one vertex at its arrival
//!   time) and the border-matrix row sweep. Ids equal to [`NO_PLF`] produce
//!   `f64::INFINITY`, so gap-carrying id tables can be swept directly.
//!
//! **Contract:** every value written is **bit-identical** to the scalar
//! `eval` at the same time — the kernels use the same segment-location rule
//! (largest breakpoint with time ≤ `t`), the same interpolation expression
//! (operation-for-operation the [`crate::approx::lerp`] body, including the
//! degenerate-segment guard), and the same shared right-ray clamp
//! ([`crate::approx::clamped_segment_value`]). Proptests in
//! `tests/proptest_batch.rs` and the interleaved A/B bench
//! (`benches/plf_batch.rs`) pin this down. Neither kernel allocates; callers
//! own the output buffers.

use crate::approx::clamped_segment_value;
use crate::arena::{PlfArena, PlfId, PlfSlice, NO_PLF};

/// Lane width of the chunked interpolation loops. Eight `f64`s span two
/// AVX2 registers (or one AVX-512 register); the compiler unrolls the fixed
/// `0..LANES` inner loop into straight-line vector code.
const LANES: usize = 8;

/// Evaluates one function at every time in `ts`, writing `out[j] =
/// f.eval(ts[j])` bit-for-bit. `ts` and `out` must have equal lengths.
///
/// Sorted-ascending `ts` (ties allowed) takes the one-pass hint-chained fast
/// path; anything else is detected by a linear scan and falls back to
/// per-element binary-search `eval`. Performs no heap allocation either way.
// td-lint: hot
pub fn eval_times_into(f: PlfSlice<'_>, ts: &[f64], out: &mut [f64]) {
    debug_assert_eq!(ts.len(), out.len());
    // td-lint: allow(hot-panic) contract check on buffer lengths, not a value panic path
    assert!(ts.len() == out.len(), "ts/out length mismatch");
    if !is_sorted_ascending(ts) {
        // Out-of-order fallback: same bits via the scalar entry point.
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = f.eval(t);
        }
        return;
    }
    let times = f.times();
    let values = f.values();
    let n = times.len();
    debug_assert!(n > 0, "a PLF slice always has at least one point");

    // Left ray: every query before the first breakpoint clamps to values[0].
    // `partition_point` is exact here because ts is sorted.
    let mut k = ts.partition_point(|&t| t < times[0]);
    // debug_assert-documented indexing: k ≤ ts.len() == out.len(), 0 < n.
    debug_assert!(k <= out.len() && !values.is_empty());
    for o in &mut out[..k] {
        *o = values[0];
    }

    let mut seg = 0usize;
    while k < ts.len() {
        let t = ts[k];
        // Advance the segment cursor to the largest i with times[i] ≤ t —
        // the same walk-then-gallop as `eval_with_hint`.
        let mut steps = 0usize;
        while seg + 1 < n && times[seg + 1] <= t {
            seg += 1;
            steps += 1;
            if steps == 8 {
                seg += times[seg + 1..].partition_point(|&x| x <= t);
                break;
            }
        }
        debug_assert!(seg < n);
        if seg + 1 == n {
            // Right ray: this and (by sortedness) every remaining query
            // clamps through the shared helper.
            for (o, &tt) in out[k..].iter_mut().zip(&ts[k..]) {
                *o = clamped_segment_value(times[seg], values[seg], None, tt);
            }
            return;
        }
        // The run of queries served by this segment: ts[k..end] all lie in
        // [times[seg], times[seg+1]). Exact because ts is sorted.
        let t0 = times[seg];
        let v0 = values[seg];
        let t1 = times[seg + 1];
        let v1 = values[seg + 1];
        let end = k + ts[k..].partition_point(|&x| x < t1);
        debug_assert!(k < end && end <= ts.len());
        let run_ts = &ts[k..end];
        let run_out = &mut out[k..end];
        let dx = t1 - t0;
        if dx.abs() <= f64::EPSILON {
            // Degenerate-segment guard of `lerp`, hoisted out of the run.
            for o in run_out.iter_mut() {
                *o = v0;
            }
        } else {
            // Chunked lane loop. `v0 + (t - t0) * dv / dx` is
            // operation-for-operation the `lerp` tail, so each lane's result
            // is bit-identical to the scalar path.
            let dv = v1 - v0;
            let mut chunks_out = run_out.chunks_exact_mut(LANES);
            let mut chunks_ts = run_ts.chunks_exact(LANES);
            for (co, ct) in (&mut chunks_out).zip(&mut chunks_ts) {
                let mut acc = [0.0f64; LANES];
                for l in 0..LANES {
                    // debug_assert-documented indexing: chunks_exact
                    // guarantees both chunks have exactly LANES elements.
                    debug_assert!(l < co.len() && l < ct.len());
                    acc[l] = v0 + (ct[l] - t0) * dv / dx;
                }
                co.copy_from_slice(&acc);
            }
            for (o, &tt) in chunks_out
                .into_remainder()
                .iter_mut()
                .zip(chunks_ts.remainder())
            {
                *o = v0 + (tt - t0) * dv / dx;
            }
        }
        k = end;
    }
}

/// Evaluates many functions of one `arena` at a single departure time `t` —
/// the settled-node relaxation shape. Writes `out[j] =
/// arena.slice(ids[j]).eval(t)` bit-for-bit, or `f64::INFINITY` where
/// `ids[j] == NO_PLF` (absent table entries evaluate to "unreachable").
///
/// `ids` and `out` must have equal lengths. Performs no heap allocation.
// td-lint: hot
pub fn eval_ids_at(arena: &PlfArena, ids: &[PlfId], t: f64, out: &mut [f64]) {
    debug_assert_eq!(ids.len(), out.len());
    // td-lint: allow(hot-panic) contract check on buffer lengths, not a value panic path
    assert!(ids.len() == out.len(), "ids/out length mismatch");
    for (o, &id) in out.iter_mut().zip(ids) {
        *o = if id == NO_PLF {
            f64::INFINITY
        } else {
            arena.slice(id).eval(t)
        };
    }
}

/// True iff `ts` is sorted ascending (ties allowed). NaNs compare false and
/// force the fallback path, matching scalar `eval`'s NaN behaviour.
#[inline]
// td-lint: hot
fn is_sorted_ascending(ts: &[f64]) -> bool {
    ts.windows(2).all(|w| {
        // debug_assert-documented indexing: windows(2) yields 2-element slices.
        debug_assert!(w.len() == 2);
        w[0] <= w[1]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plf::Plf;

    fn arena_with(pairs: &[&[(f64, f64)]]) -> PlfArena {
        let mut arena = PlfArena::new();
        for p in pairs {
            arena.push(&Plf::from_pairs(p).unwrap());
        }
        arena
    }

    #[test]
    fn sorted_sweep_is_bit_identical_to_eval() {
        let arena = arena_with(&[&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]]);
        let f = arena.slice(0);
        let ts: Vec<f64> = (-10..80).map(|i| i as f64 * 1.3).collect();
        let mut out = vec![0.0; ts.len()];
        eval_times_into(f, &ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.eval(t).to_bits(), "t={t}");
        }
    }

    #[test]
    fn unsorted_fallback_is_bit_identical_to_eval() {
        let arena = arena_with(&[&[(0.0, 5.0), (10.0, 7.0), (20.0, 3.0)]]);
        let f = arena.slice(0);
        let ts = [25.0, 5.0, 19.9, -1.0, 10.0, 3.0];
        let mut out = [0.0; 6];
        eval_times_into(f, &ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.eval(t).to_bits(), "t={t}");
        }
    }

    #[test]
    fn long_runs_cross_the_lane_boundary() {
        // 23 queries inside one segment: 2 full lanes + 7 remainder.
        let arena = arena_with(&[&[(0.0, 1.0), (100.0, 3.0)]]);
        let f = arena.slice(0);
        let ts: Vec<f64> = (0..23).map(|i| i as f64 * 4.0 + 0.5).collect();
        let mut out = vec![0.0; ts.len()];
        eval_times_into(f, &ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.eval(t).to_bits(), "t={t}");
        }
    }

    #[test]
    fn all_left_ray_and_all_right_ray() {
        let arena = arena_with(&[&[(10.0, 3.0), (20.0, 7.0)]]);
        let f = arena.slice(0);
        let left = [-5.0, 0.0, 9.9];
        let right = [20.0, 21.0, 1e12];
        let mut out = [0.0; 3];
        eval_times_into(f, &left, &mut out);
        assert!(out.iter().all(|&v| v == 3.0));
        eval_times_into(f, &right, &mut out);
        assert!(out.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn single_point_function_clamps_everywhere() {
        let arena = arena_with(&[&[(5.0, 42.0)]]);
        let f = arena.slice(0);
        let ts = [-1e9, 0.0, 5.0, 6.0, 1e9];
        let mut out = [0.0; 5];
        eval_times_into(f, &ts, &mut out);
        assert!(out.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn breakpoint_times_hit_exactly() {
        let pts: Vec<(f64, f64)> = (0..40).map(|i| (i as f64, (i % 7) as f64)).collect();
        let arena = arena_with(&[&pts]);
        let f = arena.slice(0);
        let ts: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut out = vec![0.0; ts.len()];
        eval_times_into(f, &ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            assert_eq!(got.to_bits(), f.eval(t).to_bits(), "t={t}");
        }
    }

    #[test]
    fn eval_ids_at_matches_per_slice_eval() {
        let arena = arena_with(&[
            &[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)],
            &[(5.0, 3.0)],
            &[(0.0, 5.0), (50.0, 2.0), (100.0, 9.0)],
        ]);
        let ids = [2, NO_PLF, 0, 1];
        let mut out = [0.0; 4];
        for t in [-5.0, 0.0, 30.0, 200.0] {
            eval_ids_at(&arena, &ids, t, &mut out);
            for (&id, &got) in ids.iter().zip(&out) {
                if id == NO_PLF {
                    assert!(got.is_infinite());
                } else {
                    assert_eq!(got.to_bits(), arena.slice(id).eval(t).to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_query_vector_is_a_noop() {
        let arena = arena_with(&[&[(0.0, 1.0)]]);
        eval_times_into(arena.slice(0), &[], &mut []);
        eval_ids_at(&arena, &[], 0.0, &mut []);
    }
}
