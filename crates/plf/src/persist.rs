//! Snapshot persistence ([`td_store::Persist`]) for [`Plf`] and
//! [`PlfArena`], plus the shared PLF-list encoding used by every index
//! crate for `Vec<Option<Plf>>`-shaped label tables.
//!
//! A PLF is stored SoA — `times`/`values`/`vias` — exactly as the frozen
//! arena lays it out, so serialization is a linear copy and reading
//! revalidates through [`Plf::new`] (non-empty, strictly increasing, finite,
//! non-negative), turning any corrupt function into a typed
//! [`StoreError::Invalid`] rather than a broken invariant at query time.

use crate::arena::PlfArena;
use crate::plf::{Plf, Pt, Via};
use std::io::{Read, Write};
use td_store::section::{
    read_f64s, read_u32s, tag4, write_f64_iter, write_f64s, write_u32_iter, write_u32s,
};
use td_store::{Persist, StoreError};

const TAG_F_TIMES: u32 = tag4(*b"Ftim");
const TAG_F_VALUES: u32 = tag4(*b"Fval");
const TAG_F_VIAS: u32 = tag4(*b"Fvia");

const TAG_L_COUNTS: u32 = tag4(*b"Lcnt");
const TAG_L_TIMES: u32 = tag4(*b"Ltim");
const TAG_L_VALUES: u32 = tag4(*b"Lval");
const TAG_L_VIAS: u32 = tag4(*b"Lvia");

const TAG_A_FIRST: u32 = tag4(*b"Afst");
const TAG_A_TIMES: u32 = tag4(*b"Atim");
const TAG_A_VALUES: u32 = tag4(*b"Aval");
const TAG_A_VIAS: u32 = tag4(*b"Avia");

/// Assembles one validated [`Plf`] from parallel SoA slices.
fn plf_from_soa(times: &[f64], values: &[f64], vias: &[Via]) -> Result<Plf, StoreError> {
    let pts: Vec<Pt> = times
        .iter()
        .zip(values)
        .zip(vias)
        .map(|((&t, &v), &via)| Pt::with_via(t, v, via))
        .collect();
    Plf::new(pts).map_err(|e| StoreError::invalid(format!("invalid PLF: {e}")))
}

impl Persist for Plf {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let pts = self.points();
        let times: Vec<f64> = pts.iter().map(|p| p.t).collect();
        let values: Vec<f64> = pts.iter().map(|p| p.v).collect();
        let vias: Vec<Via> = pts.iter().map(|p| p.via).collect();
        write_f64s(w, TAG_F_TIMES, &times)?;
        write_f64s(w, TAG_F_VALUES, &values)?;
        write_u32s(w, TAG_F_VIAS, &vias)
    }

    fn read_from<R: Read>(r: &mut R) -> Result<Plf, StoreError> {
        let times = read_f64s(r, TAG_F_TIMES)?;
        let values = read_f64s(r, TAG_F_VALUES)?;
        let vias = read_u32s(r, TAG_F_VIAS)?;
        if times.len() != values.len() || times.len() != vias.len() {
            return Err(StoreError::invalid("PLF SoA arrays disagree in length"));
        }
        plf_from_soa(&times, &values, &vias)
    }
}

/// Writes a list of optional PLFs as four sections: per-slot point counts
/// (`0` = absent) plus the concatenated SoA point arrays. This is the
/// encoding every label table (`Ws`/`Wd` lists, shortcut pairs, G-tree
/// matrices) uses. The point sections are **streamed** straight from the
/// (re-iterated) functions — an index holds millions of points, and
/// materialising flat copies before writing would double the save's peak
/// memory; only the small per-slot count array is collected.
pub fn write_plf_list<'a, W, I>(w: &mut W, items: I) -> Result<(), StoreError>
where
    W: Write,
    I: Iterator<Item = Option<&'a Plf>> + Clone,
{
    let mut counts: Vec<u32> = Vec::new();
    let mut total = 0u64;
    for item in items.clone() {
        let c = item.map_or(0, |f| f.len() as u32);
        counts.push(c);
        total += u64::from(c);
    }
    write_u32s(w, TAG_L_COUNTS, &counts)?;
    let points = || items.clone().flatten().flat_map(|f| f.points().iter());
    write_f64_iter(w, TAG_L_TIMES, total, points().map(|p| p.t))?;
    write_f64_iter(w, TAG_L_VALUES, total, points().map(|p| p.v))?;
    write_u32_iter(w, TAG_L_VIAS, total, points().map(|p| p.via))
}

/// Reads a list written by [`write_plf_list`], enforcing exactly the
/// [`Plf::new`] invariants (non-empty, strictly increasing beyond
/// `EPS_TIME`, finite, non-negative).
///
/// This is the hottest loop of a snapshot load — an index holds millions of
/// interpolation points — so points are decoded straight from the raw
/// little-endian section payloads into their final `Pt` vectors, validating
/// inline: no intermediate `Vec<f64>` materialisation and no second
/// validation pass.
pub fn read_plf_list<R: Read>(r: &mut R) -> Result<Vec<Option<Plf>>, StoreError> {
    use crate::approx::EPS_TIME;
    use td_store::section::{elem, read_raw};

    let counts = read_u32s(r, TAG_L_COUNTS)?;
    let times = read_raw(r, TAG_L_TIMES, elem::F64)?;
    let values = read_raw(r, TAG_L_VALUES, elem::F64)?;
    let vias = read_raw(r, TAG_L_VIAS, elem::U32)?;
    let points = times.len() / 8;
    if values.len() != times.len() || vias.len() != points * 4 {
        return Err(StoreError::invalid(
            "PLF list SoA arrays disagree in length",
        ));
    }
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if total != points as u64 {
        return Err(StoreError::invalid(format!(
            "PLF list counts sum to {total} but {points} points are stored"
        )));
    }
    let le8 = |raw: &[u8], i: usize| {
        f64::from_le_bytes(raw[8 * i..8 * i + 8].try_into().expect("8-byte chunk"))
    };
    let mut out = Vec::with_capacity(counts.len());
    let mut at = 0usize;
    for &c in &counts {
        if c == 0 {
            out.push(None);
            continue;
        }
        let c = c as usize;
        let mut pts = Vec::with_capacity(c);
        let mut prev = f64::NEG_INFINITY;
        for i in at..at + c {
            let t = le8(&times, i);
            let v = le8(&values, i);
            let via = Via::from_le_bytes(vias[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
            if !t.is_finite() || !v.is_finite() {
                return Err(StoreError::invalid("PLF point is not finite"));
            }
            if v < 0.0 {
                return Err(StoreError::invalid("PLF point has a negative cost"));
            }
            if i > at && t - prev <= EPS_TIME {
                return Err(StoreError::invalid("PLF times not strictly increasing"));
            }
            prev = t;
            pts.push(Pt::with_via(t, v, via));
        }
        // Exactly `Plf::new`'s invariants were just enforced inline.
        out.push(Some(Plf::from_raw(pts)));
        at += c;
    }
    Ok(out)
}

impl Persist for PlfArena {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        let (times, values, vias, first_pt) = self.raw_parts();
        write_u32s(w, TAG_A_FIRST, first_pt)?;
        write_f64s(w, TAG_A_TIMES, times)?;
        write_f64s(w, TAG_A_VALUES, values)?;
        write_u32s(w, TAG_A_VIAS, vias)
        // The per-function min/max bounds are NOT persisted: query pruning
        // trusts them, so a CRC-valid file carrying doctored bounds would
        // load into a silently wrong index. They are recomputed on read
        // with the exact fold `push` uses, bit-identically.
    }

    fn read_from<R: Read>(r: &mut R) -> Result<PlfArena, StoreError> {
        let first_pt = read_u32s(r, TAG_A_FIRST)?;
        let times = read_f64s(r, TAG_A_TIMES)?;
        let values = read_f64s(r, TAG_A_VALUES)?;
        let vias = read_u32s(r, TAG_A_VIAS)?;

        // Offset invariants: `[0]`-rooted, strictly increasing (every
        // function has ≥ 1 point), last offset covering the point arrays.
        if first_pt.first() != Some(&0) {
            return Err(StoreError::invalid("arena offsets must start at 0"));
        }
        if first_pt.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::invalid(
                "arena offsets must be strictly increasing",
            ));
        }
        if *first_pt.last().expect("non-empty checked above") as usize != times.len() {
            return Err(StoreError::invalid(
                "arena offsets do not cover the point arrays",
            ));
        }
        if times.len() != values.len() || times.len() != vias.len() {
            return Err(StoreError::invalid("arena SoA arrays disagree in length"));
        }
        let functions = first_pt.len() - 1;
        // Per-function invariants (what every push validated): finite,
        // non-negative, strictly increasing times within a function — and
        // the pruning bounds, recomputed with `push`'s exact fold.
        let mut min_cost = Vec::with_capacity(functions);
        let mut max_cost = Vec::with_capacity(functions);
        for f in 0..functions {
            let (lo, hi) = (first_pt[f] as usize, first_pt[f + 1] as usize);
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for i in lo..hi {
                if !times[i].is_finite() || !values[i].is_finite() || values[i] < 0.0 {
                    return Err(StoreError::invalid(format!(
                        "arena function {f} has a non-finite or negative point"
                    )));
                }
                if i > lo && times[i] <= times[i - 1] {
                    return Err(StoreError::invalid(format!(
                        "arena function {f} has non-increasing times"
                    )));
                }
                min = min.min(values[i]);
                max = max.max(values[i]);
            }
            min_cost.push(min);
            max_cost.push(max);
        }
        Ok(PlfArena::from_raw_parts(
            times, values, vias, first_pt, min_cost, max_cost,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist>(v: &T) -> T {
        let mut buf = Vec::new();
        v.write_into(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = T::read_from(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after read");
        back
    }

    #[test]
    fn plf_round_trips_exactly() {
        let f = Plf::new(vec![
            Pt::with_via(0.0, 10.0, 4),
            Pt::with_via(20.5, 0.0, crate::plf::NO_VIA),
            Pt::with_via(60.0, 15.25, 2),
        ])
        .unwrap();
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn arena_round_trips_exactly() {
        let mut arena = PlfArena::new();
        arena.push(&Plf::from_pairs(&[(0.0, 1.0), (10.0, 2.0)]).unwrap());
        arena.push(&Plf::constant(7.5));
        let back = roundtrip(&arena);
        assert_eq!(back.len(), arena.len());
        assert_eq!(back.total_points(), arena.total_points());
        for id in 0..arena.len() as u32 {
            assert_eq!(back.min_cost(id), arena.min_cost(id));
            assert_eq!(back.max_cost(id), arena.max_cost(id));
            for t in [-1.0, 0.0, 5.0, 10.0, 99.0] {
                assert_eq!(
                    back.slice(id).eval(t).to_bits(),
                    arena.slice(id).eval(t).to_bits()
                );
            }
        }
    }

    #[test]
    fn plf_list_round_trips_with_gaps() {
        let a = Plf::from_pairs(&[(0.0, 1.0), (5.0, 3.0)]).unwrap();
        let b = Plf::constant(9.0);
        let items = [Some(&a), None, Some(&b), None];
        let mut buf = Vec::new();
        write_plf_list(&mut buf, items.iter().copied()).unwrap();
        let back = read_plf_list(&mut buf.as_slice()).unwrap();
        assert_eq!(back, vec![Some(a), None, Some(b), None]);
    }

    #[test]
    fn corrupt_plf_is_rejected_not_panicked() {
        let f = Plf::from_pairs(&[(0.0, 1.0), (5.0, 3.0)]).unwrap();
        let mut buf = Vec::new();
        f.write_into(&mut buf).unwrap();
        // Swap the two times (payload of the first section) so they are no
        // longer increasing, and fix up nothing else: the CRC catches it.
        let r = Plf::read_from(
            &mut {
                let mut bad = buf.clone();
                bad[16] ^= 0x01;
                bad
            }
            .as_slice(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn arena_with_bad_offsets_is_invalid() {
        let mut arena = PlfArena::new();
        arena.push(&Plf::constant(1.0));
        let mut buf = Vec::new();
        arena.write_into(&mut buf).unwrap();
        // Rewrite the offsets section `[0, 1]` as `[1, 1]` with a valid CRC
        // by re-encoding the whole stream by hand.
        let mut forged = Vec::new();
        write_u32s(&mut forged, TAG_A_FIRST, &[1, 1]).unwrap();
        forged.extend_from_slice(&buf[16 + 8 + 4..]); // skip original first section
        assert!(matches!(
            PlfArena::read_from(&mut forged.as_slice()),
            Err(StoreError::Invalid(_))
        ));
    }
}
