//! Arrival-function utilities.
//!
//! The arrival function of a travel-cost function `w` is `A(t) = t + w(t)`.
//! Under FIFO it is non-decreasing; several algorithms reason about it
//! directly (profile search dominance, `compound` pre-images, upper-bound
//! pruning in Algo. 6).

use crate::plf::{Plf, Pt};

impl Plf {
    /// The arrival function `A(t) = t + w(t)` as a PLF over the same
    /// breakpoints. Note: `A` is *not* a travel-cost function (its values are
    /// absolute times), so it bypasses the non-negativity invariant by
    /// shifting — callers only evaluate it.
    ///
    /// Only meaningful inside the representation's breakpoint span; on the
    /// clamped rays the true arrival has slope 1 while a PLF clamps, so use
    /// [`Plf::arrival`] for pointwise values instead.
    pub fn arrival_breakpoints(&self) -> Vec<(f64, f64)> {
        self.points().iter().map(|p| (p.t, p.t + p.v)).collect()
    }

    /// Earliest departure time `t ≥ from` whose arrival `t + w(t)` is at most
    /// `deadline`, or `None` if no such departure exists at or after `from`
    /// (checked on breakpoints and rays; requires FIFO for correctness).
    ///
    /// Used by the departure-time-optimisation example and by tests.
    pub fn latest_departure_before(&self, deadline: f64, from: f64) -> Option<f64> {
        // Under FIFO, arrival is non-decreasing, so we binary-search the
        // largest t with arrival(t) ≤ deadline and return it if ≥ from.
        let mut lo = from;
        if self.arrival(lo) > deadline {
            return None;
        }
        // Exponential search for an upper bracket.
        let mut step = 1.0;
        let mut hi = from + step;
        let span_end = self.last().t + (deadline - self.last().v).max(0.0) + 1.0;
        while self.arrival(hi) <= deadline && hi < span_end {
            step *= 2.0;
            hi = from + step;
        }
        if self.arrival(hi) <= deadline {
            return Some(hi);
        }
        for _ in 0..128 {
            let mid = 0.5 * (lo + hi);
            if self.arrival(mid) <= deadline {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Shifts all values by a constant (clamped at 0 to keep the invariant).
    pub fn add_constant(&self, c: f64) -> Plf {
        Plf::from_raw(
            self.points()
                .iter()
                .map(|p| Pt::with_via(p.t, (p.v + c).max(0.0), p.via))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    #[test]
    fn arrival_breakpoints_shift() {
        let f = plf(&[(0.0, 10.0), (20.0, 10.0)]);
        assert_eq!(f.arrival_breakpoints(), vec![(0.0, 10.0), (20.0, 30.0)]);
    }

    #[test]
    fn latest_departure_simple() {
        let f = plf(&[(0.0, 10.0), (100.0, 10.0)]); // constant 10
        let d = f.latest_departure_before(50.0, 0.0).unwrap();
        assert!((d - 40.0).abs() < 1e-6, "d={d}");
    }

    #[test]
    fn latest_departure_none_when_too_late() {
        let f = plf(&[(0.0, 10.0), (100.0, 10.0)]);
        assert!(f.latest_departure_before(5.0, 0.0).is_none());
    }

    #[test]
    fn latest_departure_respects_from() {
        let f = Plf::constant(10.0);
        assert!(f.latest_departure_before(25.0, 20.0).is_none());
        let d = f.latest_departure_before(45.0, 20.0).unwrap();
        assert!((d - 35.0).abs() < 1e-6);
    }

    #[test]
    fn add_constant_lifts_values() {
        let f = plf(&[(0.0, 5.0), (10.0, 7.0)]);
        let g = f.add_constant(3.0);
        assert_eq!(g.eval(0.0), 8.0);
        assert_eq!(g.eval(10.0), 10.0);
        let h = f.add_constant(-100.0); // clamped at 0
        assert_eq!(h.eval(0.0), 0.0);
    }
}
