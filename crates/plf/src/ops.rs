//! Convenience combinators over the core operators.

use crate::plf::{Plf, Via, NO_VIA};

/// Minimum of an optional accumulator and a new function — the
/// `cost[u] = min{cost[u], Compound(…)}` pattern of Algo. 3 lines 6-9 and
/// Algo. 6 lines 16-19, with `None` playing the role of `+∞`.
pub fn min_into(acc: &mut Option<Plf>, f: Plf) {
    match acc {
        None => *acc = Some(f),
        Some(a) => *a = a.minimum(&f),
    }
}

/// Scalar version of [`min_into`]: `acc = min(acc, v)` with `None` as `+∞`.
pub fn min_scalar_into(acc: &mut Option<f64>, v: f64) {
    match acc {
        None => *acc = Some(v),
        Some(a) => {
            if v < *a {
                *a = v;
            }
        }
    }
}

/// Compounds a chain of functions left to right:
/// `fs\[0\] ∘ fs\[1\] ∘ … ∘ fs[k-1]` (travel them in order). Bridges are not
/// meaningful for an anonymous chain, so witnesses are cleared.
pub fn compound_chain(fs: &[&Plf]) -> Option<Plf> {
    let mut iter = fs.iter();
    let first = (*iter.next()?).clone();
    Some(iter.fold(first, |acc, f| acc.compound(f, NO_VIA)))
}

/// `Compound` of two *optional* functions: `None` (unreachable) absorbs.
pub fn compound_opt(f: &Option<Plf>, g: &Option<Plf>, via: Via) -> Option<Plf> {
    match (f, g) {
        (Some(f), Some(g)) => Some(f.compound(g, via)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    #[test]
    fn min_into_from_infinity() {
        let mut acc = None;
        min_into(&mut acc, Plf::constant(5.0));
        assert_eq!(acc.as_ref().unwrap().eval(0.0), 5.0);
        min_into(&mut acc, Plf::constant(3.0));
        assert_eq!(acc.as_ref().unwrap().eval(0.0), 3.0);
        min_into(&mut acc, Plf::constant(9.0));
        assert_eq!(acc.as_ref().unwrap().eval(0.0), 3.0);
    }

    #[test]
    fn min_scalar_into_behaviour() {
        let mut acc = None;
        min_scalar_into(&mut acc, 5.0);
        min_scalar_into(&mut acc, 7.0);
        min_scalar_into(&mut acc, 2.0);
        assert_eq!(acc, Some(2.0));
    }

    #[test]
    fn compound_chain_orders_left_to_right() {
        let a = plf(&[(0.0, 10.0), (100.0, 20.0)]);
        let b = Plf::constant(5.0);
        let c = Plf::constant(2.0);
        let chain = compound_chain(&[&a, &b, &c]).unwrap();
        for t in [0.0, 50.0, 100.0] {
            let want = a.eval(t) + 5.0 + 2.0;
            assert!((chain.eval(t) - want).abs() < 1e-9);
        }
        assert!(compound_chain(&[]).is_none());
    }

    #[test]
    fn compound_opt_absorbs_none() {
        let f = Some(Plf::constant(1.0));
        assert!(compound_opt(&f, &None, NO_VIA).is_none());
        assert!(compound_opt(&None, &f, NO_VIA).is_none());
        assert!(compound_opt(&f, &f, NO_VIA).is_some());
    }
}
