#![forbid(unsafe_code)]
//! # td-plf — piecewise-linear travel-cost functions
//!
//! This crate implements the function algebra that underpins every algorithm in
//! *"Querying Shortest Path on Large Time-Dependent Road Networks with Shortcuts"*
//! (Gong, Zeng, Chen — ICDE 2024, arXiv:2303.03720).
//!
//! A travel-cost function `w(t)` maps a **departure time** to a **travel cost**
//! (both in seconds here, though the algebra is unit-agnostic). Following Eq. (1)
//! of the paper, a function is represented by a sorted list of interpolation
//! points `(t_1, c_1), …, (t_k, c_k)`:
//!
//! * for `t ≤ t_1` the value is `c_1`,
//! * for `t ≥ t_k` the value is `c_k`,
//! * in between, the value is linearly interpolated.
//!
//! The two central operators are:
//!
//! * [`Plf::compound`] — the paper's `Compound()` (Def. 2):
//!   `Compound(f, g)(t) = f(t) + g(t + f(t))`, i.e. travel `f` first, then `g`
//!   departing at the arrival time. The *bridge* vertex is recorded as the
//!   segment witness, which is what Def. 2 means by "the intermediate vertex is
//!   also recorded in the function".
//! * [`Plf::minimum`] — the pointwise minimum of two functions, keeping the
//!   winning side's witnesses.
//!
//! Both operators are **closed and exact** on this representation: the result of
//! an operation, evaluated anywhere on the real line (with the clamped
//! extrapolation above), equals the mathematical composition/minimum of the
//! clamped inputs. No domain bookkeeping is required by callers.
//!
//! ## FIFO
//!
//! Like the paper (and [8, 29] before it), the shortest-path algorithms assume
//! the FIFO (non-overtaking) property: the arrival function `t + w(t)` is
//! non-decreasing, equivalently every segment slope is ≥ −1. [`Plf::is_fifo`]
//! checks this; `compound` and `minimum` preserve it. The operators remain
//! *correct as function algebra* even on non-FIFO inputs.
//!
//! ## Witnesses and path recovery
//!
//! Every segment carries a witness ([`Via`]): the intermediate vertex through
//! which the cost on that segment is achieved, or [`NO_VIA`] for a direct edge.
//! Index structures built on this crate unfold witnesses recursively to produce
//! full shortest paths (see `td-core::paths`).

pub mod approx;
pub mod arena;
pub mod arrival;
pub mod batch;
pub mod compound;
pub mod minimum;
pub mod ops;
pub mod persist;
pub mod plf;
pub mod simplify;

pub use approx::{feq, fle, flt, EPS_COST, EPS_TIME};
pub use arena::{PlfArena, PlfId, PlfSlice, NO_PLF};
pub use batch::{eval_ids_at, eval_times_into};
pub use plf::{Plf, PlfError, Pt, Via, NO_VIA};

/// The canonical time domain used by the paper's evaluation: one day, in seconds.
pub const DAY: f64 = 86_400.0;
