//! The [`Plf`] type: interpolation points, evaluation (Eq. 1) and validation.

use crate::approx::{clamped_segment_value, feq, EPS_COST, EPS_TIME};

/// Witness attached to a segment: the intermediate vertex through which the
/// cost on that segment is achieved (Def. 2: "the intermediate vertex is also
/// recorded in the function"), or [`NO_VIA`] for a direct edge / trivial path.
pub type Via = u32;

/// Sentinel witness meaning "no intermediate vertex" (a direct original edge).
pub const NO_VIA: Via = u32::MAX;

/// One interpolation point `(t, v)` plus the witness of the segment that
/// *starts* at this point (and, for the last point, of the right ray).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pt {
    /// Departure time.
    pub t: f64,
    /// Travel cost when departing at `t`.
    pub v: f64,
    /// Witness for departures in `[t, next.t)`; the first point's witness also
    /// covers the left ray `(-∞, t)`.
    pub via: Via,
}

impl Pt {
    /// A point with no witness.
    #[inline]
    pub fn new(t: f64, v: f64) -> Self {
        Pt { t, v, via: NO_VIA }
    }

    /// A point with an explicit witness.
    #[inline]
    pub fn with_via(t: f64, v: f64, via: Via) -> Self {
        Pt { t, v, via }
    }
}

/// Errors rejected by [`Plf::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlfError {
    /// The point list was empty.
    Empty,
    /// Two consecutive points share (within [`EPS_TIME`]) the same time, or
    /// times are not strictly increasing. Holds the offending index.
    NotIncreasing(usize),
    /// A time or value was NaN/infinite. Holds the offending index.
    NotFinite(usize),
    /// A value was negative (travel costs are non-negative per Def. 1).
    /// Holds the offending index.
    Negative(usize),
}

impl std::fmt::Display for PlfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlfError::Empty => write!(f, "a PLF needs at least one interpolation point"),
            PlfError::NotIncreasing(i) => {
                write!(
                    f,
                    "interpolation point {i} does not strictly increase in time"
                )
            }
            PlfError::NotFinite(i) => write!(f, "interpolation point {i} is not finite"),
            PlfError::Negative(i) => write!(f, "interpolation point {i} has a negative cost"),
        }
    }
}

impl std::error::Error for PlfError {}

/// A piecewise-linear travel-cost function (Eq. 1 of the paper).
///
/// Invariants (enforced by [`Plf::new`], preserved by every operator):
/// * at least one point;
/// * times strictly increasing (separated by more than [`EPS_TIME`]);
/// * all coordinates finite;
/// * all values non-negative.
///
/// Evaluation clamps outside `[first.t, last.t]` (constant extrapolation), so a
/// single-point PLF is a constant function.
#[derive(Clone, Debug, PartialEq)]
pub struct Plf {
    pts: Vec<Pt>,
}

impl Plf {
    /// Builds a PLF from interpolation points, validating the invariants.
    pub fn new(pts: Vec<Pt>) -> Result<Self, PlfError> {
        if pts.is_empty() {
            return Err(PlfError::Empty);
        }
        for (i, p) in pts.iter().enumerate() {
            if !p.t.is_finite() || !p.v.is_finite() {
                return Err(PlfError::NotFinite(i));
            }
            if p.v < 0.0 {
                return Err(PlfError::Negative(i));
            }
            if i > 0 && p.t - pts[i - 1].t <= EPS_TIME {
                return Err(PlfError::NotIncreasing(i));
            }
        }
        Ok(Plf { pts })
    }

    /// Builds a PLF from `(t, v)` pairs with no witnesses.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self, PlfError> {
        Self::new(pairs.iter().map(|&(t, v)| Pt::new(t, v)).collect())
    }

    /// Internal constructor for operator results; `debug_assert`s the
    /// invariants instead of re-validating on every op.
    #[inline]
    pub(crate) fn from_raw(pts: Vec<Pt>) -> Self {
        debug_assert!(!pts.is_empty());
        debug_assert!(pts.windows(2).all(|w| w[1].t - w[0].t > EPS_TIME));
        debug_assert!(pts.iter().all(|p| p.t.is_finite() && p.v.is_finite()));
        Plf { pts }
    }

    /// The constant function `w(t) = v` (a single interpolation point at `t = 0`).
    pub fn constant(v: f64) -> Self {
        Plf {
            pts: vec![Pt::new(0.0, v)],
        }
    }

    /// The zero function (useful as the unit of `compound`).
    pub fn zero() -> Self {
        Self::constant(0.0)
    }

    /// The interpolation points.
    #[inline]
    pub fn points(&self) -> &[Pt] {
        &self.pts
    }

    /// Number of interpolation points — the paper's `|I|`, used as the
    /// *weight* of a shortcut (Def. 7).
    #[inline]
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True iff this PLF is a constant function representation (single point).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a valid Plf always has ≥ 1 point
    }

    /// First (earliest) interpolation point.
    #[inline]
    pub fn first(&self) -> Pt {
        self.pts[0]
    }

    /// Last (latest) interpolation point.
    #[inline]
    pub fn last(&self) -> Pt {
        *self.pts.last().expect("non-empty by invariant")
    }

    /// Index of the segment containing `t`: largest `i` with `pts[i].t ≤ t`,
    /// or `None` when `t` precedes the first point (left ray).
    #[inline]
    pub(crate) fn segment_index(&self, t: f64) -> Option<usize> {
        if t < self.pts[0].t {
            return None;
        }
        // partition_point returns the count of points with p.t <= t; it is
        // ≥ 1 here because pts[0].t ≤ t, so the subtraction cannot wrap.
        let n = self.pts.partition_point(|p| p.t <= t);
        debug_assert!(n >= 1 && n <= self.pts.len());
        Some(n - 1)
    }

    /// Value of the segment starting at point `i` evaluated at `t`, routed
    /// through the shared right-ray clamp ([`clamped_segment_value`]) so
    /// owned and frozen evaluation cannot diverge past the last breakpoint.
    #[inline]
    fn value_on_segment(&self, i: usize, t: f64) -> f64 {
        debug_assert!(i < self.pts.len());
        let a = self.pts[i];
        let next = self.pts.get(i + 1).map(|b| (b.t, b.v));
        clamped_segment_value(a.t, a.v, next, t)
    }

    /// Evaluates the function at departure time `t` per Eq. (1): clamped below
    /// `t_1` and above `t_k`, linear in between.
    ///
    /// All indexing below is provably in range (`segment_index` returns
    /// `i < len`), but the safe accesses are kept: after inlining, LLVM
    /// elides the bounds checks against the slice length already loaded for
    /// `partition_point`, so `unsafe` would buy nothing measurable here.
    #[inline]
    pub fn eval(&self, t: f64) -> f64 {
        match self.segment_index(t) {
            None => self.pts[0].v,
            Some(i) => self.value_on_segment(i, t),
        }
    }

    /// Evaluates the function and returns the witness of the segment serving `t`.
    #[inline]
    pub fn eval_with_via(&self, t: f64) -> (f64, Via) {
        match self.segment_index(t) {
            None => (self.pts[0].v, self.pts[0].via),
            Some(i) => (self.value_on_segment(i, t), self.pts[i].via),
        }
    }

    /// Arrival time when departing at `t`: `t + w(t)`.
    #[inline]
    pub fn arrival(&self, t: f64) -> f64 {
        t + self.eval(t)
    }

    /// Minimum value over all departure times (attained at a breakpoint).
    pub fn min_value(&self) -> f64 {
        self.pts.iter().map(|p| p.v).fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over all departure times (attained at a breakpoint).
    pub fn max_value(&self) -> f64 {
        self.pts
            .iter()
            .map(|p| p.v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// `(min_value, max_value)` in a single pass — for callers that need
    /// both bounds of a freshly built function while its points are hot.
    pub fn value_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in &self.pts {
            lo = lo.min(p.v);
            hi = hi.max(p.v);
        }
        (lo, hi)
    }

    /// True iff the FIFO (non-overtaking) property holds: every segment slope
    /// is ≥ −1 within tolerance, i.e. the arrival function is non-decreasing.
    pub fn is_fifo(&self) -> bool {
        self.pts.windows(2).all(|w| {
            let dt = w[1].t - w[0].t;
            let dv = w[1].v - w[0].v;
            dv >= -dt - EPS_COST
        })
    }

    /// True iff `self` and `other` describe the same function within `tol`,
    /// compared at the union of their breakpoints (sufficient for PLFs).
    pub fn approx_eq(&self, other: &Plf, tol: f64) -> bool {
        let probe = |p: &Pt| p.t;
        self.pts
            .iter()
            .map(probe)
            .chain(other.pts.iter().map(probe))
            .all(|t| feq(self.eval(t), other.eval(t), tol))
    }

    /// Replaces every witness with `via`. Used when a whole function is known
    /// to route through one bridge vertex.
    pub fn stamp_via(&mut self, via: Via) {
        for p in &mut self.pts {
            p.via = via;
        }
    }

    /// Returns a copy with every witness replaced by `via`.
    pub fn with_via(&self, via: Via) -> Plf {
        let mut c = self.clone();
        c.stamp_via(via);
        c
    }

    /// Heap footprint in bytes (points only) — used by the memory-accounting
    /// experiments (Table 3/4, Fig. 9, Fig. 11).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.pts.capacity() * std::mem::size_of::<Pt>()
    }

    /// Mutable access for the operator modules in this crate.
    #[inline]
    pub(crate) fn pts_mut(&mut self) -> &mut Vec<Pt> {
        &mut self.pts
    }

    /// Consumes the PLF and returns its points.
    pub fn into_points(self) -> Vec<Pt> {
        self.pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(Plf::new(vec![]), Err(PlfError::Empty));
    }

    #[test]
    fn new_rejects_unsorted() {
        let r = Plf::from_pairs(&[(10.0, 1.0), (5.0, 2.0)]);
        assert_eq!(r, Err(PlfError::NotIncreasing(1)));
    }

    #[test]
    fn new_rejects_duplicate_times() {
        let r = Plf::from_pairs(&[(10.0, 1.0), (10.0, 2.0)]);
        assert_eq!(r, Err(PlfError::NotIncreasing(1)));
    }

    #[test]
    fn new_rejects_nan() {
        let r = Plf::from_pairs(&[(0.0, f64::NAN)]);
        assert_eq!(r, Err(PlfError::NotFinite(0)));
    }

    #[test]
    fn new_rejects_negative_cost() {
        let r = Plf::from_pairs(&[(0.0, -1.0)]);
        assert_eq!(r, Err(PlfError::Negative(0)));
    }

    #[test]
    fn eval_matches_paper_example() {
        // Edge e_{1,2} of Fig. 1b: {(0,10), (20,10), (60,15)}.
        let w12 = plf(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]);
        assert_eq!(w12.eval(0.0), 10.0); // pair (0, 10) of Example 2.1
        assert_eq!(w12.eval(10.0), 10.0);
        assert_eq!(w12.eval(20.0), 10.0);
        assert_eq!(w12.eval(40.0), 12.5); // halfway up the ramp
        assert_eq!(w12.eval(60.0), 15.0);
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let f = plf(&[(10.0, 3.0), (20.0, 7.0)]);
        assert_eq!(f.eval(-100.0), 3.0);
        assert_eq!(f.eval(9.9), 3.0);
        assert_eq!(f.eval(20.1), 7.0);
        assert_eq!(f.eval(1e9), 7.0);
    }

    #[test]
    fn constant_function_evaluates_everywhere() {
        let c = Plf::constant(42.0);
        for t in [-1e6, 0.0, 1.0, 86_400.0, 1e9] {
            assert_eq!(c.eval(t), 42.0);
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn arrival_adds_departure() {
        let f = plf(&[(0.0, 5.0), (100.0, 10.0)]);
        assert_eq!(f.arrival(0.0), 5.0);
        assert_eq!(f.arrival(100.0), 110.0);
    }

    #[test]
    fn min_max_values() {
        let f = plf(&[(0.0, 5.0), (50.0, 2.0), (100.0, 9.0)]);
        assert_eq!(f.min_value(), 2.0);
        assert_eq!(f.max_value(), 9.0);
    }

    #[test]
    fn fifo_detection() {
        // Slope -1 exactly is still FIFO.
        let ok = plf(&[(0.0, 10.0), (10.0, 0.0)]);
        assert!(ok.is_fifo());
        // Slope -2 is not.
        let bad = plf(&[(0.0, 30.0), (10.0, 10.0)]);
        assert!(!bad.is_fifo());
    }

    #[test]
    fn eval_with_via_tracks_segments() {
        let f = Plf::new(vec![
            Pt::with_via(0.0, 10.0, 4),
            Pt::with_via(50.0, 20.0, 2),
        ])
        .unwrap();
        assert_eq!(f.eval_with_via(-5.0).1, 4);
        assert_eq!(f.eval_with_via(10.0).1, 4);
        assert_eq!(f.eval_with_via(50.0).1, 2);
        assert_eq!(f.eval_with_via(500.0).1, 2);
    }

    #[test]
    fn approx_eq_spots_differences() {
        let f = plf(&[(0.0, 1.0), (10.0, 2.0)]);
        let g = plf(&[(0.0, 1.0), (5.0, 1.5), (10.0, 2.0)]); // same function, extra point
        let h = plf(&[(0.0, 1.0), (10.0, 3.0)]);
        assert!(f.approx_eq(&g, 1e-9));
        assert!(!f.approx_eq(&h, 1e-9));
    }

    #[test]
    fn segment_index_boundaries() {
        let f = plf(&[(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]);
        assert_eq!(f.segment_index(-1.0), None);
        assert_eq!(f.segment_index(0.0), Some(0));
        assert_eq!(f.segment_index(9.999), Some(0));
        assert_eq!(f.segment_index(10.0), Some(1));
        assert_eq!(f.segment_index(25.0), Some(2));
    }
}
