// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! [`PlfArena`]: all interpolation points of a *frozen* function set in
//! contiguous structure-of-arrays storage, plus [`PlfSlice`], the borrowed
//! zero-copy view the hot query loops evaluate.
//!
//! [`Plf`] owns one `Vec<Pt>` per function — ideal while functions are being
//! built and rewritten (compound/minimum produce fresh point lists), but a
//! pointer-chasing layout once an index is frozen and only *evaluated*: every
//! `eval` starts with a dereference to a separately-allocated point array,
//! and the AoS `Pt {t, v, via}` layout drags witness words through the cache
//! even when only times are scanned. `PlfArena` is the frozen counterpart:
//!
//! * `times`/`values`/`vias` — one flat SoA array each, all functions
//!   back-to-back;
//! * `first_pt` — CSR-style offsets, `first_pt[id]..first_pt[id+1]` is
//!   function `id`;
//! * `min_cost`/`max_cost` — per-function value bounds, precomputed once so
//!   query loops can prune (`dist + min_cost ≥ best` ⇒ skip evaluation)
//!   without touching the points at all.
//!
//! The arena is append-only; mutation stays on [`Plf`]. Build with the PLF
//! algebra, freeze with [`PlfArena::push`], query through [`PlfSlice`].

use crate::approx::clamped_segment_value;
use crate::plf::{Plf, Pt, Via};

/// Index of a function inside a [`PlfArena`].
pub type PlfId = u32;

/// Sentinel id for "no function stored" — lets frozen index structures keep
/// `Option<Plf>`-shaped tables as plain `u32` arrays.
pub const NO_PLF: PlfId = u32::MAX;

/// Contiguous SoA storage for a frozen set of piecewise-linear functions.
#[derive(Clone, Debug)]
pub struct PlfArena {
    times: Vec<f64>,
    values: Vec<f64>,
    vias: Vec<Via>,
    /// `first_pt[id]..first_pt[id+1]` delimits function `id`; starts as
    /// `[0]`, one entry appended per push.
    first_pt: Vec<u32>,
    min_cost: Vec<f64>,
    max_cost: Vec<f64>,
}

impl Default for PlfArena {
    fn default() -> Self {
        // Not derived: `first_pt` must start as `[0]`, not empty, for the
        // CSR offset invariant `len() == first_pt.len() - 1` to hold.
        PlfArena::new()
    }
}

impl PlfArena {
    /// An empty arena.
    pub fn new() -> Self {
        PlfArena {
            times: Vec::new(),
            values: Vec::new(),
            vias: Vec::new(),
            first_pt: vec![0],
            min_cost: Vec::new(),
            max_cost: Vec::new(),
        }
    }

    /// An empty arena with room for `functions` functions of about
    /// `points` total interpolation points.
    pub fn with_capacity(functions: usize, points: usize) -> Self {
        let mut first_pt = Vec::with_capacity(functions + 1);
        first_pt.push(0);
        PlfArena {
            times: Vec::with_capacity(points),
            values: Vec::with_capacity(points),
            vias: Vec::with_capacity(points),
            first_pt,
            min_cost: Vec::with_capacity(functions),
            max_cost: Vec::with_capacity(functions),
        }
    }

    /// Number of stored functions.
    #[inline]
    pub fn len(&self) -> usize {
        self.first_pt.len() - 1
    }

    /// True iff no function has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored interpolation points.
    #[inline]
    pub fn total_points(&self) -> usize {
        self.times.len()
    }

    /// Interpolation points of function `id`.
    #[inline]
    // td-lint: hot
    pub fn points_of(&self, id: PlfId) -> usize {
        debug_assert!((id as usize) < self.len());
        (self.first_pt[id as usize + 1] - self.first_pt[id as usize]) as usize
    }

    /// Freezes a copy of `f`'s points into the arena and returns its id.
    pub fn push(&mut self, f: &Plf) -> PlfId {
        self.push_points(f.points())
    }

    /// Freezes a raw point list (same invariants as [`Plf`]: non-empty,
    /// strictly increasing times).
    pub fn push_points(&mut self, pts: &[Pt]) -> PlfId {
        debug_assert!(!pts.is_empty(), "a PLF needs at least one point");
        debug_assert!(pts.windows(2).all(|w| w[0].t < w[1].t));
        let id = self.len() as PlfId;
        // td-lint: allow(assert-policy) build-time overflow guard; push never runs on the query path
        assert!(id != NO_PLF, "PlfArena overflow (u32::MAX functions)");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in pts {
            self.times.push(p.t);
            self.values.push(p.v);
            self.vias.push(p.via);
            lo = lo.min(p.v);
            hi = hi.max(p.v);
        }
        self.first_pt.push(self.times.len() as u32);
        self.min_cost.push(lo);
        self.max_cost.push(hi);
        id
    }

    /// The borrowed view of function `id`.
    #[inline]
    // td-lint: hot
    pub fn slice(&self, id: PlfId) -> PlfSlice<'_> {
        debug_assert!((id as usize) < self.len());
        let lo = self.first_pt[id as usize] as usize;
        let hi = self.first_pt[id as usize + 1] as usize;
        PlfSlice {
            times: &self.times[lo..hi],
            values: &self.values[lo..hi],
            vias: &self.vias[lo..hi],
        }
    }

    /// Precomputed minimum value of function `id` over all departure times —
    /// an admissible lower bound on any evaluation.
    #[inline]
    // td-lint: hot
    pub fn min_cost(&self, id: PlfId) -> f64 {
        debug_assert!((id as usize) < self.min_cost.len());
        self.min_cost[id as usize]
    }

    /// Precomputed maximum value of function `id` over all departure times.
    #[inline]
    // td-lint: hot
    pub fn max_cost(&self, id: PlfId) -> f64 {
        debug_assert!((id as usize) < self.max_cost.len());
        self.max_cost[id as usize]
    }

    /// The raw SoA arrays `(times, values, vias, first_pt)` — the
    /// serialization surface of the persistence module. The min/max bounds
    /// are deliberately absent: they are derived data, recomputed on load.
    pub(crate) fn raw_parts(&self) -> (&[f64], &[f64], &[Via], &[u32]) {
        (&self.times, &self.values, &self.vias, &self.first_pt)
    }

    /// Reassembles an arena from raw arrays. The persistence module
    /// validates every invariant before calling this.
    pub(crate) fn from_raw_parts(
        times: Vec<f64>,
        values: Vec<f64>,
        vias: Vec<Via>,
        first_pt: Vec<u32>,
        min_cost: Vec<f64>,
        max_cost: Vec<f64>,
    ) -> PlfArena {
        PlfArena {
            times,
            values,
            vias,
            first_pt,
            min_cost,
            max_cost,
        }
    }

    /// Heap footprint in bytes — the frozen representation's share of index
    /// memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.times.capacity() * std::mem::size_of::<f64>()
            + self.values.capacity() * std::mem::size_of::<f64>()
            + self.vias.capacity() * std::mem::size_of::<Via>()
            + self.first_pt.capacity() * std::mem::size_of::<u32>()
            + self.min_cost.capacity() * std::mem::size_of::<f64>()
            + self.max_cost.capacity() * std::mem::size_of::<f64>()
    }
}

/// A borrowed, zero-copy view of one function in a [`PlfArena`].
///
/// Evaluation semantics match [`Plf`] exactly (Eq. 1 of the paper): clamped
/// constant extrapolation outside `[first.t, last.t]`, linear interpolation
/// between breakpoints.
#[derive(Clone, Copy, Debug)]
pub struct PlfSlice<'a> {
    times: &'a [f64],
    values: &'a [f64],
    vias: &'a [Via],
}

impl<'a> PlfSlice<'a> {
    /// Builds a view over raw SoA slices (all the same non-zero length,
    /// times strictly increasing).
    #[inline]
    pub fn new(times: &'a [f64], values: &'a [f64], vias: &'a [Via]) -> Self {
        debug_assert!(!times.is_empty());
        debug_assert_eq!(times.len(), values.len());
        debug_assert_eq!(times.len(), vias.len());
        PlfSlice {
            times,
            values,
            vias,
        }
    }

    /// Number of interpolation points.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// A valid slice always has ≥ 1 point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Breakpoint times.
    #[inline]
    pub fn times(&self) -> &'a [f64] {
        self.times
    }

    /// Breakpoint values.
    #[inline]
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Index of the segment containing `t`: largest `i` with `times[i] ≤ t`,
    /// or `None` for the left ray.
    #[inline]
    // td-lint: hot
    fn segment_index(&self, t: f64) -> Option<usize> {
        debug_assert!(!self.times.is_empty());
        if t < self.times[0] {
            return None;
        }
        Some(self.times.partition_point(|&x| x <= t) - 1)
    }

    /// Value of the segment starting at breakpoint `i` evaluated at `t`,
    /// routed through the shared right-ray clamp
    /// ([`clamped_segment_value`]) so every entry point — and the batch
    /// kernels — extrapolate identically past the last breakpoint.
    #[inline]
    // td-lint: hot
    fn value_on_segment(&self, i: usize, t: f64) -> f64 {
        debug_assert!(i < self.times.len());
        let next = if i + 1 < self.times.len() {
            Some((self.times[i + 1], self.values[i + 1]))
        } else {
            None
        };
        clamped_segment_value(self.times[i], self.values[i], next, t)
    }

    /// Evaluates at departure time `t` (Eq. 1), identical to [`Plf::eval`].
    #[inline]
    // td-lint: hot
    pub fn eval(&self, t: f64) -> f64 {
        debug_assert!(!self.times.is_empty());
        match self.segment_index(t) {
            None => self.values[0],
            Some(i) => self.value_on_segment(i, t),
        }
    }

    /// Evaluates at `t` and returns the witness of the serving segment,
    /// identical to [`Plf::eval_with_via`].
    #[inline]
    // td-lint: hot
    pub fn eval_with_via(&self, t: f64) -> (f64, Via) {
        debug_assert!(!self.times.is_empty());
        match self.segment_index(t) {
            None => (self.values[0], self.vias[0]),
            Some(i) => (self.value_on_segment(i, t), self.vias[i]),
        }
    }

    /// [`PlfSlice::eval`] with a monotone segment hint for sorted departure
    /// sweeps: `hint` is the segment index returned by the previous call.
    /// When queries arrive in ascending time order the search degenerates to
    /// an amortised O(1) forward walk; out-of-order queries fall back to the
    /// binary search. `hint` is updated in place; any starting value is
    /// correct (it is only a speed hint).
    #[inline]
    // td-lint: hot
    pub fn eval_with_hint(&self, t: f64, hint: &mut usize) -> f64 {
        let n = self.times.len();
        debug_assert!(n > 0);
        let mut i = (*hint).min(n - 1);
        if self.times[i] <= t {
            // Walk forward from the hint while the next breakpoint still
            // precedes t. Bounded by a few steps for near-sorted sweeps;
            // gallops into binary search when the jump is large.
            let mut steps = 0usize;
            while i + 1 < n && self.times[i + 1] <= t {
                i += 1;
                steps += 1;
                if steps == 8 {
                    i += self.times[i + 1..].partition_point(|&x| x <= t);
                    break;
                }
            }
        } else if t < self.times[0] {
            *hint = 0;
            return self.values[0];
        } else {
            // Hint overshot (out-of-order query): binary search from scratch.
            i = self.times.partition_point(|&x| x <= t) - 1;
        }
        *hint = i;
        self.value_on_segment(i, t)
    }

    /// Arrival time when departing at `t`.
    #[inline]
    pub fn arrival(&self, t: f64) -> f64 {
        t + self.eval(t)
    }

    /// Minimum value over all departure times (prefer the arena's
    /// precomputed [`PlfArena::min_cost`] in hot loops).
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over all departure times (prefer
    /// [`PlfArena::max_cost`] in hot loops).
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Copies the view back into an owned [`Plf`].
    pub fn to_plf(&self) -> Plf {
        Plf::new(
            (0..self.times.len())
                .map(|i| Pt::with_via(self.times[i], self.values[i], self.vias[i]))
                .collect(),
        )
        .expect("arena slices satisfy the Plf invariants")
    }
}

// Compile-time pin: frozen arenas are shared read-only across query
// threads. A future `Rc`/`Cell` field fails this line instead of a test.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<PlfArena>()
};

#[cfg(test)]
mod tests {
    use super::*;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    #[test]
    fn push_and_eval_match_plf() {
        let f = plf(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]);
        let g = plf(&[(5.0, 3.0)]);
        let mut arena = PlfArena::new();
        let fid = arena.push(&f);
        let gid = arena.push(&g);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_points(), 4);
        for t in [-5.0, 0.0, 10.0, 20.0, 40.0, 60.0, 100.0] {
            assert_eq!(arena.slice(fid).eval(t), f.eval(t), "t={t}");
            assert_eq!(arena.slice(gid).eval(t), g.eval(t), "t={t}");
        }
    }

    #[test]
    fn bounds_are_precomputed() {
        let f = plf(&[(0.0, 5.0), (50.0, 2.0), (100.0, 9.0)]);
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        assert_eq!(arena.min_cost(id), 2.0);
        assert_eq!(arena.max_cost(id), 9.0);
        assert_eq!(arena.slice(id).min_value(), 2.0);
        assert_eq!(arena.slice(id).max_value(), 9.0);
    }

    #[test]
    fn eval_with_hint_ascending_sweep() {
        let f = plf(&[(0.0, 5.0), (10.0, 7.0), (20.0, 3.0), (30.0, 3.5)]);
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut hint = 0usize;
        let mut t = -3.0;
        while t < 40.0 {
            assert!(
                (s.eval_with_hint(t, &mut hint) - f.eval(t)).abs() < 1e-12,
                "t={t}"
            );
            t += 0.7;
        }
    }

    #[test]
    fn eval_with_hint_out_of_order_falls_back() {
        let f = plf(&[(0.0, 5.0), (10.0, 7.0), (20.0, 3.0)]);
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut hint = 0usize;
        for t in [25.0, 5.0, 19.9, -1.0, 10.0, 3.0] {
            assert!(
                (s.eval_with_hint(t, &mut hint) - f.eval(t)).abs() < 1e-12,
                "t={t}"
            );
        }
    }

    #[test]
    fn eval_with_hint_gallops_over_many_segments() {
        let pts: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, (i % 7) as f64)).collect();
        let f = plf(&pts);
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut hint = 0usize;
        for t in [0.5, 60.2, 63.9, 100.0] {
            assert!(
                (s.eval_with_hint(t, &mut hint) - f.eval(t)).abs() < 1e-12,
                "t={t}"
            );
        }
    }

    #[test]
    fn vias_round_trip() {
        let f = Plf::new(vec![Pt::with_via(0.0, 1.0, 7), Pt::with_via(10.0, 2.0, 9)]).unwrap();
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        assert_eq!(s.eval_with_via(-1.0).1, 7);
        assert_eq!(s.eval_with_via(5.0).1, 7);
        assert_eq!(s.eval_with_via(10.0).1, 9);
        assert!(s.to_plf().approx_eq(&f, 0.0));
    }

    #[test]
    fn memory_accounting_positive() {
        let mut arena = PlfArena::with_capacity(4, 16);
        arena.push(&Plf::constant(1.0));
        assert!(arena.heap_bytes() > 0);
        assert!(!arena.is_empty());
    }
}
