//! Pointwise minimum of two travel-cost functions.
//!
//! Used everywhere the paper takes `min{…}`: the reduction operator (Algo. 1
//! lines 6-8), query relaxation (Algo. 3 line 7, Algo. 6 line 17), shortcut
//! assembly (Fact 1) and the final cut combination (Algo. 3 line 14).
//!
//! The result's breakpoints are the union of the inputs' breakpoints plus the
//! intersection points of crossing segments; between consecutive candidates
//! both inputs are linear, so the minimum is linear and the representation is
//! exact. Each output segment keeps the **winning side's witness**, which is
//! how `min{Compound(…), Compound(…)}` ends up recording the right
//! intermediate vertex (Example 2.3).

use crate::approx::{EPS_COST, EPS_TIME};
use crate::plf::{Plf, Pt};

impl Plf {
    /// The pointwise minimum `t ↦ min(self(t), other(t))`, witnesses taken
    /// from whichever side is smaller on each segment.
    pub fn minimum(&self, other: &Plf) -> Plf {
        // Merged candidate times.
        let mut times: Vec<f64> =
            Vec::with_capacity(self.len() + other.len() + self.len().min(other.len()));
        {
            let a = self.points();
            let b = other.points();
            let (mut i, mut j) = (0, 0);
            while i < a.len() || j < b.len() {
                let t = match (a.get(i), b.get(j)) {
                    (Some(p), Some(q)) => {
                        if p.t <= q.t {
                            i += 1;
                            if (q.t - p.t) <= EPS_TIME {
                                j += 1;
                            }
                            p.t
                        } else {
                            j += 1;
                            q.t
                        }
                    }
                    (Some(p), None) => {
                        i += 1;
                        p.t
                    }
                    (None, Some(q)) => {
                        j += 1;
                        q.t
                    }
                    (None, None) => unreachable!(),
                };
                times.push(t);
            }
        }

        // Emit min at every merged time, plus crossings inside sub-segments.
        let mut pts: Vec<Pt> = Vec::with_capacity(times.len() * 2);
        let push = |t: f64, v: f64, pts: &mut Vec<Pt>| {
            if let Some(last) = pts.last() {
                if t - last.t <= EPS_TIME {
                    return;
                }
            }
            pts.push(Pt::new(t, v.max(0.0)));
        };
        for k in 0..times.len() {
            let ta = times[k];
            let fa = self.eval(ta);
            let ga = other.eval(ta);
            push(ta, fa.min(ga), &mut pts);
            if k + 1 < times.len() {
                let tb = times[k + 1];
                let fb = self.eval(tb);
                let gb = other.eval(tb);
                let da = fa - ga;
                let db = fb - gb;
                if (da > EPS_COST && db < -EPS_COST) || (da < -EPS_COST && db > EPS_COST) {
                    // Strict crossing inside (ta, tb).
                    let s = da / (da - db);
                    let tx = ta + s * (tb - ta);
                    if tx - ta > EPS_TIME && tb - tx > EPS_TIME {
                        let vx = fa + s * (fb - fa); // == ga + s*(gb-ga)
                        push(tx, vx, &mut pts);
                    }
                }
            }
        }

        // Witness pass: each segment takes the winner's witness, probed at the
        // segment midpoint (ties favour `self`).
        let n = pts.len();
        for k in 0..n {
            let probe = if k + 1 < n {
                0.5 * (pts[k].t + pts[k + 1].t)
            } else {
                pts[k].t + 1.0 // right ray: both sides constant beyond
            };
            let (fv, fvia) = self.eval_with_via(probe);
            let (gv, gvia) = other.eval_with_via(probe);
            pts[k].via = if fv <= gv + EPS_COST { fvia } else { gvia };
        }

        let mut out = Plf::from_raw(pts);
        out.simplify();
        out
    }

    /// Minimum over an iterator of functions; `None` when the iterator is
    /// empty. The fold order does not affect the value.
    pub fn min_many<'a>(mut iter: impl Iterator<Item = &'a Plf>) -> Option<Plf> {
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, f| acc.minimum(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plf::NO_VIA;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    fn assert_min_exact(f: &Plf, g: &Plf) {
        let h = f.minimum(g);
        let lo = f.first().t.min(g.first().t) - 20.0;
        let hi = f.last().t.max(g.last().t) + 20.0;
        let n = 500;
        for i in 0..=n {
            let t = lo + (hi - lo) * i as f64 / n as f64;
            let want = f.eval(t).min(g.eval(t));
            let got = h.eval(t);
            assert!(
                (want - got).abs() < 1e-6,
                "min mismatch at t={t}: want {want}, got {got}\nf={f:?}\ng={g:?}\nh={h:?}"
            );
        }
    }

    #[test]
    fn paper_fig2_shape_crossover() {
        // Example 2.3: path (e1,4 , e4,9) is best early, (e1,2 , e2,9) later;
        // the min must switch paths at the crossover.
        let via4 = plf(&[(0.0, 10.0), (30.0, 30.0), (60.0, 40.0)]).with_via(4);
        let via2 = plf(&[(0.0, 16.0), (30.0, 20.0), (60.0, 30.0)]).with_via(2);
        let h = via4.minimum(&via2);
        assert_eq!(h.eval_with_via(0.0).1, 4);
        assert_eq!(h.eval_with_via(59.0).1, 2);
        assert_min_exact(&via4, &via2);
    }

    #[test]
    fn disjoint_domains() {
        let f = plf(&[(0.0, 5.0), (10.0, 6.0)]);
        let g = plf(&[(100.0, 2.0), (110.0, 3.0)]);
        assert_min_exact(&f, &g);
        // g's clamped constant 2 < f everywhere ⇒ min is g's shape.
        let h = f.minimum(&g);
        assert!((h.eval(0.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_functions() {
        let f = plf(&[(0.0, 5.0), (10.0, 9.0), (20.0, 3.0)]);
        let h = f.minimum(&f);
        assert!(h.approx_eq(&f, 1e-9));
    }

    #[test]
    fn constant_vs_varying() {
        let f = Plf::constant(10.0);
        let g = plf(&[(0.0, 5.0), (30.0, 20.0), (60.0, 5.0)]);
        assert_min_exact(&f, &g);
        let h = f.minimum(&g);
        // Crossings at g(t)=10: t=10 (rising) and t=50 (falling).
        assert!((h.eval(10.0) - 10.0).abs() < 1e-9);
        assert!((h.eval(30.0) - 10.0).abs() < 1e-9);
        assert!((h.eval(0.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn commutative_in_value() {
        let f = plf(&[(0.0, 5.0), (25.0, 14.0), (60.0, 2.0)]);
        let g = plf(&[(0.0, 9.0), (30.0, 3.0), (60.0, 11.0)]);
        let a = f.minimum(&g);
        let b = g.minimum(&f);
        assert!(a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn idempotent() {
        let f = plf(&[(0.0, 5.0), (25.0, 14.0)]);
        assert!(f.minimum(&f).approx_eq(&f, 1e-9));
    }

    #[test]
    fn multiple_crossings() {
        let f = plf(&[
            (0.0, 0.0),
            (10.0, 10.0),
            (20.0, 0.0),
            (30.0, 10.0),
            (40.0, 0.0),
        ]);
        let g = Plf::constant(5.0);
        assert_min_exact(&f, &g);
        let h = f.minimum(&g);
        // Kinks at the four crossings + valley points.
        assert!(h.len() >= 7, "h={h:?}");
    }

    #[test]
    fn min_many_folds() {
        let fs = [
            plf(&[(0.0, 9.0), (10.0, 9.0)]),
            plf(&[(0.0, 5.0), (10.0, 20.0)]),
            plf(&[(0.0, 20.0), (10.0, 4.0)]),
        ];
        let h = Plf::min_many(fs.iter()).unwrap();
        for t in [0.0, 2.5, 5.0, 7.5, 10.0] {
            let want = fs.iter().map(|f| f.eval(t)).fold(f64::INFINITY, f64::min);
            assert!((h.eval(t) - want).abs() < 1e-9);
        }
        assert!(Plf::min_many(std::iter::empty()).is_none());
    }

    #[test]
    fn witness_none_for_direct_edges() {
        let f = plf(&[(0.0, 5.0), (10.0, 6.0)]);
        let g = plf(&[(0.0, 7.0), (10.0, 4.0)]);
        let h = f.minimum(&g);
        assert_eq!(h.eval_with_via(0.0).1, NO_VIA);
    }

    #[test]
    fn fifo_closed_under_min() {
        let f = plf(&[(0.0, 30.0), (30.0, 10.0), (60.0, 25.0)]);
        let g = plf(&[(0.0, 12.0), (30.0, 28.0), (60.0, 8.0)]);
        assert!(f.is_fifo() && g.is_fifo());
        assert!(f.minimum(&g).is_fifo());
    }

    #[test]
    fn near_tangent_segments_do_not_duplicate_points() {
        let f = plf(&[(0.0, 5.0), (10.0, 5.0 + 1e-12)]);
        let g = plf(&[(0.0, 5.0 + 1e-12), (10.0, 5.0)]);
        let h = f.minimum(&g);
        // Effectively identical constants; simplification collapses them.
        assert!(h.len() <= 2, "h={h:?}");
    }
}
