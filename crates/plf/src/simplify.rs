//! Collinear-point elimination.
//!
//! `compound` and `minimum` emit every candidate breakpoint; many turn out to
//! lie exactly on the line through their neighbours. Dropping them keeps the
//! interpolation-point count `|I|` — the paper's space currency (Def. 7) — at
//! the true complexity of the function instead of growing with every operator
//! application.
//!
//! A point is only removed when its **witness matches its predecessor's**:
//! witnesses are valid per departure time, and extending one across a segment
//! where a *different* predecessor achieved the minimum would make path
//! recovery return non-shortest paths even though the cost values agree.

use crate::approx::{lerp, EPS_COST, EPS_TIME};
use crate::plf::{Plf, Pt};

impl Plf {
    /// Removes interior points that are collinear (within `tol`) with their
    /// neighbours and share the preceding segment's witness; also collapses
    /// flat, same-witness head/tail segments into the clamped rays. Exact up
    /// to `tol` in value and exact in witnesses.
    #[allow(clippy::needless_range_loop)] // explicit stack algorithm over indices
    pub fn simplify_with(&mut self, tol: f64) {
        let pts = self.pts_mut();
        if pts.len() <= 1 {
            return;
        }
        let mut out: Vec<Pt> = Vec::with_capacity(pts.len());
        out.push(pts[0]);
        for i in 1..pts.len() {
            let p = pts[i];
            loop {
                let n = out.len();
                if n < 2 {
                    break;
                }
                let a = out[n - 2];
                let b = out[n - 1];
                // b is droppable iff value-collinear on a–p and the witness of
                // [b, p) equals the witness of [a, b).
                let on_line = (lerp(a.t, a.v, p.t, p.v, b.t) - b.v).abs() <= tol;
                if on_line && a.via == b.via {
                    out.pop();
                } else {
                    break;
                }
            }
            out.push(p);
        }
        // Trailing flat segment with matching witness collapses into the
        // right ray.
        if out.len() >= 2 {
            let n = out.len();
            let a = out[n - 2];
            let b = out[n - 1];
            if (a.v - b.v).abs() <= tol && a.via == b.via {
                out.pop();
            }
        }
        // Leading flat segment with matching witness collapses into the left
        // ray.
        if out.len() >= 2 && (out[0].v - out[1].v).abs() <= tol && out[0].via == out[1].via {
            out.remove(0);
        }
        // A single surviving point is the constant function; its anchor time
        // is semantically meaningless (both rays clamp to the same value), so
        // pin it to t = 0 like `Plf::constant`. Without this, two searches
        // reaching the same constant through different merge orders would
        // disagree on the leftover anchor even though the functions are equal.
        if out.len() == 1 {
            out[0].t = 0.0;
        }
        debug_assert!(out.windows(2).all(|w| w[1].t - w[0].t > EPS_TIME));
        *pts = out;
    }

    /// [`Plf::simplify_with`] at the default cost tolerance.
    pub fn simplify(&mut self) {
        self.simplify_with(EPS_COST);
    }

    /// Returns a simplified copy.
    pub fn simplified(&self) -> Plf {
        let mut c = self.clone();
        c.simplify();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plf::NO_VIA;

    fn plf(pairs: &[(f64, f64)]) -> Plf {
        Plf::from_pairs(pairs).unwrap()
    }

    #[test]
    fn drops_interior_collinear_point() {
        let mut f = plf(&[(0.0, 0.0), (5.0, 5.0), (10.0, 10.0)]);
        f.simplify();
        assert_eq!(f.len(), 2);
        assert_eq!(f.eval(5.0), 5.0);
    }

    #[test]
    fn keeps_genuine_kinks() {
        let mut f = plf(&[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]);
        f.simplify();
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn collapses_constant_function_to_one_point() {
        let mut f = plf(&[(0.0, 7.0), (10.0, 7.0), (20.0, 7.0), (30.0, 7.0)]);
        f.simplify();
        assert_eq!(f.len(), 1);
        assert_eq!(f.eval(-5.0), 7.0);
        assert_eq!(f.eval(15.0), 7.0);
        assert_eq!(f.eval(100.0), 7.0);
    }

    #[test]
    fn constant_collapse_anchor_is_canonical() {
        // Two constants with different time grids must collapse to the *same*
        // representation — the anchor is pinned to t = 0 like `Plf::constant`.
        let mut a = plf(&[(-100.0, 7.0), (40.0, 7.0)]);
        let mut b = plf(&[(3.0, 7.0), (8.0, 7.0), (12.0, 7.0)]);
        a.simplify();
        b.simplify();
        assert_eq!(a, b);
        assert_eq!(a.first().t, 0.0);
        assert_eq!(a.eval(-200.0), 7.0);
    }

    #[test]
    fn drops_flat_tail_and_head() {
        let mut f = plf(&[(0.0, 3.0), (10.0, 3.0), (20.0, 9.0), (30.0, 9.0)]);
        let orig = f.clone();
        f.simplify();
        assert_eq!(f.len(), 2);
        for t in [-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 40.0] {
            assert!(
                (f.eval(t) - orig.eval(t)).abs() < 1e-9,
                "diverged at t={t}: {} vs {}",
                f.eval(t),
                orig.eval(t)
            );
        }
    }

    #[test]
    fn chain_of_collinear_points_collapses() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let mut f = plf(&pts);
        f.simplify();
        assert_eq!(f.len(), 2);
        assert_eq!(f.eval(33.5), 67.0);
    }

    #[test]
    fn preserves_single_point() {
        let mut f = Plf::constant(5.0);
        f.simplify();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn simplify_value_preserving_on_random_like_shape() {
        let mut f = plf(&[
            (0.0, 10.0),
            (10.0, 10.0),
            (20.0, 15.0),
            (25.0, 17.5),
            (30.0, 20.0),
            (40.0, 12.0),
            (60.0, 12.0),
        ]);
        let orig = f.clone();
        f.simplify();
        assert!(f.len() < orig.len());
        for i in 0..=120 {
            let t = i as f64 * 0.5;
            assert!((f.eval(t) - orig.eval(t)).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn witness_boundary_is_never_merged() {
        // Value-collinear across the witness switch at t=10: the point must
        // survive, otherwise path recovery would extend witness 4 into the
        // region where only witness 2 achieves the minimum.
        let mut f = Plf::new(vec![
            Pt::with_via(0.0, 0.0, 4),
            Pt::with_via(10.0, 10.0, 2),
            Pt::with_via(20.0, 20.0, 2),
            Pt::with_via(30.0, 30.0, 2),
        ])
        .unwrap();
        f.simplify();
        // (20,20) merges into (10,10)'s segment (same witness); (10,10) must
        // survive because it is the witness switch.
        assert_eq!(f.len(), 3, "f={f:?}");
        assert_eq!(f.eval_with_via(5.0).1, 4);
        assert_eq!(f.eval_with_via(15.0).1, 2);
        assert_eq!(f.eval_with_via(25.0).1, 2);
    }

    #[test]
    fn same_witness_collinear_points_merge() {
        let mut f = Plf::new(vec![
            Pt::with_via(0.0, 0.0, 4),
            Pt::with_via(10.0, 10.0, 4),
            Pt::with_via(20.0, 20.0, 4),
        ])
        .unwrap();
        f.simplify();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn flat_head_with_differing_witness_is_kept() {
        let mut f = Plf::new(vec![
            Pt::with_via(0.0, 3.0, 9),
            Pt::with_via(10.0, 3.0, NO_VIA),
            Pt::with_via(20.0, 8.0, NO_VIA),
        ])
        .unwrap();
        f.simplify();
        assert_eq!(f.len(), 3);
        assert_eq!(f.eval_with_via(5.0).1, 9);
        assert_eq!(f.eval_with_via(15.0).1, NO_VIA);
    }
}
