//! Property-based pins for the batch kernels (`td_plf::batch`) and the PLF
//! edge-case sweep of ISSUE 8:
//!
//! * `eval_times_into` ≡ repeated `eval`, **bit-for-bit**, on sorted (fast
//!   path) and unsorted (fallback path) departure vectors;
//! * `eval_ids_at` ≡ per-slice `eval` across whole arenas;
//! * every eval entry point (`Plf::eval`, `Plf::eval_with_via`,
//!   `PlfSlice::eval`, `eval_with_via`, `eval_with_hint`, both batch
//!   kernels) agrees at the right-ray boundary
//!   `t ∈ {last_bp − ε, last_bp, last_bp + ε, 1e12}` — the shared
//!   `clamped_segment_value` helper makes divergence structurally
//!   impossible, and this test keeps it that way;
//! * `eval_with_hint` gallop hand-off boundaries: hints exactly at/past the
//!   8-step gallop threshold, `t` landing on breakpoints, and stale hints
//!   ≥ `times.len()` after a re-freeze compaction shrinks the function —
//!   proving index-for-index agreement with the binary-search segment rule.

use proptest::prelude::*;
use td_plf::{eval_ids_at, eval_times_into, Plf, PlfArena, NO_PLF};

/// Same FIFO generator as `proptest_arena.rs`: 1..=12 points over roughly a
/// day, values in [0, 3600].
fn fifo_plf() -> impl Strategy<Value = Plf> {
    (
        proptest::collection::vec(0.1f64..3000.0, 0..11),
        0.0f64..3600.0,
        proptest::collection::vec(0.0f64..1.0, 12),
    )
        .prop_map(|(gaps, v0, vs)| {
            let mut t = 0.0;
            let mut pts = vec![(0.0, v0)];
            for (i, gap) in gaps.iter().enumerate() {
                t += gap + 1.0;
                let prev = pts.last().unwrap().1;
                let dt = gap + 1.0;
                let lo = (prev - dt).max(0.0);
                let hi = prev + dt;
                let v = lo + vs[i] * (hi - lo);
                pts.push((t, v));
            }
            Plf::from_pairs(&pts).expect("generated points are valid")
        })
}

/// Random query times spanning the domain, including far outside it.
fn query_times() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-500.0f64..40_000.0, 1..64)
}

/// The index `eval`'s binary search assigns to `t`: largest `i` with
/// `times[i] ≤ t`, or 0 for the left ray (where the hint parks).
fn expected_hint(times: &[f64], t: f64) -> usize {
    if t < times[0] {
        0
    } else {
        times.partition_point(|&x| x <= t) - 1
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn batch_sorted_is_bit_identical_to_repeated_eval(f in fifo_plf(), ts in query_times()) {
        let mut sorted = ts;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut out = vec![0.0; sorted.len()];
        eval_times_into(s, &sorted, &mut out);
        for (&t, &got) in sorted.iter().zip(&out) {
            prop_assert_eq!(got.to_bits(), s.eval(t).to_bits(), "t={}", t);
            prop_assert_eq!(got.to_bits(), f.eval(t).to_bits(), "t={}", t);
        }
    }

    #[test]
    fn batch_unsorted_fallback_is_bit_identical(f in fifo_plf(), ts in query_times()) {
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut out = vec![0.0; ts.len()];
        eval_times_into(s, &ts, &mut out);
        for (&t, &got) in ts.iter().zip(&out) {
            prop_assert_eq!(got.to_bits(), s.eval(t).to_bits(), "t={}", t);
        }
    }

    #[test]
    fn batch_ids_matches_per_slice_eval(
        fs in proptest::collection::vec(fifo_plf(), 1..8),
        t in -500.0f64..40_000.0,
    ) {
        let mut arena = PlfArena::new();
        let mut ids: Vec<u32> = fs.iter().map(|f| arena.push(f)).collect();
        ids.push(NO_PLF); // gap entries evaluate to "unreachable"
        let mut out = vec![0.0; ids.len()];
        eval_ids_at(&arena, &ids, t, &mut out);
        for (&id, &got) in ids.iter().zip(&out) {
            if id == NO_PLF {
                prop_assert!(got.is_infinite());
            } else {
                prop_assert_eq!(got.to_bits(), arena.slice(id).eval(t).to_bits());
            }
        }
    }

    #[test]
    fn all_entry_points_agree_at_the_right_ray_boundary(f in fifo_plf()) {
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let last = f.last().t;
        // Probes straddling the last breakpoint, plus deep extrapolation.
        let eps = 1e-9 * last.abs().max(1.0);
        let probes = [last - eps, last, last + eps, 1e12];
        let mut batch = [0.0; 4];
        eval_times_into(s, &probes, &mut batch);
        let mut single = [0.0; 1];
        for (&t, &b) in probes.iter().zip(&batch) {
            let want = f.eval(t).to_bits();
            prop_assert_eq!(f.eval_with_via(t).0.to_bits(), want, "t={}", t);
            prop_assert_eq!(s.eval(t).to_bits(), want, "t={}", t);
            prop_assert_eq!(s.eval_with_via(t).0.to_bits(), want, "t={}", t);
            let mut hint = 0usize;
            prop_assert_eq!(s.eval_with_hint(t, &mut hint).to_bits(), want, "t={}", t);
            prop_assert_eq!(b.to_bits(), want, "t={}", t);
            eval_ids_at(&arena, &[id], t, &mut single);
            prop_assert_eq!(single[0].to_bits(), want, "t={}", t);
        }
    }

    #[test]
    fn hint_agrees_index_for_index_from_any_start(
        f in fifo_plf(),
        ts in query_times(),
        start in 0usize..64,
    ) {
        // Any starting hint — in range, at the boundary, or far past the end
        // (a re-freeze compaction can shrink the function under a cached
        // hint) — must land on exactly the index eval's binary search picks.
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        for &t in &ts {
            let mut hint = start;
            let got = s.eval_with_hint(t, &mut hint);
            prop_assert_eq!(got.to_bits(), s.eval(t).to_bits(), "t={}", t);
            prop_assert_eq!(hint, expected_hint(s.times(), t), "t={} start={}", t, start);
        }
    }
}

/// Deterministic gallop hand-off boundaries: a 64-segment staircase walked
/// with hints placed exactly at, just before, and past the 8-step gallop
/// threshold, with `t` landing between and exactly **on** breakpoints.
#[test]
fn gallop_handoff_boundaries_agree_index_for_index() {
    let pts: Vec<(f64, f64)> = (0..64).map(|i| (i as f64 * 10.0, (i % 7) as f64)).collect();
    let f = Plf::from_pairs(&pts).unwrap();
    let mut arena = PlfArena::new();
    let id = arena.push(&f);
    let s = arena.slice(id);
    let n = s.len();
    for start in [0usize, 1, 7, 8, 9, 16, 62, 63, 64, 100, usize::MAX] {
        for jump in [0usize, 1, 7, 8, 9, 10, 20, 63] {
            // t lands exactly on breakpoint `jump`, and just before/after it.
            let bp = pts[jump].0;
            for t in [bp - 0.5, bp, bp + 0.5] {
                let mut hint = start;
                let got = s.eval_with_hint(t, &mut hint);
                assert_eq!(
                    got.to_bits(),
                    s.eval(t).to_bits(),
                    "start={start} jump={jump} t={t}"
                );
                assert_eq!(
                    hint,
                    expected_hint(s.times(), t),
                    "start={start} jump={jump} t={t}"
                );
                assert!(hint < n);
            }
        }
    }
}

/// A stale hint that survives a re-freeze compaction (the arena re-frozen
/// with a *shorter* function under the same id) must clamp and stay correct.
#[test]
fn stale_hint_after_compaction_shrink_is_safe() {
    let long: Vec<(f64, f64)> = (0..32).map(|i| (i as f64, 1.0 + (i % 3) as f64)).collect();
    let mut arena = PlfArena::new();
    let id = arena.push(&Plf::from_pairs(&long).unwrap());
    let mut hint = 0usize;
    // Drive the hint deep into the long function.
    arena.slice(id).eval_with_hint(30.5, &mut hint);
    assert_eq!(hint, 30);

    // Re-freeze: a fresh arena where the same id now holds 2 points.
    let mut refrozen = PlfArena::new();
    let id2 = refrozen.push(&Plf::from_pairs(&[(0.0, 5.0), (10.0, 7.0)]).unwrap());
    assert_eq!(id, id2);
    let s = refrozen.slice(id2);
    // The cached hint (30) is ≥ times.len() (2); every query must clamp it
    // and agree with eval, left ray included.
    for t in [-1.0, 0.0, 4.0, 10.0, 25.0] {
        let got = s.eval_with_hint(t, &mut hint);
        assert_eq!(got.to_bits(), s.eval(t).to_bits(), "t={t}");
        assert!(hint < s.len(), "t={t}");
    }
}

/// `t` exactly on every breakpoint, swept ascending through one hint chain —
/// the hand-off between the 8-step walk and the gallop happens repeatedly.
#[test]
fn ascending_breakpoint_sweep_through_one_hint() {
    let pts: Vec<(f64, f64)> = (0..40).map(|i| (i as f64 * 3.0, (i % 5) as f64)).collect();
    let f = Plf::from_pairs(&pts).unwrap();
    let mut arena = PlfArena::new();
    let id = arena.push(&f);
    let s = arena.slice(id);
    let mut hint = 0usize;
    for (i, &(t, _)) in pts.iter().enumerate() {
        let got = s.eval_with_hint(t, &mut hint);
        assert_eq!(got.to_bits(), s.eval(t).to_bits(), "i={i}");
        assert_eq!(hint, i, "hint must land exactly on the breakpoint index");
    }
}
