//! Property-based tests for the PLF algebra — the invariants every index in
//! the workspace silently relies on.

use proptest::prelude::*;
use td_plf::{Plf, NO_VIA};

/// Strategy: a random FIFO travel-cost function with 1..=12 points over
/// roughly a day, values in [0, 3600].
fn fifo_plf() -> impl Strategy<Value = Plf> {
    (
        proptest::collection::vec(0.1f64..3000.0, 0..11),
        0.0f64..3600.0,
        proptest::collection::vec(0.0f64..1.0, 12),
    )
        .prop_map(|(gaps, v0, vs)| {
            let mut t = 0.0;
            let mut pts = vec![(0.0, v0)];
            for (i, gap) in gaps.iter().enumerate() {
                t += gap + 1.0;
                let prev = pts.last().unwrap().1;
                // Next value within FIFO bounds: slope ≥ -1 ⇒ v ≥ prev - dt.
                let dt = gap + 1.0;
                let lo = (prev - dt).max(0.0);
                let hi = prev + dt; // keep slopes ≤ +1 for variety
                let v = lo + vs[i] * (hi - lo);
                pts.push((t, v));
            }
            Plf::from_pairs(&pts).expect("generated points are valid")
        })
}

fn probe_times(fs: &[&Plf]) -> Vec<f64> {
    let mut ts: Vec<f64> = vec![-10.0, 0.0];
    for f in fs {
        for p in f.points() {
            ts.push(p.t);
            ts.push(p.t + 0.37);
            ts.push(p.t - 0.41);
        }
        ts.push(f.last().t + 100.0);
    }
    ts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn generated_functions_are_fifo(f in fifo_plf()) {
        prop_assert!(f.is_fifo());
    }

    #[test]
    fn compound_matches_pointwise_definition(f in fifo_plf(), g in fifo_plf()) {
        let h = f.compound(&g, NO_VIA);
        for t in probe_times(&[&f, &g, &h]) {
            let fv = f.eval(t);
            let want = fv + g.eval(t + fv);
            prop_assert!((h.eval(t) - want).abs() < 1e-6,
                "t={t} want={want} got={}", h.eval(t));
        }
    }

    #[test]
    fn compound_preserves_fifo(f in fifo_plf(), g in fifo_plf()) {
        prop_assert!(f.compound(&g, NO_VIA).is_fifo());
    }

    #[test]
    fn compound_is_associative(f in fifo_plf(), g in fifo_plf(), h in fifo_plf()) {
        let left = f.compound(&g, NO_VIA).compound(&h, NO_VIA);
        let right = f.compound(&g.compound(&h, NO_VIA), NO_VIA);
        prop_assert!(left.approx_eq(&right, 1e-5),
            "left={left:?}\nright={right:?}");
    }

    #[test]
    fn zero_is_identity_for_compound(f in fifo_plf()) {
        let z = Plf::zero();
        prop_assert!(z.compound(&f, NO_VIA).approx_eq(&f, 1e-7));
        prop_assert!(f.compound(&z, NO_VIA).approx_eq(&f, 1e-7));
    }

    #[test]
    fn minimum_matches_pointwise_definition(f in fifo_plf(), g in fifo_plf()) {
        let h = f.minimum(&g);
        for t in probe_times(&[&f, &g, &h]) {
            let want = f.eval(t).min(g.eval(t));
            prop_assert!((h.eval(t) - want).abs() < 1e-6,
                "t={t} want={want} got={}", h.eval(t));
        }
    }

    #[test]
    fn minimum_is_commutative(f in fifo_plf(), g in fifo_plf()) {
        prop_assert!(f.minimum(&g).approx_eq(&g.minimum(&f), 1e-7));
    }

    #[test]
    fn minimum_is_idempotent(f in fifo_plf()) {
        prop_assert!(f.minimum(&f).approx_eq(&f, 1e-7));
    }

    #[test]
    fn minimum_is_associative(f in fifo_plf(), g in fifo_plf(), h in fifo_plf()) {
        let left = f.minimum(&g).minimum(&h);
        let right = f.minimum(&g.minimum(&h));
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn minimum_preserves_fifo(f in fifo_plf(), g in fifo_plf()) {
        prop_assert!(f.minimum(&g).is_fifo());
    }

    #[test]
    fn minimum_lower_bounds_both(f in fifo_plf(), g in fifo_plf()) {
        let h = f.minimum(&g);
        for t in probe_times(&[&f, &g]) {
            prop_assert!(h.eval(t) <= f.eval(t) + 1e-7);
            prop_assert!(h.eval(t) <= g.eval(t) + 1e-7);
        }
    }

    #[test]
    fn simplify_preserves_values(f in fifo_plf()) {
        let s = f.simplified();
        prop_assert!(s.len() <= f.len());
        for t in probe_times(&[&f]) {
            prop_assert!((s.eval(t) - f.eval(t)).abs() < 1e-6,
                "t={t}: {} vs {}", s.eval(t), f.eval(t));
        }
    }

    #[test]
    fn compound_distributes_over_min_on_the_left(
        f in fifo_plf(), g in fifo_plf(), h in fifo_plf()
    ) {
        // f ∘ min(g,h) == min(f∘g, f∘h): both legs depart at the same arrival
        // time, so minimising afterwards is the same as minimising first.
        let a = f.compound(&g.minimum(&h), NO_VIA);
        let b = f.compound(&g, NO_VIA).minimum(&f.compound(&h, NO_VIA));
        prop_assert!(a.approx_eq(&b, 1e-5), "a={a:?}\nb={b:?}");
    }

    #[test]
    fn eval_is_clamped_and_bounded(f in fifo_plf()) {
        let (lo, hi) = (f.min_value(), f.max_value());
        for t in probe_times(&[&f]) {
            let v = f.eval(t);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
        prop_assert!((f.eval(-1e9) - f.first().v).abs() < 1e-12);
        prop_assert!((f.eval(1e9) - f.last().v).abs() < 1e-12);
    }

    #[test]
    fn min_value_lower_bounds_compound(f in fifo_plf(), g in fifo_plf()) {
        // Used by A* and Algo. 6 pruning: min over the whole day of the
        // compound is at least the sum of the individual minima.
        let h = f.compound(&g, NO_VIA);
        prop_assert!(h.min_value() >= f.min_value() + g.min_value() - 1e-7);
    }
}
