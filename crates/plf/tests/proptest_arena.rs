//! Property-based agreement between the frozen [`PlfArena`]/[`PlfSlice`]
//! representation and the owned [`Plf`] it was frozen from: every index in
//! the workspace now evaluates slices on its hot path, so exact agreement
//! (not approximate!) with the `Plf` semantics is load-bearing.

use proptest::prelude::*;
use td_plf::{Plf, PlfArena};

/// Strategy: a random FIFO travel-cost function with 1..=12 points over
/// roughly a day, values in [0, 3600] (same generator as `proptest_plf.rs`).
fn fifo_plf() -> impl Strategy<Value = Plf> {
    (
        proptest::collection::vec(0.1f64..3000.0, 0..11),
        0.0f64..3600.0,
        proptest::collection::vec(0.0f64..1.0, 12),
    )
        .prop_map(|(gaps, v0, vs)| {
            let mut t = 0.0;
            let mut pts = vec![(0.0, v0)];
            for (i, gap) in gaps.iter().enumerate() {
                t += gap + 1.0;
                let prev = pts.last().unwrap().1;
                let dt = gap + 1.0;
                let lo = (prev - dt).max(0.0);
                let hi = prev + dt;
                let v = lo + vs[i] * (hi - lo);
                pts.push((t, v));
            }
            Plf::from_pairs(&pts).expect("generated points are valid")
        })
}

/// Random query times spanning the domain, including far outside it.
fn query_times() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-500.0f64..40_000.0, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn slice_eval_agrees_exactly_with_plf(f in fifo_plf(), ts in query_times()) {
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        for t in ts {
            // Bit-for-bit: both run the same partition_point + lerp.
            prop_assert_eq!(s.eval(t), f.eval(t), "t={}", t);
            let (v, via) = s.eval_with_via(t);
            let (wv, wvia) = f.eval_with_via(t);
            prop_assert_eq!(v, wv);
            prop_assert_eq!(via, wvia);
        }
    }

    #[test]
    fn eval_with_hint_agrees_on_random_order(f in fifo_plf(), ts in query_times()) {
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut hint = 0usize;
        for t in ts {
            prop_assert_eq!(s.eval_with_hint(t, &mut hint), f.eval(t), "t={}", t);
        }
    }

    #[test]
    fn eval_with_hint_agrees_on_ascending_sweeps(f in fifo_plf(), ts in query_times()) {
        let mut sorted = ts;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let mut hint = 0usize;
        for t in sorted {
            prop_assert_eq!(s.eval_with_hint(t, &mut hint), f.eval(t), "t={}", t);
        }
    }

    #[test]
    fn bounds_bound_all_sampled_evaluations(f in fifo_plf(), ts in query_times()) {
        let mut arena = PlfArena::new();
        let id = arena.push(&f);
        let s = arena.slice(id);
        let (lo, hi) = (arena.min_cost(id), arena.max_cost(id));
        prop_assert!(lo <= hi);
        for t in ts {
            let v = s.eval(t);
            prop_assert!(v >= lo, "eval({}) = {} below min_cost {}", t, v, lo);
            prop_assert!(v <= hi, "eval({}) = {} above max_cost {}", t, v, hi);
        }
        // The bounds are attained at breakpoints, so they are tight.
        prop_assert_eq!(lo, s.min_value());
        prop_assert_eq!(hi, s.max_value());
    }

    #[test]
    fn arena_persist_round_trips_bit_identically(
        fs in proptest::collection::vec(fifo_plf(), 1..8),
        ts in query_times(),
    ) {
        use td_store::Persist;
        let mut arena = PlfArena::new();
        for f in &fs {
            arena.push(f);
        }
        let mut buf = Vec::new();
        arena.write_into(&mut buf).expect("write");
        let mut r = buf.as_slice();
        let back = PlfArena::read_from(&mut r).expect("read");
        prop_assert!(r.is_empty(), "trailing bytes after arena read");
        prop_assert_eq!(back.len(), arena.len());
        prop_assert_eq!(back.total_points(), arena.total_points());
        for id in 0..arena.len() as u32 {
            prop_assert_eq!(back.min_cost(id).to_bits(), arena.min_cost(id).to_bits());
            prop_assert_eq!(back.max_cost(id).to_bits(), arena.max_cost(id).to_bits());
            for &t in &ts {
                prop_assert_eq!(
                    back.slice(id).eval(t).to_bits(),
                    arena.slice(id).eval(t).to_bits()
                );
                prop_assert_eq!(back.slice(id).eval_with_via(t).1, arena.slice(id).eval_with_via(t).1);
            }
        }
    }

    #[test]
    fn arena_holds_many_functions_without_crosstalk(
        fs in proptest::collection::vec(fifo_plf(), 1..8),
        ts in query_times(),
    ) {
        let mut arena = PlfArena::new();
        let ids: Vec<_> = fs.iter().map(|f| arena.push(f)).collect();
        for (f, &id) in fs.iter().zip(&ids) {
            prop_assert_eq!(arena.slice(id).len(), f.len());
            for &t in &ts {
                prop_assert_eq!(arena.slice(id).eval(t), f.eval(t));
            }
        }
    }
}
