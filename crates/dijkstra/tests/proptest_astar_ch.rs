//! Property tests for the lazy CH-potential TD-A\* fast path:
//!
//! * costs are **bit-identical** to `shortest_path_cost_frozen_with` over
//!   random TD graphs × random departure times (A\* reorders the search,
//!   never the arithmetic);
//! * the potential is *admissible* (`h(v)` never exceeds any realizable TD
//!   cost `v → d`) and *consistent* (`h(u) ≤ w_min(u,v) + h(v)` for every
//!   edge) — the two properties A\*'s exactness argument rests on;
//! * both properties also hold for the legacy full-backward-Dijkstra
//!   potential, and the two potentials agree (both are exact min-graph
//!   distances).

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use td_ch::ContractionHierarchy;
use td_dijkstra::{
    astar_cost_frozen_with, AStarScratch, ChPotential, ChPotentialScratch, DijkstraScratch,
    FullPotential, FullPotentialScratch, Potential,
};
use td_gen::random_graph::seeded_graph;
use td_plf::DAY;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ch_astar_is_bit_identical_to_frozen_dijkstra(
        seed in 0u64..1_000,
        n in 10usize..48,
        queries in 4usize..24,
    ) {
        let g = seeded_graph(seed, n, n + n / 2, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut dj = DijkstraScratch::default();
        let mut astar_sc = AStarScratch::default();
        let mut pot_sc = ChPotentialScratch::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa57a);
        for _ in 0..queries {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let want = td_dijkstra::shortest_path_cost_frozen_with(&mut dj, &fg, s, d, t);
            let mut pot = ChPotential::new(&ch, &mut pot_sc);
            let got = astar_cost_frozen_with(&mut astar_sc, &fg, &mut pot, s, d, t);
            prop_assert_eq!(
                want.map(f64::to_bits),
                got.map(f64::to_bits),
                "seed={} s={} d={} t={}: {:?} vs {:?}",
                seed, s, d, t, want, got
            );
        }
    }

    #[test]
    fn potentials_are_admissible_and_consistent(
        seed in 0u64..1_000,
        n in 10usize..40,
    ) {
        let g = seeded_graph(seed, n, n + n / 3, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut ch_sc = ChPotentialScratch::default();
        let mut full_sc = FullPotentialScratch::default();
        let mut dj = DijkstraScratch::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xad31);
        for _ in 0..4 {
            let d = rng.gen_range(0..n) as u32;
            let mut lazy = ChPotential::new(&ch, &mut ch_sc);
            let mut full = FullPotential::new(&fg, &mut full_sc);
            // Anchor both at t = 0: the CH then uses metric 0 (the
            // whole-day minimum), which must agree with the legacy full
            // potential; consistency below is tested against `w_min`.
            lazy.init(d, 0.0);
            full.init(d, 0.0);
            prop_assert_eq!(lazy.h(d), 0.0, "h(d) must be 0 (d={})", d);
            for u in 0..n as u32 {
                let hu = lazy.h(u);
                let hu_full = full.h(u);
                // The two exact min-graph potentials agree.
                if hu.is_finite() || hu_full.is_finite() {
                    prop_assert!(
                        (hu - hu_full).abs() < 1e-9,
                        "potentials disagree at v={} d={}: {} vs {}",
                        u, d, hu, hu_full
                    );
                }
                // Consistency: h(u) ≤ w_min(u,v) + h(v) for every edge.
                let (heads, _, mins) = fg.out_slices_with_min(u);
                for (&v, &min) in heads.iter().zip(mins.iter()) {
                    let hv = lazy.h(v);
                    prop_assert!(
                        hu <= min + hv + 1e-9,
                        "inconsistent edge ({},{}) d={}: {} > {} + {}",
                        u, v, d, hu, min, hv
                    );
                }
                // Admissibility against the true TD cost at a random time.
                let t = rng.gen_range(0.0..DAY);
                if let Some(c) = td_dijkstra::shortest_path_cost_frozen_with(&mut dj, &fg, u, d, t)
                {
                    prop_assert!(
                        hu <= c + 1e-9,
                        "h({})={} exceeds TD cost {} (d={}, t={})",
                        u, hu, c, d, t
                    );
                }
            }
        }
    }

    /// The time-anchored suffix-window metrics must stay admissible and
    /// consistent *for their own departure window*: anchored at `t`, `h`
    /// lower-bounds TD costs entered at any `τ ≥ t`.
    #[test]
    fn windowed_potentials_are_admissible_for_their_window(
        seed in 0u64..1_000,
        n in 10usize..36,
    ) {
        let g = seeded_graph(seed, n, n + n / 3, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut ch_sc = ChPotentialScratch::default();
        let mut dj = DijkstraScratch::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x717e);
        for _ in 0..4 {
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let mut pot = ChPotential::new(&ch, &mut ch_sc);
            pot.init(d, t);
            for u in 0..n as u32 {
                let hu = pot.h(u);
                // Edge-wise consistency at entry times ≥ t (the search can
                // only enter edges at arrival times ≥ the departure).
                let (heads, edges, _) = fg.out_slices_with_min(u);
                for (&v, &e) in heads.iter().zip(edges.iter()) {
                    let hv = pot.h(v);
                    for frac in [0.0, 0.3, 1.0] {
                        let tau = t + frac * (DAY * 1.2 - t);
                        let w = fg.weight(e).eval(tau);
                        prop_assert!(
                            hu <= w + hv + 1e-9,
                            "window-inconsistent edge ({},{}) d={} t={} tau={}: {} > {} + {}",
                            u, v, d, t, tau, hu, w, hv
                        );
                    }
                }
                // Admissibility against the true TD cost departing at t.
                if let Some(c) = td_dijkstra::shortest_path_cost_frozen_with(&mut dj, &fg, u, d, t)
                {
                    prop_assert!(
                        hu <= c + 1e-9,
                        "h({})={} exceeds TD cost {} (d={}, t={})",
                        u, hu, c, d, t
                    );
                }
            }
        }
    }
}
