//! Randomized agreement tests between the three non-index algorithms — the
//! foundation of every later correctness claim: if these agree, the profile
//! search can serve as the oracle for the index crates.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_dijkstra::{astar_cost, profile_search, shortest_path, shortest_path_cost};
use td_gen::random_graph::seeded_graph;
use td_plf::DAY;

#[test]
fn scalar_profile_and_astar_agree_on_random_graphs() {
    for seed in 0..8u64 {
        let g = seeded_graph(seed, 40, 30, 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..6 {
            let s = rng.gen_range(0..40) as u32;
            let prof = profile_search(&g, s);
            for _ in 0..4 {
                let d = rng.gen_range(0..40) as u32;
                let t = rng.gen_range(0.0..DAY);
                let scalar = shortest_path_cost(&g, s, d, t);
                let profile = prof.cost(d, t);
                let astar = astar_cost(&g, s, d, t);
                match (scalar, profile, astar) {
                    (Some(a), Some(b), Some(c)) => {
                        assert!(
                            (a - b).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: scalar {a} vs profile {b}"
                        );
                        assert!(
                            (a - c).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: scalar {a} vs astar {c}"
                        );
                    }
                    (None, None, None) => {}
                    other => panic!("reachability disagreement seed={seed} s={s} d={d}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn recovered_paths_are_valid_and_tight() {
    for seed in 20..26u64 {
        let g = seeded_graph(seed, 30, 25, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let s = rng.gen_range(0..30) as u32;
            let d = rng.gen_range(0..30) as u32;
            let t = rng.gen_range(0.0..DAY);
            if let Some((cost, path)) = shortest_path(&g, s, d, t) {
                assert!(path.is_valid(&g));
                assert_eq!(path.source(), s);
                assert_eq!(path.destination(), d);
                let replay = path.cost(&g, t).unwrap();
                assert!(
                    (cost - replay).abs() < 1e-6,
                    "seed={seed} s={s} d={d} t={t}: {cost} vs replay {replay}"
                );
            }
        }
    }
}

#[test]
fn profile_path_recovery_is_consistent_across_the_day() {
    for seed in 40..44u64 {
        let g = seeded_graph(seed, 25, 20, 4);
        let prof = profile_search(&g, 0);
        for d in 1..25u32 {
            for k in 0..8 {
                let t = k as f64 * DAY / 8.0;
                if let Some(c) = prof.cost(d, t) {
                    let p = prof.path(d, t).expect("reachable vertex has a path");
                    let replay = p.cost(&g, t).unwrap();
                    assert!(
                        (c - replay).abs() < 1e-5,
                        "seed={seed} d={d} t={t}: {c} vs {replay} via {p}"
                    );
                }
            }
        }
    }
}
