// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Query budgets: cooperative cancellation for the frozen hot loops.
//!
//! A [`QueryBudget`] caps how much work a single query may spend — a settle
//! count and/or a wall-clock deadline — and is checked at checkpoints the
//! hot loops already pass through. The settle cap costs one integer compare
//! per settle; the clock is read only once every [`DEADLINE_STRIDE`]
//! settles, so an unlimited budget adds a single predictable branch and no
//! syscalls to the 52 µs A\*-CH path (`benches/budget_overhead.rs` guards
//! the bill).
//!
//! When the budget runs out the search does not fail — it reports what it
//! already proved. The minimum heap key at the stop is an admissible lower
//! bound on the destination's arrival (plain Dijkstra orders by arrival;
//! A\* keys add a consistent potential with `h(d) = 0`), and the tentative
//! target label, when a path has been found, is an upper bound. The caller
//! gets a bracketing [`BoundedCost::Exhausted`] interval instead of a wrong
//! answer — bounded-quality answers as a first-class oracle product
//! (Kontogiannis et al.), with the bracket produced by the frontier the
//! same way the Strasser–Wagner–Zeitz line gets it from CH bounds.

use std::time::{Duration, Instant};

/// The wall clock is read once every this many settles (a power of two, so
/// the checkpoint is a mask + compare). A thousand settles is tens of
/// microseconds of work on the frozen layout, keeping deadline overshoot
/// well under a millisecond without paying a clock read per settle.
pub const DEADLINE_STRIDE: u64 = 1024;

/// A per-query work cap: maximum number of settled vertices and/or a
/// wall-clock deadline. `Copy`, lock-free, and shareable across threads —
/// one budget value can serve a whole batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryBudget {
    max_settles: u64,
    deadline: Option<Instant>,
}

impl QueryBudget {
    /// No cap at all: the bounded entry points behave bit-identically to
    /// their unbounded counterparts.
    pub const UNLIMITED: QueryBudget = QueryBudget {
        max_settles: u64::MAX,
        deadline: None,
    };

    /// Cap the number of settled vertices (0 stops before the first settle).
    pub fn settles(max_settles: u64) -> QueryBudget {
        QueryBudget {
            max_settles,
            deadline: None,
        }
    }

    /// Add an absolute wall-clock deadline, keeping the settle cap.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> QueryBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Add a deadline `timeout` from now, keeping the settle cap.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> QueryBudget {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Deadline-only budget: no settle cap, stop `timeout` from now.
    pub fn timeout(timeout: Duration) -> QueryBudget {
        QueryBudget::UNLIMITED.with_timeout(timeout)
    }

    /// Tightens the budget with an optional second deadline, keeping the
    /// *earlier* of the two (and the settle cap). This is the deadline
    /// propagation primitive: a serving layer merges each request's client
    /// deadline into the batch's policy budget without ever loosening it.
    #[must_use]
    pub fn tightened_to(mut self, deadline: Option<Instant>) -> QueryBudget {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// The settle cap (`u64::MAX` = uncapped).
    pub fn max_settles(&self) -> u64 {
        self.max_settles
    }

    /// The wall-clock deadline, if armed.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True iff this budget can never exhaust a search.
    pub fn is_unlimited(&self) -> bool {
        *self == QueryBudget::UNLIMITED
    }

    /// True when the wall-clock deadline (if any) has already passed.
    #[inline]
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The checkpoint the hot loops run before settling vertex number
    /// `settles` (0-based): one integer compare, plus a clock read every
    /// [`DEADLINE_STRIDE`] settles when a deadline is armed. The stride
    /// includes 0, so an already-expired deadline exhausts the search
    /// before any work happens.
    // td-lint: hot
    #[inline]
    pub fn exhausted(&self, settles: u64) -> bool {
        settles >= self.max_settles
            || (settles & (DEADLINE_STRIDE - 1) == 0 && self.deadline_passed())
    }
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::UNLIMITED
    }
}

/// Outcome of a budget-bounded frozen search, in travel-cost space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BoundedCost {
    /// The search ran to completion: the exact answer, bit-identical to the
    /// unbounded entry point (`None` = destination proven unreachable).
    Exact(Option<f64>),
    /// The budget ran out first. If the destination is reachable, its exact
    /// travel cost lies in `[lower, upper]`. `upper` is finite iff a
    /// concrete path to the destination was already found, so a finite
    /// upper bound also proves reachability; an infinite one leaves it
    /// open. Exhaustion never claims unreachability.
    Exhausted {
        /// Admissible lower bound on the travel cost (≥ 0).
        lower: f64,
        /// Upper bound witnessed by a found path, or `f64::INFINITY`.
        upper: f64,
    },
}

impl BoundedCost {
    /// Builds the bracketing interval from arrival space: `frontier_key` is
    /// the minimum heap key at the stop (an admissible lower bound on the
    /// destination's arrival), `upper_arrival` the tentative target label
    /// (`INFINITY` when no path has been found yet), `t` the departure.
    pub(crate) fn exhausted_from_arrivals(
        frontier_key: f64,
        upper_arrival: f64,
        t: f64,
    ) -> BoundedCost {
        BoundedCost::Exhausted {
            // The frontier key never exceeds the tentative target key (the
            // target's own heap entry is part of the frontier), but clamp
            // anyway so the interval is well-formed by construction.
            lower: (frontier_key.min(upper_arrival) - t).max(0.0),
            upper: upper_arrival - t,
        }
    }

    /// True for [`BoundedCost::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, BoundedCost::Exact(_))
    }
}

/// Internal tri-state the frozen goal-directed searches return.
pub(crate) enum FrozenOutcome {
    /// Destination settled: its exact arrival time.
    Reached(f64),
    /// Search ran dry: destination proven unreachable.
    Unreachable,
    /// Budget exhausted: minimum heap key and tentative target arrival
    /// (`INFINITY` when the destination was never reached).
    Exhausted { frontier_key: f64, target_best: f64 },
}

/// Scalar variant of [`FrozenOutcome`]: the arrival/tentative labels stay
/// in the scratch, so only the frontier key travels back.
pub(crate) enum RunStatus {
    Complete,
    Exhausted { frontier_key: f64 },
}

// Compile-time pin: one budget value is shared across a whole batch's
// worker threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<QueryBudget>()
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = QueryBudget::UNLIMITED;
        assert!(b.is_unlimited());
        for settles in [0, 1, 1023, 1024, u64::MAX - 1] {
            assert!(!b.exhausted(settles));
        }
        assert!(!b.deadline_passed());
    }

    #[test]
    fn settle_cap_is_exact() {
        let b = QueryBudget::settles(10);
        assert!(!b.exhausted(9));
        assert!(b.exhausted(10));
        assert!(b.exhausted(11));
        assert!(QueryBudget::settles(0).exhausted(0));
    }

    #[test]
    fn expired_deadline_fires_at_stride_zero() {
        let b = QueryBudget::UNLIMITED.with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.deadline_passed());
        assert!(b.exhausted(0));
        // Off-stride settles skip the clock read entirely.
        assert!(!b.exhausted(1));
        assert!(b.exhausted(DEADLINE_STRIDE));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let b = QueryBudget::timeout(Duration::from_secs(3600));
        assert!(!b.exhausted(0));
        assert!(!b.exhausted(DEADLINE_STRIDE));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn tightened_to_keeps_the_earlier_deadline() {
        let near = Instant::now() + Duration::from_millis(10);
        let far = near + Duration::from_secs(10);
        let b = QueryBudget::settles(100).with_deadline(far);
        assert_eq!(b.tightened_to(Some(near)).deadline(), Some(near));
        // Tightening never loosens: an earlier armed deadline survives.
        let b = QueryBudget::settles(100).with_deadline(near);
        assert_eq!(b.tightened_to(Some(far)).deadline(), Some(near));
        // None leaves the budget untouched; a deadline lands on a bare cap.
        assert_eq!(b.tightened_to(None), b);
        assert_eq!(
            QueryBudget::settles(100)
                .tightened_to(Some(near))
                .deadline(),
            Some(near)
        );
        assert_eq!(b.tightened_to(Some(far)).max_settles(), 100);
    }

    #[test]
    fn exhausted_interval_is_well_formed() {
        // No path found yet: upper stays infinite, lower comes from the key.
        let c = BoundedCost::exhausted_from_arrivals(130.0, f64::INFINITY, 100.0);
        assert_eq!(
            c,
            BoundedCost::Exhausted {
                lower: 30.0,
                upper: f64::INFINITY
            }
        );
        // Path found: the frontier key bounds below, the label above.
        let c = BoundedCost::exhausted_from_arrivals(120.0, 150.0, 100.0);
        assert_eq!(
            c,
            BoundedCost::Exhausted {
                lower: 20.0,
                upper: 50.0
            }
        );
        assert!(!c.is_exact());
        // Degenerate key below departure clamps to 0.
        match BoundedCost::exhausted_from_arrivals(90.0, f64::INFINITY, 100.0) {
            BoundedCost::Exhausted { lower, upper } => {
                assert_eq!(lower, 0.0);
                assert!(upper.is_infinite());
            }
            other => panic!("{other:?}"),
        }
    }
}
