//! Bidirectional time-dependent search with a static backward bound.
//!
//! Plain bidirectional Dijkstra does not work on time-dependent graphs: the
//! backward search would need to know arrival times before they are decided.
//! The classic workaround (\[20\], Nannicini et al.) runs the backward search
//! on a *static lower-bound* graph (each edge weighted by its minimum cost
//! over the day) only to restrict the forward search's vertex set, then runs
//! the exact forward search inside that corridor, keeping correctness while
//! touching far fewer vertices on long-range queries.
//!
//! This is a non-index baseline like `scalar`/`astar`; the paper's §6 cites
//! the approach among the improved Dijkstra variants that "can not work well
//! in the really large-scale road networks" — which our benchmarks reproduce
//! relative to the tree index.

use crate::astar::LowerBounds;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use td_graph::{TdGraph, VertexId};

#[derive(Copy, Clone)]
struct Entry {
    key: f64,
    vertex: VertexId,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.vertex == other.vertex
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .partial_cmp(&self.key)
            .expect("keys are finite")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Corridor-restricted time-dependent query: an exact forward TD-Dijkstra
/// that only expands vertices whose static lower-bound distance to `d` keeps
/// them potentially on an optimal path.
///
/// `slack` widens the corridor (`≥ 1.0`); `1.0` is already exact because the
/// pruning condition uses admissible bounds, larger values only trade time
/// for fewer bound lookups on re-used [`LowerBounds`].
pub fn bidirectional_cost(
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
    bounds: &LowerBounds,
) -> Option<f64> {
    assert_eq!(
        bounds.destination, d,
        "bounds computed for a different target"
    );
    if s == d {
        return Some(0.0);
    }
    if bounds.h[s as usize].is_infinite() {
        return None;
    }
    let n = g.num_vertices();
    let mut settled = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    let mut best_to_d = f64::INFINITY;
    best[s as usize] = t;
    heap.push(Entry { key: t, vertex: s });
    while let Some(Entry { key: _, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        let arr = best[u as usize];
        if u == d {
            best_to_d = arr;
            break;
        }
        // Corridor pruning: if even the static lower bound cannot beat the
        // best known arrival at d, this vertex cannot improve the answer.
        if arr + bounds.h[u as usize] >= best_to_d {
            continue;
        }
        for &(v, e) in g.out_edges(u) {
            if settled[v as usize] || bounds.h[v as usize].is_infinite() {
                continue;
            }
            let cand = arr + g.weight(e).eval(arr);
            if cand < best[v as usize] && cand + bounds.h[v as usize] < best_to_d {
                best[v as usize] = cand;
                if v == d {
                    best_to_d = best_to_d.min(cand);
                }
                heap.push(Entry {
                    key: cand,
                    vertex: v,
                });
            }
        }
    }
    let arr = if best_to_d.is_finite() {
        best_to_d
    } else if best[d as usize].is_finite() {
        best[d as usize]
    } else {
        return None;
    };
    Some(arr - t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::shortest_path_cost;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_plf::DAY;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5u64 {
            let g = td_gen::random_graph::seeded_graph(seed, 40, 30, 3);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xb1d1);
            for _ in 0..5 {
                let d = rng.gen_range(0..40) as u32;
                let bounds = LowerBounds::new(&g, d);
                for _ in 0..6 {
                    let s = rng.gen_range(0..40) as u32;
                    let t = rng.gen_range(0.0..DAY);
                    let want = shortest_path_cost(&g, s, d, t);
                    let got = bidirectional_cost(&g, s, d, t, &bounds);
                    match (want, got) {
                        (Some(a), Some(b)) => assert!(
                            (a - b).abs() < 1e-6,
                            "seed={seed} s={s} d={d} t={t}: {a} vs {b}"
                        ),
                        (None, None) => {}
                        other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn handles_unreachable_and_self() {
        use td_graph::TdGraph;
        use td_plf::Plf;
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        let bounds = LowerBounds::new(&g, 2);
        assert_eq!(bidirectional_cost(&g, 0, 2, 0.0, &bounds), None);
        let bounds = LowerBounds::new(&g, 0);
        assert_eq!(bidirectional_cost(&g, 0, 0, 5.0, &bounds), Some(0.0));
    }
}
