// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Bidirectional time-dependent search with a static backward bound.
//!
//! Plain bidirectional Dijkstra does not work on time-dependent graphs: the
//! backward search would need to know arrival times before they are decided.
//! The classic workaround (\[20\], Nannicini et al.) runs the backward search
//! on a *static lower-bound* graph (each edge weighted by its minimum cost
//! over the day) only to restrict the forward search's vertex set, then runs
//! the exact forward search inside that corridor, keeping correctness while
//! touching far fewer vertices on long-range queries.
//!
//! The frozen port ([`bidirectional_cost_frozen_with`]) runs the same
//! corridor search on the CSR/arena layout with the interleaved per-edge
//! `min_cost` pruning the scalar sweeps got, generation-stamped scratch, and
//! any [`Potential`] as the backward bound — the legacy [`TdGraph`] entry
//! point stays as the reference implementation. Unlike A\*, the forward
//! search keeps plain arrival order and uses the bound only to discard
//! vertices; with the same potential, A\* settles strictly fewer vertices,
//! which `benches/potentials.rs` makes measurable.

use crate::astar::{AStarScratch, Entry, LowerBounds};
use crate::budget::{BoundedCost, FrozenOutcome, QueryBudget};
use crate::potential::Potential;
use std::collections::BinaryHeap;
use td_graph::{FrozenGraph, TdGraph, VertexId};

/// Reusable search state for the frozen corridor search — the same
/// generation-stamped arrays the frozen A\* uses (the corridor search just
/// leaves the parent array untouched), so one per-worker scratch serves
/// both entry points.
pub type BidirectionalScratch = AStarScratch;

/// Corridor-restricted time-dependent query on the frozen layout: an exact
/// forward TD-Dijkstra (arrival order) that discards any vertex whose
/// static lower bound to `d` proves it cannot improve the best known
/// arrival, with the per-edge `min_cost` prune applied before every
/// breakpoint evaluation.
// td-lint: hot
pub fn bidirectional_cost_frozen_with<P: Potential>(
    scratch: &mut BidirectionalScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<f64> {
    match run_corridor(scratch, fg, pot, s, d, t, &QueryBudget::UNLIMITED) {
        FrozenOutcome::Reached(arr) => Some(arr - t),
        // An unlimited budget never exhausts.
        FrozenOutcome::Unreachable | FrozenOutcome::Exhausted { .. } => None,
    }
}

/// [`bidirectional_cost_frozen_with`] under a [`QueryBudget`]: the identical
/// corridor search (bit-identical when it completes), stopping at the
/// budget's checkpoints. The forward search orders by plain arrival, so on
/// exhaustion the frontier's minimum key is an admissible lower bound on the
/// destination's arrival (edge costs are non-negative) and the tentative
/// arrival at `d` (if a path was found) an upper bound.
// td-lint: hot
pub fn bidirectional_cost_frozen_bounded_with<P: Potential>(
    scratch: &mut BidirectionalScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
    budget: &QueryBudget,
) -> BoundedCost {
    match run_corridor(scratch, fg, pot, s, d, t, budget) {
        FrozenOutcome::Reached(arr) => BoundedCost::Exact(Some(arr - t)),
        FrozenOutcome::Unreachable => BoundedCost::Exact(None),
        FrozenOutcome::Exhausted {
            frontier_key,
            target_best,
        } => BoundedCost::exhausted_from_arrivals(frontier_key, target_best, t),
    }
}

/// The shared corridor search; returns the arrival time at `d`.
// td-lint: hot
fn run_corridor<P: Potential>(
    scratch: &mut BidirectionalScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
    budget: &QueryBudget,
) -> FrozenOutcome {
    if s == d {
        // Arrival = departure; skip the potential setup entirely (but drop
        // the previous query's counters so a later export sees this query).
        scratch.stats.reset();
        return FrozenOutcome::Reached(t);
    }
    debug_assert!((s as usize) < fg.num_vertices() && (d as usize) < fg.num_vertices());
    let gen = scratch.reset(fg.num_vertices());
    pot.init(d, t);
    if pot.h(s).is_infinite() {
        return FrozenOutcome::Unreachable;
    }
    scratch.best[s as usize] = t;
    scratch.stamp[s as usize] = gen;
    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
    scratch.heap.push(Entry { key: t, vertex: s });
    let mut best_to_d = f64::INFINITY;
    let mut settles: u64 = 0;
    while let Some(Entry { key, vertex: u }) = scratch.heap.pop() {
        if scratch.stamp[u as usize] == gen + 1 {
            continue; // stale
        }
        // Budget checkpoint. Settling the destination itself is always
        // free — it finishes the query without relaxing a single edge.
        if u != d && budget.exhausted(settles) {
            return FrozenOutcome::Exhausted {
                frontier_key: key,
                target_best: best_to_d,
            };
        }
        settles += 1;
        scratch.stats.settle(1);
        scratch.stamp[u as usize] = gen + 1;
        let arr = scratch.best[u as usize];
        if u == d {
            best_to_d = arr;
            break;
        }
        // Corridor pruning: if even the static lower bound cannot beat the
        // best known arrival at d, this vertex cannot improve the answer.
        if arr + pot.h(u) >= best_to_d {
            scratch.stats.corridor_kill(1);
            continue;
        }
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        scratch.stats.relax(heads.len() as u64);
        for ((&v, &e), &min) in heads.iter().zip(edges.iter()).zip(mins.iter()) {
            if scratch.stamp[v as usize] == gen + 1 {
                continue;
            }
            let known = if scratch.stamp[v as usize] >= gen {
                scratch.best[v as usize]
            } else {
                f64::INFINITY
            };
            // Min-bound prune before touching the breakpoints.
            if arr + min >= known || arr + min >= best_to_d {
                scratch.stats.prune(1);
                continue;
            }
            let hv = pot.h(v);
            if hv.is_infinite() {
                scratch.stats.prune(1);
                continue;
            }
            let cand = arr + fg.weight(e).eval(arr);
            scratch.stats.eval_scalar(1);
            if cand < known && cand + hv < best_to_d {
                scratch.best[v as usize] = cand;
                scratch.stamp[v as usize] = gen;
                if v == d {
                    best_to_d = best_to_d.min(cand);
                }
                scratch.stats.heap_push(1);
                // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
                scratch.heap.push(Entry {
                    key: cand,
                    vertex: v,
                });
            }
        }
    }
    if best_to_d.is_finite() {
        FrozenOutcome::Reached(best_to_d)
    } else {
        FrozenOutcome::Unreachable
    }
}

/// Corridor-restricted time-dependent query: an exact forward TD-Dijkstra
/// that only expands vertices whose static lower-bound distance to `d` keeps
/// them potentially on an optimal path. Legacy [`TdGraph`] reference; the
/// hot path is [`bidirectional_cost_frozen_with`].
pub fn bidirectional_cost(
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
    bounds: &LowerBounds,
) -> Option<f64> {
    // td-lint: allow(assert-policy) public precondition on the legacy reference path, not hot
    assert_eq!(
        bounds.destination, d,
        "bounds computed for a different target"
    );
    if s == d {
        return Some(0.0);
    }
    if bounds.h[s as usize].is_infinite() {
        return None;
    }
    let n = g.num_vertices();
    let mut settled = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    let mut best_to_d = f64::INFINITY;
    best[s as usize] = t;
    heap.push(Entry { key: t, vertex: s });
    while let Some(Entry { key: _, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        let arr = best[u as usize];
        if u == d {
            best_to_d = arr;
            break;
        }
        // Corridor pruning: if even the static lower bound cannot beat the
        // best known arrival at d, this vertex cannot improve the answer.
        if arr + bounds.h[u as usize] >= best_to_d {
            continue;
        }
        for &(v, e) in g.out_edges(u) {
            if settled[v as usize] || bounds.h[v as usize].is_infinite() {
                continue;
            }
            let cand = arr + g.weight(e).eval(arr);
            if cand < best[v as usize] && cand + bounds.h[v as usize] < best_to_d {
                best[v as usize] = cand;
                if v == d {
                    best_to_d = best_to_d.min(cand);
                }
                heap.push(Entry {
                    key: cand,
                    vertex: v,
                });
            }
        }
    }
    let arr = if best_to_d.is_finite() {
        best_to_d
    } else if best[d as usize].is_finite() {
        best[d as usize]
    } else {
        return None;
    };
    Some(arr - t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{ChPotential, ChPotentialScratch, FullPotential, FullPotentialScratch};
    use crate::scalar::shortest_path_cost;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_ch::ContractionHierarchy;
    use td_plf::DAY;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..5u64 {
            let g = td_gen::random_graph::seeded_graph(seed, 40, 30, 3);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xb1d1);
            for _ in 0..5 {
                let d = rng.gen_range(0..40) as u32;
                let bounds = LowerBounds::new(&g, d);
                for _ in 0..6 {
                    let s = rng.gen_range(0..40) as u32;
                    let t = rng.gen_range(0.0..DAY);
                    let want = shortest_path_cost(&g, s, d, t);
                    let got = bidirectional_cost(&g, s, d, t, &bounds);
                    match (want, got) {
                        (Some(a), Some(b)) => assert!(
                            (a - b).abs() < 1e-6,
                            "seed={seed} s={s} d={d} t={t}: {a} vs {b}"
                        ),
                        (None, None) => {}
                        other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn frozen_port_matches_dijkstra_with_both_potentials() {
        for seed in 0..3u64 {
            let g = td_gen::random_graph::seeded_graph(seed, 40, 30, 3);
            let fg = g.freeze();
            let ch = ContractionHierarchy::build(&fg);
            let mut sc = BidirectionalScratch::default();
            let mut full_sc = FullPotentialScratch::default();
            let mut ch_sc = ChPotentialScratch::default();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf0);
            for _ in 0..25 {
                let s = rng.gen_range(0..40) as u32;
                let d = rng.gen_range(0..40) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let mut full = FullPotential::new(&fg, &mut full_sc);
                let got_full = bidirectional_cost_frozen_with(&mut sc, &fg, &mut full, s, d, t);
                let mut lazy = ChPotential::new(&ch, &mut ch_sc);
                let got_ch = bidirectional_cost_frozen_with(&mut sc, &fg, &mut lazy, s, d, t);
                for (name, got) in [("full", got_full), ("ch", got_ch)] {
                    match (want, got) {
                        (Some(a), Some(b)) => assert!(
                            (a - b).abs() < 1e-9,
                            "{name} seed={seed} s={s} d={d} t={t}: {a} vs {b}"
                        ),
                        (None, None) => {}
                        other => panic!("{name} seed={seed} s={s} d={d}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn handles_unreachable_and_self() {
        use td_graph::TdGraph;
        use td_plf::Plf;
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        let bounds = LowerBounds::new(&g, 2);
        assert_eq!(bidirectional_cost(&g, 0, 2, 0.0, &bounds), None);
        let bounds = LowerBounds::new(&g, 0);
        assert_eq!(bidirectional_cost(&g, 0, 0, 5.0, &bounds), Some(0.0));

        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut sc = BidirectionalScratch::default();
        let mut pot_sc = ChPotentialScratch::default();
        let mut pot = ChPotential::new(&ch, &mut pot_sc);
        assert_eq!(
            bidirectional_cost_frozen_with(&mut sc, &fg, &mut pot, 0, 2, 0.0),
            None
        );
        let mut pot = ChPotential::new(&ch, &mut pot_sc);
        assert_eq!(
            bidirectional_cost_frozen_with(&mut sc, &fg, &mut pot, 0, 0, 5.0),
            Some(0.0)
        );
    }
}
